// End-to-end tests of the Crawler loop against small fixture databases,
// including a replay of the paper's Example 2.1.

#include "src/crawler/crawler.h"

#include <gtest/gtest.h>

#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/server/web_db_server.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeFigure1Table;
using testing_util::MakeTable;

ServerOptions SmallPages() {
  ServerOptions options;
  options.page_size = 2;
  return options;
}

TEST(CrawlerTest, Figure1CrawlFromA2ReachesEverything) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, SmallPages());
  LocalStore store;
  BfsSelector selector;
  Crawler crawler(server, selector, store, CrawlOptions{});
  crawler.AddSeed(GetValueId(table, "A", "a2"));

  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The AVG of Figure 1 is connected, so the whole database is
  // reachable from a2.
  EXPECT_EQ(result->records, table.num_records());
  EXPECT_EQ(result->stop_reason, StopReason::kFrontierExhausted);
  EXPECT_GT(result->rounds, 0u);
  EXPECT_GT(result->queries, 0u);
}

TEST(CrawlerTest, FirstQueryHarvestsSeedNeighborhood) {
  // Example 2.1: querying a2 returns three records and reveals exactly
  // {c1, b2, c2, b3} as new neighbors.
  Table table = MakeFigure1Table();
  WebDbServer server(table, SmallPages());
  LocalStore store;
  BfsSelector selector;
  CrawlOptions options;
  options.max_rounds = 2;  // 3 matched records, 2 per page -> 2 rounds
  Crawler crawler(server, selector, store, options);
  crawler.AddSeed(GetValueId(table, "A", "a2"));

  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records, 3u);  // the three a2 records
  EXPECT_EQ(store.LocalFrequency(GetValueId(table, "B", "b2")), 2u);
  EXPECT_EQ(store.LocalFrequency(GetValueId(table, "C", "c2")), 2u);
  EXPECT_EQ(store.LocalFrequency(GetValueId(table, "B", "b3")), 1u);
  EXPECT_EQ(store.LocalFrequency(GetValueId(table, "C", "c1")), 1u);
  // a1's record was not reachable yet.
  EXPECT_EQ(store.LocalFrequency(GetValueId(table, "A", "a1")), 0u);
}

TEST(CrawlerTest, DisconnectedComponentStaysUnreached) {
  // Two data islands (§4 Limitation 2): a seed in one island never
  // reaches the other.
  Table table = MakeTable({
      {{"X", "x1"}, {"Y", "y1"}},
      {{"X", "x1"}, {"Y", "y2"}},
      {{"X", "x2"}, {"Y", "y3"}},
  });
  WebDbServer server(table, SmallPages());
  LocalStore store;
  BfsSelector selector;
  Crawler crawler(server, selector, store, CrawlOptions{});
  crawler.AddSeed(GetValueId(table, "X", "x1"));

  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records, 2u);
  EXPECT_EQ(result->stop_reason, StopReason::kFrontierExhausted);
}

TEST(CrawlerTest, RoundBudgetStopsMidCrawl) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, SmallPages());
  LocalStore store;
  BfsSelector selector;
  CrawlOptions options;
  options.max_rounds = 1;
  Crawler crawler(server, selector, store, options);
  crawler.AddSeed(GetValueId(table, "A", "a2"));

  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stop_reason, StopReason::kRoundBudget);
  EXPECT_EQ(result->rounds, 1u);
  EXPECT_LE(result->records, 2u);  // at most one page of 2
}

TEST(CrawlerTest, TargetRecordsStopsEarly) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, SmallPages());
  LocalStore store;
  BfsSelector selector;
  CrawlOptions options;
  options.target_records = 3;
  Crawler crawler(server, selector, store, options);
  crawler.AddSeed(GetValueId(table, "A", "a2"));

  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stop_reason, StopReason::kTargetReached);
  EXPECT_GE(result->records, 3u);
}

TEST(CrawlerTest, ResumeAfterBudgetContinues) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, SmallPages());
  LocalStore store;
  BfsSelector selector;
  CrawlOptions options;
  options.max_rounds = 1;
  Crawler crawler(server, selector, store, options);
  crawler.AddSeed(GetValueId(table, "A", "a2"));

  ASSERT_TRUE(crawler.Run().ok());
  // Second run continues where the first stopped; still capped.
  StatusOr<CrawlResult> second = crawler.Run();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stop_reason, StopReason::kRoundBudget);
  EXPECT_EQ(second->rounds, 1u);  // cumulative meter unchanged by re-run
}

TEST(CrawlerTest, SeedsAreDeduplicated) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, SmallPages());
  LocalStore store;
  BfsSelector selector;
  Crawler crawler(server, selector, store, CrawlOptions{});
  ValueId a2 = GetValueId(table, "A", "a2");
  crawler.AddSeed(a2);
  crawler.AddSeed(a2);  // ignored

  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());
  // One a2 query only: queries equals distinct values queried.
  EXPECT_EQ(result->records, table.num_records());
}

TEST(CrawlerTest, TraceIsMonotoneAndEndsAtTotals) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, SmallPages());
  LocalStore store;
  GreedyLinkSelector selector(store);
  Crawler crawler(server, selector, store, CrawlOptions{});
  crawler.AddSeed(GetValueId(table, "C", "c2"));

  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());
  const auto& points = result->trace.points();
  ASSERT_FALSE(points.empty());
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].rounds, points[i - 1].rounds);
    EXPECT_GE(points[i].records, points[i - 1].records);
  }
  EXPECT_EQ(points.back().rounds, result->rounds);
  EXPECT_EQ(points.back().records, result->records);
}

TEST(CrawlerTest, EveryQueryCostsAtLeastOneRound) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, SmallPages());
  LocalStore store;
  DfsSelector selector;
  Crawler crawler(server, selector, store, CrawlOptions{});
  crawler.AddSeed(GetValueId(table, "A", "a2"));

  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->rounds, result->queries);
  EXPECT_EQ(result->rounds, server.communication_rounds());
  EXPECT_EQ(result->queries, server.queries_issued());
}

}  // namespace
}  // namespace deepcrawl
