// Behavioral tests of MMMI's marginal-phase ranking on the §3.3
// motivating structure: near-duplicate ("derived twin") values whose
// high degree fools plain greedy selection.

#include <gtest/gtest.h>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/mmmi_selector.h"
#include "src/server/web_db_server.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeTable;

// After querying a seller, its store twin is pure duplication; an
// uncorrelated value with the same degree is fresh.
TEST(MmmiBehaviorTest, DerivedTwinIsDeprioritizedAfterSourceQueried) {
  // Records: seller s1 <-> store t1 always together (twins); value u
  // co-occurs with various other values (uncorrelated with s1).
  Table table = MakeTable({
      {{"Seller", "s1"}, {"Store", "t1"}, {"Item", "i1"}},
      {{"Seller", "s1"}, {"Store", "t1"}, {"Item", "i2"}},
      {{"Seller", "s1"}, {"Store", "t1"}, {"Item", "i3"}},
      {{"Other", "u"}, {"Item", "j1"}},
      {{"Other", "u"}, {"Item", "j2"}},
      {{"Other", "u"}, {"Item", "j3"}},
  });
  WebDbServer server(table, ServerOptions{});
  LocalStore store;
  MmmiSelector selector(store);

  ValueId s1 = GetValueId(table, "Seller", "s1");
  ValueId t1 = GetValueId(table, "Store", "t1");
  ValueId u = GetValueId(table, "Other", "u");

  // Simulate: s1 was queried and its three records harvested; one j
  // record revealed u.
  selector.OnValueDiscovered(t1);
  selector.OnValueDiscovered(u);
  for (RecordId r : {0u, 1u, 2u, 3u}) {
    std::vector<ValueId> values(table.record(r).begin(),
                                table.record(r).end());
    store.AddRecord(r, values);
    selector.OnRecordHarvested(
        static_cast<uint32_t>(store.num_records() - 1));
  }
  QueryOutcome outcome;
  outcome.value = s1;
  selector.OnQueryCompleted(outcome);
  selector.OnSaturation();

  // Degrees: t1 has degree 5 (s1, i1..i3... plus), u has degree 1 (j1).
  // Plain greedy would pick t1; MMMI must pick u first — t1's records
  // are all duplicates of s1's results.
  EXPECT_GT(store.LocalDegree(t1), store.LocalDegree(u));
  EXPECT_EQ(selector.SelectNext(), u);
}

TEST(MmmiBehaviorTest, PureDependencyModeOrdersAscendingByScore) {
  LocalStore store;
  MmmiSelector selector(store,
                        MmmiOptions{10, MmmiRanking::kPureDependency});
  selector.OnValueDiscovered(10);  // strongly tied to issued query 1
  selector.OnValueDiscovered(20);  // weakly tied
  store.AddRecord(0, std::vector<ValueId>{1, 10});
  selector.OnRecordHarvested(0);
  store.AddRecord(1, std::vector<ValueId>{1, 10});
  selector.OnRecordHarvested(1);
  store.AddRecord(2, std::vector<ValueId>{1, 20});
  selector.OnRecordHarvested(2);
  store.AddRecord(3, std::vector<ValueId>{2, 20});
  selector.OnRecordHarvested(3);
  QueryOutcome outcome;
  outcome.value = 1;
  selector.OnQueryCompleted(outcome);
  selector.OnSaturation();

  // s(10) = ln(2*4/(2*3)) = ln(4/3) > s(20) = ln(1*4/(2*3)) = ln(2/3).
  EXPECT_GT(selector.DependencyScore(10), selector.DependencyScore(20));
  EXPECT_EQ(selector.SelectNext(), 20u);
  EXPECT_EQ(selector.SelectNext(), 10u);
}

TEST(MmmiBehaviorTest, EndToEndTwinDatabaseFavorsMmmi) {
  // A database where every record carries a seller and its derived
  // store twin: at the margin, half of greedy's high-degree candidates
  // are pure duplicates. MMMI should never be (meaningfully) worse.
  std::vector<testing_util::Row> rows;
  for (int s = 0; s < 40; ++s) {
    int records = 1 + (s % 5);
    for (int r = 0; r < records; ++r) {
      rows.push_back({
          {"Seller", "s" + std::to_string(s)},
          {"Store", "t" + std::to_string(s / 2)},
          {"Category", "c" + std::to_string(s % 7)},
          {"Item", "i" + std::to_string(s) + "_" + std::to_string(r)},
      });
    }
  }
  Table table = MakeTable(rows);
  WebDbServer server(table, ServerOptions{});
  CrawlOptions options;
  options.target_records = table.num_records();
  options.saturation_records = table.num_records() * 7 / 10;

  uint64_t rounds_greedy, rounds_mmmi;
  {
    LocalStore store;
    GreedyLinkSelector selector(store);
    server.ResetMeters();
    Crawler crawler(server, selector, store, options);
    crawler.AddSeed(GetValueId(table, "Category", "c0"));
    rounds_greedy = crawler.Run()->rounds;
  }
  {
    LocalStore store;
    MmmiSelector selector(store);
    server.ResetMeters();
    Crawler crawler(server, selector, store, options);
    crawler.AddSeed(GetValueId(table, "Category", "c0"));
    rounds_mmmi = crawler.Run()->rounds;
  }
  // At this micro scale the saving is within noise; the aggregate claim
  // lives in IntegrationTest.MmmiSqueezesMarginalContentCheaper. Here we
  // only require MMMI not to degrade materially on its home turf.
  EXPECT_LE(rounds_mmmi, rounds_greedy * 115 / 100);
}

}  // namespace
}  // namespace deepcrawl
