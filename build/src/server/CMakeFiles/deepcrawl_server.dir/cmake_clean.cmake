file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_server.dir/web_db_server.cc.o"
  "CMakeFiles/deepcrawl_server.dir/web_db_server.cc.o.d"
  "libdeepcrawl_server.a"
  "libdeepcrawl_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
