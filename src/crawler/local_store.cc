#include "src/crawler/local_store.h"

#include "src/util/logging.h"

namespace deepcrawl {

LocalStore::LocalStore() : LocalStore(Options{}) {}

LocalStore::LocalStore(Options options) : options_(options) {}

void LocalStore::EnsureValueCapacity(ValueId v) {
  if (v < local_frequency_.size()) return;
  size_t new_size = static_cast<size_t>(v) + 1;
  local_frequency_.resize(new_size, 0);
  local_postings_.resize(new_size);
  link_count_.resize(new_size, 0);
  if (options_.exact_degrees) neighbor_sets_.resize(new_size);
}

bool LocalStore::AddRecord(RecordId id, std::span<const ValueId> values) {
  DEEPCRAWL_CHECK(!values.empty()) << "harvested record has no values";
  uint32_t slot = static_cast<uint32_t>(num_records());
  if (!slot_of_.emplace(id, slot).second) return false;

  record_values_.insert(record_values_.end(), values.begin(), values.end());
  record_offsets_.push_back(record_values_.size());
  original_ids_.push_back(id);
  observation_count_.push_back(1);
  ++num_observations_;

  for (ValueId v : values) {
    EnsureValueCapacity(v);
    ++local_frequency_[v];
    local_postings_[v].push_back(slot);
    link_count_[v] += values.size() - 1;
    if (options_.exact_degrees) {
      auto& nbrs = neighbor_sets_[v];
      for (ValueId u : values) {
        if (u != v) nbrs.insert(u);
      }
    }
  }
  return true;
}

void LocalStore::ObserveDuplicate(RecordId id) {
  auto it = slot_of_.find(id);
  DEEPCRAWL_CHECK(it != slot_of_.end())
      << "duplicate observation of a record never added";
  ++observation_count_[it->second];
  ++num_observations_;
}

size_t LocalStore::RecordsObservedTimes(uint32_t k) const {
  DEEPCRAWL_CHECK_GE(k, 1u);
  size_t count = 0;
  for (uint32_t observations : observation_count_) {
    if (observations == k) ++count;
  }
  return count;
}

uint32_t LocalStore::LocalFrequency(ValueId v) const {
  if (v >= local_frequency_.size()) return 0;
  return local_frequency_[v];
}

uint64_t LocalStore::LocalDegree(ValueId v) const {
  if (v >= local_frequency_.size()) return 0;
  if (options_.exact_degrees) return neighbor_sets_[v].size();
  return link_count_[v];
}

std::span<const uint32_t> LocalStore::LocalPostings(ValueId v) const {
  if (v >= local_postings_.size()) return {};
  return local_postings_[v];
}

std::span<const ValueId> LocalStore::RecordValues(uint32_t slot) const {
  DEEPCRAWL_CHECK_LT(slot, num_records()) << "local record slot out of range";
  size_t begin = record_offsets_[slot];
  size_t end = record_offsets_[slot + 1];
  return std::span<const ValueId>(record_values_.data() + begin, end - begin);
}

RecordId LocalStore::OriginalRecordId(uint32_t slot) const {
  DEEPCRAWL_CHECK_LT(slot, num_records()) << "local record slot out of range";
  return original_ids_[slot];
}

}  // namespace deepcrawl
