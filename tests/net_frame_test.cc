// Round-trip tests for the wire protocol (src/net/frame.h): every
// message type, every StatusCode (retry-after hint included), and the
// FrameAssembler's incremental reassembly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/net/frame.h"
#include "src/util/checkpoint_io.h"
#include "src/util/status.h"

namespace deepcrawl {
namespace {

const StatusCode kAllCodes[] = {
    StatusCode::kOk,
    StatusCode::kInvalidArgument,
    StatusCode::kNotFound,
    StatusCode::kOutOfRange,
    StatusCode::kFailedPrecondition,
    StatusCode::kAlreadyExists,
    StatusCode::kResourceExhausted,
    StatusCode::kInternal,
    StatusCode::kUnavailable,
    StatusCode::kDeadlineExceeded,
};

// Extracts the single frame body out of an encoded frame.
std::string BodyOf(const std::string& frame) {
  FrameAssembler assembler;
  assembler.Append(frame);
  std::string body;
  StatusOr<bool> got = assembler.Next(&body);
  EXPECT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got.ok() && got.value());
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
  return body;
}

TEST(NetFrameTest, WireStatusCodeRoundTripsEveryCode) {
  for (StatusCode code : kAllCodes) {
    uint8_t wire = WireStatusCode(code);
    StatusOr<StatusCode> back = StatusCodeFromWire(wire);
    ASSERT_TRUE(back.ok()) << StatusCodeToString(code);
    EXPECT_EQ(back.value(), code) << StatusCodeToString(code);
  }
  // The mapping must be injective, or two statuses would collide on
  // the wire.
  std::vector<uint8_t> seen;
  for (StatusCode code : kAllCodes) {
    uint8_t wire = WireStatusCode(code);
    for (uint8_t other : seen) EXPECT_NE(wire, other);
    seen.push_back(wire);
  }
}

TEST(NetFrameTest, UnknownWireStatusCodeRejected) {
  EXPECT_FALSE(StatusCodeFromWire(200).ok());
  EXPECT_FALSE(StatusCodeFromWire(255).ok());
}

TEST(NetFrameTest, StatusRoundTripsEveryVariant) {
  for (StatusCode code : kAllCodes) {
    for (bool with_retry : {false, true}) {
      Status original = code == StatusCode::kOk
                            ? Status::OK()
                            : Status(code, std::string("reason for ") +
                                               StatusCodeToString(code));
      if (with_retry && !original.ok()) {
        original = original.WithRetryAfter(17);
      }
      CheckpointWriter writer;
      EncodeStatus(writer, original);
      CheckpointReader reader(writer.buffer());
      Status decoded = DecodeStatus(reader);
      ASSERT_TRUE(reader.status().ok()) << reader.status().ToString();
      EXPECT_EQ(decoded.code(), original.code());
      EXPECT_EQ(decoded.message(), original.message());
      EXPECT_EQ(decoded.retry_after_rounds(), original.retry_after_rounds());
    }
  }
}

TEST(NetFrameTest, HelloRoundTrips) {
  StatusOr<WireRequest> decoded = DecodeRequest(BodyOf(EncodeHelloFrame()));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, WireMessageType::kHello);
}

TEST(NetFrameTest, EveryFetchFormRoundTrips) {
  WireRequest by_value;
  by_value.type = WireMessageType::kFetchPage;
  by_value.request_id = 42;
  by_value.value = 7;
  by_value.page_number = 3;

  WireRequest by_text;
  by_text.type = WireMessageType::kFetchPageByText;
  by_text.request_id = 43;
  by_text.attr = 2;
  by_text.text = "red herring";
  by_text.page_number = 1;

  WireRequest by_keyword;
  by_keyword.type = WireMessageType::kFetchPageByKeyword;
  by_keyword.request_id = 44;
  by_keyword.text = "keyword with spaces\tand tabs";

  WireRequest conjunctive;
  conjunctive.type = WireMessageType::kFetchPageConjunctive;
  conjunctive.request_id = 45;
  conjunctive.values = {3, 1, 4, 1, 5};
  conjunctive.page_number = 2;

  WireRequest keyword_of;
  keyword_of.type = WireMessageType::kFetchPageKeywordOf;
  keyword_of.request_id = 46;
  keyword_of.value = 99;

  for (const WireRequest& original :
       {by_value, by_text, by_keyword, conjunctive, keyword_of}) {
    SCOPED_TRACE(static_cast<int>(original.type));
    StatusOr<WireRequest> decoded =
        DecodeRequest(BodyOf(EncodeRequestFrame(original)));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->type, original.type);
    EXPECT_EQ(decoded->request_id, original.request_id);
    EXPECT_EQ(decoded->value, original.value);
    EXPECT_EQ(decoded->attr, original.attr);
    EXPECT_EQ(decoded->text, original.text);
    EXPECT_EQ(decoded->values, original.values);
    EXPECT_EQ(decoded->page_number, original.page_number);
  }
}

TEST(NetFrameTest, ServerInfoRoundTrips) {
  WireServerInfo info;
  info.options.page_size = 25;
  info.options.result_limit = 1000;
  info.options.reports_total_count = false;
  info.num_values = 11;  // two bitmap bytes, top bits unused
  info.queriable_bitmap = {0b10110101, 0b00000101};

  StatusOr<WireServerMessage> decoded =
      DecodeServerMessage(BodyOf(EncodeServerInfoFrame(info)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, WireMessageType::kServerInfo);
  EXPECT_EQ(decoded->info.options.page_size, info.options.page_size);
  EXPECT_EQ(decoded->info.options.result_limit, info.options.result_limit);
  EXPECT_EQ(decoded->info.options.reports_total_count,
            info.options.reports_total_count);
  EXPECT_EQ(decoded->info.num_values, info.num_values);
  EXPECT_EQ(decoded->info.queriable_bitmap, info.queriable_bitmap);
  for (ValueId v = 0; v < info.num_values; ++v) {
    EXPECT_EQ(decoded->info.IsQueriable(v), info.IsQueriable(v)) << v;
  }
  EXPECT_FALSE(decoded->info.IsQueriable(info.num_values));
  EXPECT_FALSE(decoded->info.IsQueriable(kInvalidValueId));
}

TEST(NetFrameTest, OkPageRoundTrips) {
  std::vector<ValueId> rec0 = {10, 20, 30};
  std::vector<ValueId> rec1 = {40};
  std::vector<ValueId> rec2 = {};
  ResultPage page;
  page.records.push_back({101, rec0});
  page.records.push_back({102, rec1});
  page.records.push_back({103, rec2});
  page.page_number = 5;
  page.total_matches = 77;
  page.has_more = true;

  StatusOr<WireServerMessage> decoded = DecodeServerMessage(
      BodyOf(EncodeResponseFrame(321, StatusOr<ResultPage>(page))));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, WireMessageType::kPageResult);
  EXPECT_EQ(decoded->request_id, 321u);
  ASSERT_TRUE(decoded->status.ok());
  const ResultPage& got = decoded->result.page;
  ASSERT_EQ(got.records.size(), page.records.size());
  for (size_t i = 0; i < page.records.size(); ++i) {
    EXPECT_EQ(got.records[i].id, page.records[i].id);
    EXPECT_EQ(std::vector<ValueId>(got.records[i].values.begin(),
                                   got.records[i].values.end()),
              std::vector<ValueId>(page.records[i].values.begin(),
                                   page.records[i].values.end()));
  }
  EXPECT_EQ(got.page_number, page.page_number);
  EXPECT_EQ(got.total_matches, page.total_matches);
  EXPECT_EQ(got.has_more, page.has_more);
}

TEST(NetFrameTest, AbsentTotalMatchesRoundTrips) {
  ResultPage page;
  page.page_number = 0;
  page.total_matches = std::nullopt;
  StatusOr<WireServerMessage> decoded = DecodeServerMessage(
      BodyOf(EncodeResponseFrame(1, StatusOr<ResultPage>(page))));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded->result.page.total_matches.has_value());
  EXPECT_FALSE(decoded->result.page.has_more);
}

TEST(NetFrameTest, ErrorResponseRoundTripsEveryCode) {
  for (StatusCode code : kAllCodes) {
    if (code == StatusCode::kOk) continue;
    Status original = Status(code, "injected").WithRetryAfter(9);
    StatusOr<WireServerMessage> decoded = DecodeServerMessage(
        BodyOf(EncodeResponseFrame(7, StatusOr<ResultPage>(original))));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->type, WireMessageType::kPageResult);
    EXPECT_EQ(decoded->request_id, 7u);
    EXPECT_EQ(decoded->status.code(), code);
    EXPECT_EQ(decoded->status.message(), "injected");
    EXPECT_EQ(decoded->status.retry_after_rounds(),
              original.retry_after_rounds());
  }
}

TEST(NetFrameTest, GoAwayRoundTrips) {
  Status shed = Status::Unavailable("connection cap").WithRetryAfter(4);
  StatusOr<WireServerMessage> decoded =
      DecodeServerMessage(BodyOf(EncodeGoAwayFrame(shed)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, WireMessageType::kGoAway);
  EXPECT_EQ(decoded->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(decoded->status.retry_after_rounds(), 4u);
}

TEST(NetFrameTest, AssemblerSplitsBackToBackFrames) {
  std::string stream = EncodeHelloFrame();
  WireRequest request;
  request.type = WireMessageType::kFetchPage;
  request.request_id = 9;
  request.value = 3;
  stream += EncodeRequestFrame(request);
  stream += EncodeHelloFrame();

  FrameAssembler assembler;
  assembler.Append(stream);
  std::string body;
  int frames = 0;
  while (true) {
    StatusOr<bool> got = assembler.Next(&body);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    if (!got.value()) break;
    ++frames;
  }
  EXPECT_EQ(frames, 3);
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

TEST(NetFrameTest, AssemblerHandlesByteAtATimeDelivery) {
  WireRequest request;
  request.type = WireMessageType::kFetchPageConjunctive;
  request.request_id = 1234567890123ull;
  request.values = {1, 2, 3};
  std::string frame = EncodeRequestFrame(request);

  FrameAssembler assembler;
  std::string body;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    assembler.Append(std::string_view(frame).substr(i, 1));
    StatusOr<bool> got = assembler.Next(&body);
    ASSERT_TRUE(got.ok()) << "byte " << i << ": " << got.status().ToString();
    ASSERT_FALSE(got.value()) << "frame completed early at byte " << i;
  }
  assembler.Append(std::string_view(frame).substr(frame.size() - 1));
  StatusOr<bool> got = assembler.Next(&body);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got.value());
  StatusOr<WireRequest> decoded = DecodeRequest(body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->request_id, request.request_id);
  EXPECT_EQ(decoded->values, request.values);
}

}  // namespace
}  // namespace deepcrawl
