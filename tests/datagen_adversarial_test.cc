// Structural invariants and fuzzing for the adversarial lower-bound
// generator (src/datagen/adversarial_workload.h): dyadic ancestor
// chains with exact interval frequencies, rank-ordered record ids,
// decoy/link placement, the OPT ground truth, determinism, and
// graceful rejection of hostile configurations.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/crawler/optimal_selector.h"
#include "src/datagen/adversarial_workload.h"
#include "src/server/web_db_server.h"

namespace deepcrawl {
namespace {

AdversarialConfig TrapConfig() {
  AdversarialConfig config;
  config.family = AdversarialFamily::kGreedyTrap;
  config.leaf_buckets = 12;
  config.bucket_records = 4;
  config.decoy_buckets = 4;
  config.decoy_width = 8;
  config.seed = 3;
  return config;
}

AdversarialInstance Generate(const AdversarialConfig& config) {
  StatusOr<AdversarialInstance> instance =
      GenerateAdversarialInstance(config);
  DEEPCRAWL_CHECK(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

// Interval text as the generator spells it: indices zero-padded to the
// width of the largest bucket index.
std::string IntervalText(uint32_t lo, uint32_t hi, uint32_t buckets) {
  uint32_t pad =
      static_cast<uint32_t>(std::to_string(buckets - 1).size());
  auto padded = [pad](uint32_t index) {
    std::string digits = std::to_string(index);
    if (digits.size() < pad) {
      digits.insert(digits.begin(), pad - digits.size(), '0');
    }
    return digits;
  };
  return "r" + padded(lo) + "-" + padded(hi);
}

TEST(DatagenAdversarialTest, TrapGroundTruthAndShape) {
  AdversarialInstance trap = Generate(TrapConfig());
  // 12 + 4 buckets round up to B = 16; every bucket is occupied.
  EXPECT_EQ(trap.total_buckets, 16u);
  EXPECT_EQ(trap.total_intervals, 31u);  // 2B - 1
  EXPECT_EQ(trap.num_records, 16u * 4u);
  EXPECT_EQ(trap.result_limit, 4u);
  EXPECT_EQ(trap.opt_queries, 16u);  // ceil(64 / 4) = B exactly
  EXPECT_EQ(trap.table.num_records(), trap.num_records);
  ASSERT_EQ(trap.leaf_values.size(), 16u);
  for (ValueId leaf : trap.leaf_values) {
    EXPECT_NE(leaf, kInvalidValueId);
  }
  EXPECT_NE(trap.root_value, kInvalidValueId);
  ASSERT_EQ(trap.is_ghetto.size(), 16u);
  uint32_t ghetto = 0;
  for (char flag : trap.is_ghetto) ghetto += flag != 0;
  EXPECT_EQ(ghetto, 4u);
  EXPECT_EQ(trap.num_decoy_values, 4u * 4u * 8u);  // g * L * W
}

TEST(DatagenAdversarialTest, TrapIntervalFrequenciesMatchWidths) {
  AdversarialInstance trap = Generate(TrapConfig());
  const uint32_t buckets = trap.total_buckets;
  // Every record carries its full ancestor chain, so the interval
  // [lo, lo + width - 1] holds exactly width * L records.
  for (uint32_t width = 1; width <= buckets; width *= 2) {
    for (uint32_t lo = 0; lo < buckets; lo += width) {
      ValueId v = trap.table.catalog().Find(
          trap.rank_attribute,
          IntervalText(lo, lo + width - 1, buckets));
      ASSERT_NE(v, kInvalidValueId) << "interval [" << lo << ", "
                                    << lo + width - 1 << "]";
      EXPECT_EQ(trap.table.value_frequency(v), width * 4u);
    }
  }
}

TEST(DatagenAdversarialTest, TrapDecoyAndLinkPlacement) {
  AdversarialInstance trap = Generate(TrapConfig());
  // Decoys: frequency 1, only on ghetto-bucket records.
  uint32_t first_ghetto = 0;
  while (first_ghetto < trap.is_ghetto.size() &&
         !trap.is_ghetto[first_ghetto]) {
    ++first_ghetto;
  }
  ASSERT_LT(first_ghetto, trap.is_ghetto.size());
  for (uint32_t w = 0; w < 8; ++w) {
    ValueId decoy = trap.table.catalog().Find(
        trap.decoy_attribute, "d" + std::to_string(first_ghetto) + "-0-" +
                                  std::to_string(w));
    ASSERT_NE(decoy, kInvalidValueId);
    EXPECT_EQ(trap.table.value_frequency(decoy), 1u);
  }
  // Links: l<k> stitches buckets k-1 and k, frequency exactly 2, so
  // greedy can always reach the next bucket but gains nothing from it.
  for (uint32_t k = 1; k < trap.total_buckets; ++k) {
    std::string text = "l" + std::to_string(k);
    if (text.size() < 3) text.insert(1, 1, '0');  // pad matches buckets
    ValueId link = trap.table.catalog().Find(trap.link_attribute, text);
    ASSERT_NE(link, kInvalidValueId) << text;
    EXPECT_EQ(trap.table.value_frequency(link), 2u);
  }
}

TEST(DatagenAdversarialTest, RecordIdsFollowRankOrder) {
  AdversarialInstance trap = Generate(TrapConfig());
  // The server returns lowest record ids first and the generator
  // assigns ids in bucket order, so a leaf query retrieves exactly its
  // bucket's L consecutive ids — the property the right-before-left
  // count arithmetic of the rank descent relies on.
  WebDbServer server(trap.table, ServerOptions());
  for (uint32_t bucket = 0; bucket < trap.total_buckets; ++bucket) {
    StatusOr<ResultPage> page =
        server.FetchPage(trap.leaf_values[bucket], 0);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    ASSERT_EQ(page->records.size(), 4u);
    for (uint32_t j = 0; j < 4; ++j) {
      EXPECT_EQ(page->records[j].id, bucket * 4u + j);
    }
  }
}

TEST(DatagenAdversarialTest, HierarchyParsesBackFromCatalog) {
  AdversarialInstance trap = Generate(TrapConfig());
  StatusOr<QueryHierarchy> hierarchy = QueryHierarchy::FromCatalog(
      trap.table.catalog(), trap.rank_attribute);
  ASSERT_TRUE(hierarchy.ok()) << hierarchy.status().ToString();
  EXPECT_EQ(hierarchy->num_nodes(), trap.total_intervals);
  ASSERT_EQ(hierarchy->roots().size(), 1u);
  const QueryHierarchy::Node& root =
      hierarchy->node(hierarchy->roots()[0]);
  EXPECT_EQ(root.value, trap.root_value);
  EXPECT_EQ(root.lo, 0u);
  EXPECT_EQ(root.hi, trap.total_buckets - 1);
}

TEST(DatagenAdversarialTest, SkewedChainOccupiesLowestLeaves) {
  AdversarialConfig config;
  config.family = AdversarialFamily::kSkewedChain;
  config.leaf_buckets = 32;
  config.bucket_records = 4;
  config.occupied_leaves = 3;
  AdversarialInstance skew = Generate(config);
  EXPECT_EQ(skew.total_buckets, 32u);
  EXPECT_EQ(skew.num_records, 12u);
  EXPECT_EQ(skew.opt_queries, 3u);
  EXPECT_TRUE(skew.is_ghetto.empty());
  EXPECT_EQ(skew.num_decoy_values, 0u);
  ASSERT_EQ(skew.leaf_values.size(), 32u);
  for (uint32_t bucket = 0; bucket < 32; ++bucket) {
    // Empty leaves are still interned (the crawler's interface
    // knowledge covers the whole domain) but hold zero records.
    ASSERT_NE(skew.leaf_values[bucket], kInvalidValueId);
    EXPECT_EQ(skew.table.value_frequency(skew.leaf_values[bucket]),
              bucket < 3 ? 4u : 0u);
  }
}

TEST(DatagenAdversarialTest, IdenticalConfigsGenerateIdenticalInstances) {
  AdversarialInstance a = Generate(TrapConfig());
  AdversarialInstance b = Generate(TrapConfig());
  EXPECT_EQ(a.is_ghetto, b.is_ghetto);
  EXPECT_EQ(a.leaf_values, b.leaf_values);
  EXPECT_EQ(a.root_value, b.root_value);
  ASSERT_EQ(a.table.num_distinct_values(), b.table.num_distinct_values());
  for (ValueId v = 0; v < a.table.num_distinct_values(); ++v) {
    ASSERT_EQ(a.table.value_frequency(v), b.table.value_frequency(v))
        << "value " << v;
  }
  // A different seed moves the ghetto placement.
  AdversarialConfig moved = TrapConfig();
  moved.seed = 4;
  AdversarialInstance c = Generate(moved);
  EXPECT_NE(a.is_ghetto, c.is_ghetto);
}

// Configuration fuzz: every config either generates a consistent
// instance or fails with a clean InvalidArgument — never a crash and
// never an unbounded allocation (the generator's hard caps).
TEST(DatagenAdversarialTest, ConfigFuzzSweep) {
  const uint32_t leaf_options[] = {0, 1, 2, 5, 16, 100, 40000};
  const uint32_t record_options[] = {0, 1, 4, 5000};
  const uint32_t width_options[] = {0, 8, 5000};
  const uint32_t occupied_options[] = {0, 1, 5};
  int generated = 0;
  int rejected = 0;
  for (int family = 0; family < 2; ++family) {
    for (uint32_t leaves : leaf_options) {
      for (uint32_t records : record_options) {
        for (uint32_t width : width_options) {
          for (uint32_t occupied : occupied_options) {
            AdversarialConfig config;
            config.family = family == 0 ? AdversarialFamily::kGreedyTrap
                                        : AdversarialFamily::kSkewedChain;
            config.leaf_buckets = leaves;
            config.bucket_records = records;
            config.decoy_buckets = leaves / 4;
            config.decoy_width = width;
            config.occupied_leaves = occupied;
            config.seed = 11;
            StatusOr<AdversarialInstance> instance =
                GenerateAdversarialInstance(config);
            SCOPED_TRACE("family=" + std::to_string(family) +
                         " leaves=" + std::to_string(leaves) +
                         " records=" + std::to_string(records) +
                         " width=" + std::to_string(width) +
                         " occupied=" + std::to_string(occupied));
            if (!instance.ok()) {
              ++rejected;
              EXPECT_EQ(instance.status().code(),
                        StatusCode::kInvalidArgument);
              continue;
            }
            ++generated;
            const AdversarialInstance& inst = *instance;
            // Power-of-two bucket count with the full hierarchy.
            EXPECT_EQ(inst.total_buckets & (inst.total_buckets - 1), 0u);
            EXPECT_EQ(inst.total_intervals, 2 * inst.total_buckets - 1);
            EXPECT_EQ(inst.leaf_values.size(), inst.total_buckets);
            EXPECT_EQ(inst.table.num_records(), inst.num_records);
            EXPECT_EQ(inst.result_limit, records);
            EXPECT_EQ(inst.opt_queries,
                      (inst.num_records + records - 1) / records);
            EXPECT_NE(inst.root_value, kInvalidValueId);
            StatusOr<QueryHierarchy> hierarchy =
                QueryHierarchy::FromCatalog(inst.table.catalog(),
                                            inst.rank_attribute);
            ASSERT_TRUE(hierarchy.ok()) << hierarchy.status().ToString();
            EXPECT_EQ(hierarchy->num_nodes(), inst.total_intervals);
          }
        }
      }
    }
  }
  // The sweep exercised both outcomes.
  EXPECT_GT(generated, 10);
  EXPECT_GT(rejected, 10);
}

}  // namespace
}  // namespace deepcrawl
