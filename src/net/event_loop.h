// EventLoop: a single-threaded non-blocking epoll reactor.
//
// One loop drives every socket of a WebDbTcpServer (and bench_net's
// client fleets): file descriptors register a callback for a set of
// epoll events, the loop dispatches ready callbacks one epoll_wait at a
// time, and one-shot timers ride the epoll timeout. The design stays
// deliberately minimal — no cross-thread task queue, no fairness
// machinery — because every structure the loop touches is owned by the
// loop thread.
//
// The ONLY cross-thread (and async-signal-safe) entry point is Stop():
// it sets an atomic flag and writes an eventfd the loop always polls,
// so a signal handler (deepcrawl_serve's SIGTERM handler) or another
// thread can wake a parked epoll_wait without locks. Everything else —
// Add/Modify/Remove/ScheduleAt/Run — must be called on the loop thread
// (or before Run starts).
//
// fd lifetime: Remove() an fd before close()ing it. Events already
// harvested by the current epoll_wait batch for a removed fd are
// discarded by a generation check, so a callback that closes OTHER
// connections (e.g. shedding) cannot cause a stale dispatch to a
// recycled descriptor.

#ifndef DEEPCRAWL_NET_EVENT_LOOP_H_
#define DEEPCRAWL_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

#include "src/util/status.h"

namespace deepcrawl {

class EventLoop {
 public:
  // The callback receives the ready epoll event mask (EPOLLIN,
  // EPOLLOUT, EPOLLHUP, ... as delivered by epoll_wait).
  using FdCallback = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // OK when the epoll and wakeup descriptors came up; a failed loop
  // refuses Add/Run.
  Status Init();

  // Registers `fd` (must be non-blocking) for `events`; replaces any
  // existing registration's callback and mask.
  Status Add(int fd, uint32_t events, FdCallback callback);
  // Changes the interest mask of a registered fd.
  Status Modify(int fd, uint32_t events);
  // Deregisters; call BEFORE close(fd). Unknown fds are ignored.
  void Remove(int fd);

  // Runs `fn` once `deadline_us` (NowMicros clock) has passed. Timers
  // fire between epoll batches, in deadline order; equal deadlines fire
  // in schedule order.
  void ScheduleAt(uint64_t deadline_us, std::function<void()> fn);

  // Monotonic clock, microseconds (CLOCK_MONOTONIC).
  static uint64_t NowMicros();

  // Dispatches until Stop(). Must not be re-entered.
  void Run();

  // One epoll_wait batch plus due timers; `timeout_ms` < 0 blocks until
  // an event (tests drive the loop step by step with this).
  Status RunOnce(int timeout_ms);

  // Thread- and async-signal-safe: wakes the loop and makes Run return
  // after the current batch.
  void Stop();

  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  // Number of registered fds (the wakeup eventfd excluded).
  size_t watched_fds() const { return handlers_.size(); }

 private:
  struct Handler {
    uint64_t generation = 0;
    FdCallback callback;
  };

  void DrainWakeup();
  void RunDueTimers();
  // epoll timeout honoring both `timeout_ms` and the nearest timer.
  int EffectiveTimeoutMs(int timeout_ms) const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  uint64_t next_generation_ = 1;
  std::unordered_map<int, Handler> handlers_;
  std::multimap<uint64_t, std::function<void()>> timers_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_NET_EVENT_LOOP_H_
