#include "src/crawler/naive_selectors.h"

namespace deepcrawl {

ValueId BfsSelector::SelectNext() {
  if (queue_.empty()) return kInvalidValueId;
  ValueId v = queue_.front();
  queue_.pop_front();
  return v;
}

ValueId DfsSelector::SelectNext() {
  if (stack_.empty()) return kInvalidValueId;
  ValueId v = stack_.back();
  stack_.pop_back();
  return v;
}

ValueId RandomSelector::SelectNext() {
  if (pool_.empty()) return kInvalidValueId;
  uint32_t i = rng_.NextBounded(static_cast<uint32_t>(pool_.size()));
  ValueId v = pool_[i];
  pool_[i] = pool_.back();
  pool_.pop_back();
  return v;
}

}  // namespace deepcrawl
