# Empty compiler generated dependencies file for deepcrawl_crawler_policy_tests.
# This may be replaced when dependencies are built.
