#include "src/datagen/workload_config.h"

#include <algorithm>
#include <memory>

#include "src/util/logging.h"
#include "src/util/random.h"
#include "src/util/zipf.h"

namespace deepcrawl {

namespace {

Status ValidateConfig(const SyntheticDbConfig& config) {
  if (config.num_records == 0) {
    return Status::InvalidArgument("config needs at least one record");
  }
  if (config.attributes.empty()) {
    return Status::InvalidArgument("config needs at least one attribute");
  }
  for (const AttributeSpec& spec : config.attributes) {
    if (spec.name.empty()) {
      return Status::InvalidArgument("attribute name must be non-empty");
    }
    if (!spec.unique_per_record && spec.derived_from < 0 &&
        spec.num_distinct == 0) {
      return Status::InvalidArgument("attribute '" + spec.name +
                                     "' has an empty value pool");
    }
    if (spec.min_per_record == 0 || spec.min_per_record > spec.max_per_record) {
      return Status::InvalidArgument("attribute '" + spec.name +
                                     "' has an invalid per-record range");
    }
    if (spec.community_bias < 0.0 || spec.community_bias > 1.0) {
      return Status::InvalidArgument("attribute '" + spec.name +
                                     "' has community bias outside [0,1]");
    }
    if (spec.presence <= 0.0 || spec.presence > 1.0) {
      return Status::InvalidArgument("attribute '" + spec.name +
                                     "' has presence outside (0,1]");
    }
    if (spec.community_bias > 0.0 && spec.num_communities == 0) {
      return Status::InvalidArgument("attribute '" + spec.name +
                                     "' sets bias without communities");
    }
  }
  bool has_always_present = false;
  for (const AttributeSpec& spec : config.attributes) {
    if (spec.presence >= 1.0) has_always_present = true;
  }
  if (!has_always_present) {
    return Status::InvalidArgument(
        "at least one attribute must have presence == 1 so every record "
        "is non-empty");
  }
  for (size_t a = 0; a < config.attributes.size(); ++a) {
    const AttributeSpec& spec = config.attributes[a];
    if (spec.derived_from < 0) continue;
    size_t source = static_cast<size_t>(spec.derived_from);
    if (source >= config.attributes.size() || source == a) {
      return Status::InvalidArgument("attribute '" + spec.name +
                                     "' derives from an invalid attribute");
    }
    const AttributeSpec& source_spec = config.attributes[source];
    if (source_spec.derived_from >= 0 || source_spec.unique_per_record) {
      return Status::InvalidArgument(
          "attribute '" + spec.name +
          "' must derive from a plain (non-derived, non-unique) attribute");
    }
    if (spec.derive_group == 0) {
      return Status::InvalidArgument("attribute '" + spec.name +
                                     "' has derive_group == 0");
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<Table> GenerateTable(const SyntheticDbConfig& config) {
  DEEPCRAWL_RETURN_IF_ERROR(ValidateConfig(config));

  Schema schema;
  for (const AttributeSpec& spec : config.attributes) {
    StatusOr<AttributeId> added =
        schema.AddAttribute(spec.name, spec.max_per_record > 1);
    if (!added.ok()) return added.status();
  }
  Table table(std::move(schema));

  Pcg32 rng(config.seed);
  // One sampler per non-unique attribute; community draws reuse the
  // global sampler's rank, folded into the community slice.
  std::vector<std::unique_ptr<ZipfSampler>> samplers(
      config.attributes.size());
  for (size_t a = 0; a < config.attributes.size(); ++a) {
    const AttributeSpec& spec = config.attributes[a];
    if (!spec.unique_per_record && spec.derived_from < 0) {
      samplers[a] = std::make_unique<ZipfSampler>(spec.num_distinct,
                                                  spec.zipf_exponent);
    }
  }

  std::vector<Cell> cells;
  std::vector<std::vector<uint32_t>> drawn(config.attributes.size());
  for (uint32_t r = 0; r < config.num_records; ++r) {
    cells.clear();
    for (auto& d : drawn) d.clear();
    // One community draw per RECORD, shared by every biased attribute:
    // this induces CROSS-attribute value dependency (a seller lists in
    // its niche of categories; co-authors share venues), which is what
    // makes the §3.3 duplicate problem — and MMMI's remedy — real.
    double community_u = rng.NextDouble();
    // Pass 1: plain attributes.
    for (size_t a = 0; a < config.attributes.size(); ++a) {
      const AttributeSpec& spec = config.attributes[a];
      AttributeId attr = static_cast<AttributeId>(a);
      if (spec.derived_from >= 0) continue;
      if (spec.presence < 1.0 && !rng.NextBool(spec.presence)) continue;
      if (spec.unique_per_record) {
        cells.push_back(Cell{attr, spec.name + "#u" + std::to_string(r)});
        continue;
      }
      uint32_t count = spec.min_per_record;
      if (spec.max_per_record > spec.min_per_record) {
        count += rng.NextBounded(spec.max_per_record - spec.min_per_record +
                                 1);
      }
      // Project the record's community onto this attribute's own
      // community count; biased draws land in the community's
      // contiguous pool slice.
      uint32_t community = 0;
      if (spec.community_bias > 0.0) {
        community = std::min(
            spec.num_communities - 1,
            static_cast<uint32_t>(community_u * spec.num_communities));
      }
      for (uint32_t i = 0; i < count; ++i) {
        uint32_t pool_index;
        if (spec.community_bias > 0.0 && rng.NextBool(spec.community_bias)) {
          // Slice the pool evenly; sample a Zipf rank inside the slice so
          // communities have their own local hubs.
          uint32_t slice = spec.num_distinct / spec.num_communities;
          if (slice == 0) slice = 1;
          uint32_t base = community * slice;
          uint32_t rank = samplers[a]->Sample(rng) % slice;
          pool_index = std::min(base + rank, spec.num_distinct - 1);
        } else {
          pool_index = samplers[a]->Sample(rng);
        }
        drawn[a].push_back(pool_index);
        cells.push_back(
            Cell{attr, spec.name + "#" + std::to_string(pool_index)});
      }
    }
    // Pass 2: derived attributes — deterministic functions of the source
    // draws (strong value dependency, §3.3).
    for (size_t a = 0; a < config.attributes.size(); ++a) {
      const AttributeSpec& spec = config.attributes[a];
      if (spec.derived_from < 0) continue;
      if (spec.presence < 1.0 && !rng.NextBool(spec.presence)) continue;
      AttributeId attr = static_cast<AttributeId>(a);
      for (uint32_t source_index :
           drawn[static_cast<size_t>(spec.derived_from)]) {
        cells.push_back(Cell{
            attr, spec.name + "#" +
                      std::to_string(source_index / spec.derive_group)});
      }
    }
    StatusOr<RecordId> added = table.AddRecord(cells);
    if (!added.ok()) return added.status();
  }
  return table;
}

}  // namespace deepcrawl
