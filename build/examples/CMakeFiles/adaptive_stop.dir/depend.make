# Empty dependencies file for adaptive_stop.
# This may be replaced when dependencies are built.
