// Shared helpers for the experiment harnesses in bench/.
//
// Every binary in this directory regenerates one table or figure of the
// paper. Conventions:
//   * print a banner stating the paper artifact, the paper's original
//     configuration, and the scale this run uses;
//   * run the experiment deterministically (fixed seeds);
//   * print aligned text tables via TablePrinter.

#ifndef DEEPCRAWL_BENCH_BENCH_COMMON_H_
#define DEEPCRAWL_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <iostream>
#include <string>

#include "src/crawler/crawler.h"
#include "src/crawler/local_store.h"
#include "src/crawler/parallel_crawler.h"
#include "src/crawler/query_selector.h"
#include "src/relation/table.h"
#include "src/server/query_interface.h"
#include "src/server/web_db_server.h"
#include "src/util/logging.h"
#include "src/util/table_printer.h"

namespace deepcrawl {
namespace bench {

inline void PrintBanner(const std::string& artifact,
                        const std::string& paper_setup,
                        const std::string& this_run) {
  std::cout << "\n=== " << artifact << " ===\n"
            << "paper setup: " << paper_setup << "\n"
            << "this run:    " << this_run << "\n\n";
}

// Runs one crawl of `server` (any QueryInterface — the bare simulator or
// a fault-injecting proxy) with `selector`, seeded with `seed_value`,
// and returns the result. Resets the server meters first so rounds are
// per-crawl. Aborts on crawl errors (bench fixtures are valid).
inline CrawlResult RunCrawl(QueryInterface& server, QuerySelector& selector,
                            LocalStore& store, const CrawlOptions& options,
                            ValueId seed_value,
                            const RetryPolicy* retry_policy = nullptr) {
  server.ResetMeters();
  Crawler crawler(server, selector, store, options,
                  /*abort_policy=*/nullptr, retry_policy);
  crawler.AddSeed(seed_value);
  StatusOr<CrawlResult> result = crawler.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  return std::move(*result);
}

// Parallel counterpart of RunCrawl: crawls through the batched wave
// engine. `server` must already be thread-safe when parallel.threads >
// 1 (wrap it in a LockedQueryInterface). The caller's trace/coverage
// expectations carry over: batch == 1 reproduces RunCrawl exactly.
inline CrawlResult RunParallelCrawl(QueryInterface& server,
                                    QuerySelector& selector, LocalStore& store,
                                    const CrawlOptions& options,
                                    const ParallelOptions& parallel,
                                    ValueId seed_value,
                                    const RetryPolicy* retry_policy = nullptr) {
  server.ResetMeters();
  ParallelCrawler crawler(server, selector, store, options, parallel,
                          /*abort_policy=*/nullptr, retry_policy);
  crawler.AddSeed(seed_value);
  StatusOr<CrawlResult> result = crawler.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  return std::move(*result);
}

// Deterministic seed value for run `i` of a table: spreads seeds across
// the value id space, skipping values with no matching records (the
// catalog may also hold domain-table entries the target never returns —
// a crawl seeded with one of those would die on its first query).
inline ValueId SeedValue(const Table& table, uint32_t i) {
  DEEPCRAWL_CHECK_GT(table.num_distinct_values(), 0u);
  DEEPCRAWL_CHECK_GT(table.num_records(), 0u);
  uint64_t n = table.num_distinct_values();
  ValueId v = static_cast<ValueId>((1 + 2654435761ull * (i + 1)) % n);
  while (table.value_frequency(v) == 0) {
    v = static_cast<ValueId>((static_cast<uint64_t>(v) + 1) % n);
  }
  return v;
}

}  // namespace bench
}  // namespace deepcrawl

#endif  // DEEPCRAWL_BENCH_BENCH_COMMON_H_
