// Descriptive statistics, least-squares regression, and Student-t
// inference utilities.
//
// The paper uses (a) log-log least-squares fits to argue the attribute
// value graph degree distribution is power-law (Figure 2) and (b) a
// one-sample t-test over 15 pairwise capture-recapture size estimates to
// bound the Amazon DVD database size with 90% confidence (§5). Both pieces
// of mathematics live here so the estimate/ and graph/ modules share one
// implementation.

#ifndef DEEPCRAWL_UTIL_STATS_H_
#define DEEPCRAWL_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace deepcrawl {

// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Sample variance (divides by n-1). Zero when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Result of an ordinary least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  // coefficient of determination
  size_t n = 0;
};

// Fits a line through (x[i], y[i]). Requires x.size() == y.size() >= 2
// and x not constant.
LinearFit FitLeastSquares(const std::vector<double>& x,
                          const std::vector<double>& y);

// Student-t distribution utilities. `df` is degrees of freedom (>0).
//
// CDF computed through the regularized incomplete beta function;
// quantile by monotone bisection on the CDF. Accuracy ~1e-10, far more
// than experiment reporting needs.
double StudentTCdf(double t, double df);
double StudentTQuantile(double p, double df);  // p in (0,1)

// One-sample t inference over `samples`.
struct TTestResult {
  double mean = 0.0;
  double stddev = 0.0;
  size_t n = 0;
  double df = 0.0;
  // Two-sided confidence interval bounds at the requested level.
  double ci_lower = 0.0;
  double ci_upper = 0.0;
  // One-sided upper bound: P(true mean < one_sided_upper) = level.
  double one_sided_upper = 0.0;
};

// Computes mean confidence bounds at `confidence` (e.g. 0.90).
// Requires samples.size() >= 2.
TTestResult OneSampleTTest(const std::vector<double>& samples,
                           double confidence);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_UTIL_STATS_H_
