#include "src/datagen/adversarial_workload.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/util/random.h"

namespace deepcrawl {
namespace {

// Hard caps so a fuzzed config cannot allocate unbounded memory.
constexpr uint32_t kMaxBuckets = 1u << 15;
constexpr uint32_t kMaxBucketRecords = 1u << 12;
constexpr uint32_t kMaxDecoyWidth = 1u << 12;
constexpr uint64_t kMaxTotalCells = 1ull << 24;

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

uint32_t Log2(uint32_t pow2) {
  uint32_t log = 0;
  while ((1u << log) < pow2) ++log;
  return log;
}

std::string PadIndex(uint32_t index, uint32_t width) {
  std::string digits = std::to_string(index);
  if (digits.size() < width) {
    digits.insert(digits.begin(), width - digits.size(), '0');
  }
  return digits;
}

std::string IntervalText(uint32_t lo, uint32_t hi, uint32_t pad) {
  return "r" + PadIndex(lo, pad) + "-" + PadIndex(hi, pad);
}

}  // namespace

StatusOr<AdversarialInstance> GenerateAdversarialInstance(
    const AdversarialConfig& config) {
  if (config.leaf_buckets == 0) {
    return Status::InvalidArgument("leaf_buckets must be >= 1");
  }
  if (config.bucket_records == 0 ||
      config.bucket_records > kMaxBucketRecords) {
    return Status::InvalidArgument("bucket_records out of range");
  }
  if (config.decoy_width > kMaxDecoyWidth) {
    return Status::InvalidArgument("decoy_width out of range");
  }

  bool trap = config.family == AdversarialFamily::kGreedyTrap;
  uint64_t requested = static_cast<uint64_t>(config.leaf_buckets) +
                       (trap ? config.decoy_buckets : 0);
  if (requested > kMaxBuckets) {
    return Status::InvalidArgument("bucket count out of range");
  }
  uint32_t buckets = RoundUpPow2(static_cast<uint32_t>(requested));
  uint32_t depth = Log2(buckets);
  uint32_t occupied = buckets;
  if (!trap) {
    if (config.occupied_leaves == 0 ||
        config.occupied_leaves > config.leaf_buckets) {
      return Status::InvalidArgument(
          "occupied_leaves must be in [1, leaf_buckets]");
    }
    occupied = config.occupied_leaves;
  }
  uint32_t records_per_bucket = config.bucket_records;
  uint64_t num_records =
      static_cast<uint64_t>(occupied) * records_per_bucket;
  uint64_t cells_per_record = static_cast<uint64_t>(depth) + 1 +
                              (trap ? config.decoy_width + 2 : 0);
  if (num_records * cells_per_record > kMaxTotalCells) {
    return Status::InvalidArgument("instance too large");
  }

  Schema schema;
  DEEPCRAWL_ASSIGN_OR_RETURN(
      AttributeId rank_attr,
      schema.AddAttribute("range", /*multi_valued=*/true));
  DEEPCRAWL_ASSIGN_OR_RETURN(
      AttributeId link_attr,
      schema.AddAttribute("link", /*multi_valued=*/true));
  DEEPCRAWL_ASSIGN_OR_RETURN(
      AttributeId decoy_attr,
      schema.AddAttribute("decoy", /*multi_valued=*/true));

  AdversarialInstance instance{Table(std::move(schema))};
  instance.rank_attribute = rank_attr;
  instance.link_attribute = link_attr;
  instance.decoy_attribute = decoy_attr;
  instance.result_limit = records_per_bucket;
  instance.total_buckets = buckets;
  instance.total_intervals = 2 * buckets - 1;

  // Seeded ghetto placement: a partial Fisher-Yates shuffle picks which
  // buckets carry the decoy mass.
  instance.is_ghetto.assign(trap ? buckets : 0, 0);
  if (trap && config.decoy_buckets > 0) {
    uint32_t ghetto = std::min(config.decoy_buckets, buckets);
    std::vector<uint32_t> order(buckets);
    for (uint32_t i = 0; i < buckets; ++i) order[i] = i;
    Pcg32 rng(config.seed, /*stream=*/0xad5e);
    for (uint32_t i = 0; i < ghetto; ++i) {
      uint32_t j = i + rng.NextBounded(buckets - i);
      std::swap(order[i], order[j]);
      instance.is_ghetto[order[i]] = 1;
    }
  }

  uint32_t pad = static_cast<uint32_t>(
      std::to_string(buckets == 0 ? 0 : buckets - 1).size());
  std::vector<Cell> cells;
  for (uint32_t bucket = 0; bucket < occupied; ++bucket) {
    bool ghetto = trap && instance.is_ghetto[bucket];
    for (uint32_t j = 0; j < records_per_bucket; ++j) {
      cells.clear();
      // Full dyadic ancestor chain, root first: depth d covers
      // buckets [lo, lo + width - 1] with width = B >> d.
      for (uint32_t d = 0; d <= depth; ++d) {
        uint32_t width = buckets >> d;
        uint32_t lo = (bucket / width) * width;
        cells.push_back(
            Cell{rank_attr, IntervalText(lo, lo + width - 1, pad)});
      }
      if (trap) {
        // Reachability stitching: link l<k> joins the last record of
        // bucket k-1 to the first record of bucket k, so greedy can
        // always discover the next bucket (finite, measurable cost).
        if (j == 0 && bucket > 0) {
          cells.push_back(Cell{link_attr, "l" + PadIndex(bucket, pad)});
        }
        if (j + 1 == records_per_bucket && bucket + 1 < buckets) {
          cells.push_back(
              Cell{link_attr, "l" + PadIndex(bucket + 1, pad)});
        }
      }
      if (ghetto) {
        for (uint32_t w = 0; w < config.decoy_width; ++w) {
          cells.push_back(Cell{decoy_attr,
                               "d" + std::to_string(bucket) + "-" +
                                   std::to_string(j) + "-" +
                                   std::to_string(w)});
          ++instance.num_decoy_values;
        }
      }
      DEEPCRAWL_RETURN_IF_ERROR(instance.table.AddRecord(cells).status());
    }
  }

  // Intern the complete hierarchy — including intervals over empty
  // buckets — so the crawler's interface knowledge covers the whole
  // rank domain (a zero-match interval query is answerable, it just
  // returns an empty page).
  for (uint32_t d = 0; d <= depth; ++d) {
    uint32_t width = buckets >> d;
    for (uint32_t lo = 0; lo < buckets; lo += width) {
      instance.table.mutable_catalog().Intern(
          rank_attr, IntervalText(lo, lo + width - 1, pad));
    }
  }

  instance.root_value = instance.table.catalog().Find(
      rank_attr, IntervalText(0, buckets - 1, pad));
  instance.leaf_values.reserve(buckets);
  for (uint32_t bucket = 0; bucket < buckets; ++bucket) {
    instance.leaf_values.push_back(
        instance.table.catalog().Find(rank_attr,
                                      IntervalText(bucket, bucket, pad)));
  }
  instance.num_records = num_records;
  instance.opt_queries =
      (num_records + records_per_bucket - 1) / records_per_bucket;
  return instance;
}

}  // namespace deepcrawl
