# Empty compiler generated dependencies file for deepcrawl_util.
# This may be replaced when dependencies are built.
