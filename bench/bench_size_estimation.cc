// §5 size estimation — "overlap analysis is used to obtain an estimation
// of approximate size" of the Amazon DVD database.
//
// Paper protocol: 6 independent crawls from random seeds, each stopped
// after 5,000 interactions with the server; the overlap of every result
// -set pair gives a capture-recapture estimate (C(6,2) = 15 estimates);
// t-testing yields "with 90% confidence, the Amazon DVD product database
// contains less than 37,000 data records".
//
// This run applies the identical protocol to the regenerated Amazon-like
// target whose TRUE size is known, so the bound can be checked.

#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "src/crawler/naive_selectors.h"
#include "src/datagen/movie_domain.h"
#include "src/estimate/size_estimator.h"
#include "src/util/table_printer.h"

namespace {
constexpr uint32_t kUniverseSize = 40000;
constexpr uint32_t kTargetSize = 12000;
constexpr uint64_t kRoundsPerCrawl = 1600;  // paper's 5,000, scaled
}  // namespace

int main() {
  using namespace deepcrawl;
  bench::PrintBanner(
      "Section 5: Amazon DVD size estimation by overlap analysis",
      "6 independent crawls x 5,000 interactions; 15 pairwise "
      "capture-recapture estimates; one-sided t bound at 90% confidence "
      "(< 37,000 records)",
      "Amazon-like target of known size; 6 crawls x " +
          TablePrinter::FormatCount(kRoundsPerCrawl) + " rounds");

  MovieDomainPairConfig config;
  config.universe_size = kUniverseSize;
  config.target_size = kTargetSize;
  StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
  DEEPCRAWL_CHECK(pair.ok()) << pair.status().ToString();
  const Table& target = pair->target;
  WebDbServer server(target, ServerOptions{});

  SizeEstimationOptions options;
  options.num_crawls = 6;
  options.rounds_per_crawl = kRoundsPerCrawl;
  options.confidence = 0.90;
  options.seed = 17;
  StatusOr<SizeEstimationReport> report = EstimateDatabaseSize(
      server,
      [](const LocalStore& store) {
        // Random selection keeps the six samples closer to independent
        // draws than greedy-link (whose crawls all converge on the same
        // hubs and overstate the overlap).
        (void)store;
        static uint64_t crawl_seed = 100;
        return std::make_unique<RandomSelector>(++crawl_seed);
      },
      options);
  DEEPCRAWL_CHECK(report.ok()) << report.status().ToString();

  TablePrinter crawls({"crawl", "records harvested"});
  for (size_t i = 0; i < report->crawl_sizes.size(); ++i) {
    crawls.AddRow({std::to_string(i + 1),
                   TablePrinter::FormatCount(report->crawl_sizes[i])});
  }
  crawls.Print(std::cout);

  std::cout << "\npairwise capture-recapture estimates ("
            << report->pairwise_estimates.size() << " of 15 had overlap):\n";
  TablePrinter estimates({"pair", "estimated |DB|"});
  for (size_t i = 0; i < report->pairwise_estimates.size(); ++i) {
    estimates.AddRow(
        {std::to_string(i + 1),
         TablePrinter::FormatDouble(report->pairwise_estimates[i], 0)});
  }
  estimates.Print(std::cout);

  const TTestResult& t = report->t_test;
  std::cout << "\nt-inference over the estimates (df=" << t.df
            << "): mean=" << TablePrinter::FormatDouble(t.mean, 0)
            << " stddev=" << TablePrinter::FormatDouble(t.stddev, 0)
            << "\n90% one-sided upper bound: |DB| < "
            << TablePrinter::FormatDouble(t.one_sided_upper, 0)
            << "\ntrue size: "
            << TablePrinter::FormatCount(target.num_records())
            << "  (capture-recapture over crawl samples biases somewhat "
               "low because crawled records are not uniform draws; the "
               "paper's <37,000 Amazon bound carries the same caveat)\n";
  return 0;
}
