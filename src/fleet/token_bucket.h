// TokenBucket: per-source politeness limiter over the fleet's simulated
// clock (DESIGN.md §11).
//
// Two mechanisms share this header because they are the two halves of
// adaptive politeness:
//
//   * the token bucket proper rate-limits how many communication rounds
//     a source may be granted per fleet-clock tick (capacity `burst`,
//     refilled at `rounds_per_tick`) — a static ceiling the operator
//     configures;
//   * the retry-after hard floor is enforced by the fleet itself: when a
//     turn saw rate-limit rejections, the source's next turn is pushed to
//     clock + the largest advertised hint (see CrawlFleet::RunTurn) — the
//     server's own dynamic signal, which always wins over the bucket.
//
// The default config (1 round/tick, burst 1024) never throttles a
// well-behaved crawl — the fleet clock itself advances one tick per
// round consumed, so spend and refill cancel — which is what keeps a
// single-source fleet bit-identical to a bare CrawlEngine. Tighter
// configs carve the global round stream between sources.
//
// Deterministic by construction: refill is a pure function of elapsed
// simulated ticks, never wall time.

#ifndef DEEPCRAWL_FLEET_TOKEN_BUCKET_H_
#define DEEPCRAWL_FLEET_TOKEN_BUCKET_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace deepcrawl {

struct PolitenessConfig {
  // Tokens (= grantable rounds) added per fleet-clock tick. Must be > 0.
  double rounds_per_tick = 1.0;
  // Bucket capacity: the largest burst of rounds a source may be granted
  // at once after sitting idle.
  double burst = 1024.0;
};

class TokenBucket {
 public:
  explicit TokenBucket(PolitenessConfig config)
      : config_(config), tokens_(config.burst) {}

  // Brings the bucket forward to fleet time `now` (monotone; earlier
  // times are ignored).
  void Refill(uint64_t now) {
    if (now <= last_refill_) return;
    tokens_ = std::min(config_.burst,
                       tokens_ + static_cast<double>(now - last_refill_) *
                                     config_.rounds_per_tick);
    last_refill_ = now;
  }

  // A turn needs at least one whole token to be granted at all.
  bool HasToken() const { return tokens_ >= 1.0; }

  // Largest whole number of rounds the bucket can pay for right now —
  // the politeness clamp on a turn's round grant.
  uint64_t AffordableRounds() const {
    return tokens_ < 1.0 ? 0 : static_cast<uint64_t>(tokens_);
  }

  // Ticks from `now` until HasToken() turns true (0 when it already is).
  uint64_t TicksUntilToken(uint64_t now) const {
    if (HasToken()) return 0;
    double deficit = 1.0 - tokens_;
    uint64_t wait =
        static_cast<uint64_t>(std::ceil(deficit / config_.rounds_per_tick));
    (void)now;
    return std::max<uint64_t>(wait, 1);
  }

  void Spend(uint64_t rounds) {
    tokens_ = std::max(0.0, tokens_ - static_cast<double>(rounds));
  }

  double tokens() const { return tokens_; }
  uint64_t last_refill() const { return last_refill_; }
  const PolitenessConfig& config() const { return config_; }

  // Checkpoint restore (see crawl_fleet.cc).
  void Restore(double tokens, uint64_t last_refill) {
    tokens_ = tokens;
    last_refill_ = last_refill;
  }

 private:
  PolitenessConfig config_;
  double tokens_;
  uint64_t last_refill_ = 0;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_FLEET_TOKEN_BUCKET_H_
