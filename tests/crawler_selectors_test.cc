// Tests of the §3.1/§3.2 query selection policies: BFS, DFS, Random,
// Greedy Link, and the cheating Oracle.

#include <gtest/gtest.h>

#include <set>

#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/local_store.h"
#include "src/crawler/naive_selectors.h"
#include "src/crawler/oracle_selector.h"
#include "src/index/inverted_index.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeFigure1Table;

TEST(BfsSelectorTest, FifoOrder) {
  BfsSelector selector;
  selector.OnValueDiscovered(3);
  selector.OnValueDiscovered(1);
  selector.OnValueDiscovered(2);
  EXPECT_EQ(selector.SelectNext(), 3u);
  EXPECT_EQ(selector.SelectNext(), 1u);
  EXPECT_EQ(selector.SelectNext(), 2u);
  EXPECT_EQ(selector.SelectNext(), kInvalidValueId);
}

TEST(DfsSelectorTest, LifoOrder) {
  DfsSelector selector;
  selector.OnValueDiscovered(3);
  selector.OnValueDiscovered(1);
  selector.OnValueDiscovered(2);
  EXPECT_EQ(selector.SelectNext(), 2u);
  EXPECT_EQ(selector.SelectNext(), 1u);
  EXPECT_EQ(selector.SelectNext(), 3u);
  EXPECT_EQ(selector.SelectNext(), kInvalidValueId);
}

TEST(RandomSelectorTest, ReturnsEachValueExactlyOnce) {
  RandomSelector selector(/*seed=*/5);
  for (ValueId v = 0; v < 50; ++v) selector.OnValueDiscovered(v);
  std::set<ValueId> seen;
  for (int i = 0; i < 50; ++i) {
    ValueId v = selector.SelectNext();
    ASSERT_NE(v, kInvalidValueId);
    EXPECT_TRUE(seen.insert(v).second) << "value " << v << " repeated";
  }
  EXPECT_EQ(selector.SelectNext(), kInvalidValueId);
}

TEST(RandomSelectorTest, DeterministicPerSeed) {
  RandomSelector a(9), b(9);
  for (ValueId v = 0; v < 20; ++v) {
    a.OnValueDiscovered(v);
    b.OnValueDiscovered(v);
  }
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.SelectNext(), b.SelectNext());
}

TEST(GreedyLinkSelectorTest, PicksHighestLocalDegree) {
  LocalStore store;
  GreedyLinkSelector selector(store);
  // Simulate discovery: values 1..5 enter the frontier, then records
  // make value 2 the best-connected.
  for (ValueId v = 1; v <= 5; ++v) selector.OnValueDiscovered(v);
  store.AddRecord(0, std::vector<ValueId>{2, 3, 4});
  selector.OnRecordHarvested(0);
  store.AddRecord(1, std::vector<ValueId>{2, 5});
  selector.OnRecordHarvested(1);
  // Degrees: 2 -> {3,4,5} = 3; 3 -> {2,4} = 2; 4 -> {2,3} = 2; 5 -> {2}.
  EXPECT_EQ(selector.SelectNext(), 2u);
  ValueId second = selector.SelectNext();
  EXPECT_TRUE(second == 3u || second == 4u);
}

TEST(GreedyLinkSelectorTest, StaleHeapEntriesAreSkipped) {
  LocalStore store;
  GreedyLinkSelector selector(store);
  selector.OnValueDiscovered(1);
  selector.OnValueDiscovered(2);
  // Value 1 gains degree first...
  store.AddRecord(0, std::vector<ValueId>{1, 3});
  selector.OnRecordHarvested(0);
  // ...then value 2 overtakes it.
  store.AddRecord(1, std::vector<ValueId>{2, 4, 5});
  selector.OnRecordHarvested(1);
  EXPECT_EQ(selector.SelectNext(), 2u);
  EXPECT_EQ(selector.SelectNext(), 1u);
}

TEST(GreedyLinkSelectorTest, FrontierSizeTracksMembership) {
  LocalStore store;
  GreedyLinkSelector selector(store);
  EXPECT_EQ(selector.frontier_size(), 0u);
  selector.OnValueDiscovered(1);
  selector.OnValueDiscovered(2);
  EXPECT_EQ(selector.frontier_size(), 2u);
  (void)selector.SelectNext();
  EXPECT_EQ(selector.frontier_size(), 1u);
  (void)selector.SelectNext();
  (void)selector.SelectNext();  // empty pop is harmless
  EXPECT_EQ(selector.frontier_size(), 0u);
}

TEST(GreedyLinkSelectorTest, DeterministicTieBreakPrefersSmallerId) {
  LocalStore store;
  GreedyLinkSelector selector(store);
  selector.OnValueDiscovered(8);
  selector.OnValueDiscovered(3);
  // Equal (zero) degrees: smaller id first.
  EXPECT_EQ(selector.SelectNext(), 3u);
  EXPECT_EQ(selector.SelectNext(), 8u);
}

TEST(OracleSelectorTest, TrueHarvestRateUsesGroundTruth) {
  Table table = MakeFigure1Table();
  InvertedIndex truth(table);
  LocalStore store;
  OracleSelector selector(store, truth, /*page_size=*/2);
  ValueId a2 = GetValueId(table, "A", "a2");
  ValueId b4 = GetValueId(table, "B", "b4");
  // a2: 3 matches, cost ceil(3/2)=2, nothing local -> HR = 1.5.
  EXPECT_DOUBLE_EQ(selector.TrueHarvestRate(a2), 1.5);
  // b4: 1 match, cost 1 -> HR = 1.0.
  EXPECT_DOUBLE_EQ(selector.TrueHarvestRate(b4), 1.0);
}

TEST(OracleSelectorTest, HarvestRateDropsAsRecordsArrive) {
  Table table = MakeFigure1Table();
  InvertedIndex truth(table);
  LocalStore store;
  OracleSelector selector(store, truth, 2);
  ValueId a2 = GetValueId(table, "A", "a2");
  selector.OnValueDiscovered(a2);
  double before = selector.TrueHarvestRate(a2);
  // Record 1 (a2,b2,c1) arrives locally.
  store.AddRecord(1, std::vector<ValueId>(table.record(1).begin(),
                                          table.record(1).end()));
  selector.OnRecordHarvested(0);
  EXPECT_LT(selector.TrueHarvestRate(a2), before);
}

TEST(OracleSelectorTest, SelectsTrueBestCandidate) {
  Table table = MakeFigure1Table();
  InvertedIndex truth(table);
  LocalStore store;
  OracleSelector selector(store, truth, 2);
  ValueId a2 = GetValueId(table, "A", "a2");  // HR 1.5
  ValueId c1 = GetValueId(table, "C", "c1");  // 2 matches / 1 page = 2.0
  ValueId b4 = GetValueId(table, "B", "b4");  // HR 1.0
  selector.OnValueDiscovered(a2);
  selector.OnValueDiscovered(c1);
  selector.OnValueDiscovered(b4);
  EXPECT_EQ(selector.SelectNext(), c1);
  EXPECT_EQ(selector.SelectNext(), a2);
  EXPECT_EQ(selector.SelectNext(), b4);
  EXPECT_EQ(selector.SelectNext(), kInvalidValueId);
}

TEST(OracleSelectorTest, ResultLimitCapsRate) {
  Table table = MakeFigure1Table();
  InvertedIndex truth(table);
  LocalStore store;
  OracleSelector selector(store, truth, /*page_size=*/2,
                          /*result_limit=*/2);
  ValueId a2 = GetValueId(table, "A", "a2");
  // Only 2 of 3 matches retrievable: 2 new records / 1 round = 2.0.
  EXPECT_DOUBLE_EQ(selector.TrueHarvestRate(a2), 2.0);
}

}  // namespace
}  // namespace deepcrawl
