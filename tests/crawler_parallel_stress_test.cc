// Stress tests for the parallel crawl engine and the sharded store:
// many threads against a fault-injecting source with a scripted
// schedule, checking that no record is lost or double-counted and that
// retry work stays within the policy's bounds. ThreadSanitizer runs
// these same tests in tools/check.sh.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/local_store.h"
#include "src/crawler/naive_selectors.h"
#include "src/crawler/parallel_crawler.h"
#include "src/crawler/retry_policy.h"
#include "src/crawler/sharded_store.h"
#include "src/datagen/movie_domain.h"
#include "src/server/faulty_server.h"
#include "src/server/locked_interface.h"
#include "src/server/web_db_server.h"
#include "src/util/random.h"

namespace deepcrawl {
namespace {

const Table& StressTarget() {
  static const Table* table = [] {
    MovieDomainPairConfig config;
    config.universe_size = 2000;
    config.target_size = 600;
    config.seed = 11;
    StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
    DEEPCRAWL_CHECK(pair.ok()) << pair.status().ToString();
    return new Table(std::move(pair->target));
  }();
  return *table;
}

ValueId FirstQueriableSeed(const Table& table) {
  for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
    if (table.value_frequency(v) > 0) return v;
  }
  ADD_FAILURE() << "table has no queriable value";
  return kInvalidValueId;
}

std::set<RecordId> HarvestedIds(const LocalStore& store) {
  std::set<RecordId> ids;
  for (uint32_t slot = 0; slot < store.num_records(); ++slot) {
    ids.insert(store.OriginalRecordId(slot));
  }
  return ids;
}

// A scripted schedule of failure-only faults (no record-mutating
// actions, so every record stays fetchable), with bursts of at most 2
// consecutive failures. The schedule is positional — action i hits the
// i-th fetch in ARRIVAL order — so under concurrency which query meets
// which fault varies with thread scheduling; the assertions below are
// therefore interleaving-robust invariants, not exact counts.
FaultSchedule FailureBurstSchedule(size_t length) {
  FaultSchedule schedule;
  Pcg32 rng(17);
  size_t consecutive = 0;
  while (schedule.size() < length) {
    uint32_t draw = rng.NextBounded(10);
    FaultAction action = FaultAction::kNone;
    if (consecutive < 2) {
      if (draw < 2) {
        action = FaultAction::kUnavailable;
      } else if (draw < 3) {
        action = FaultAction::kTimeout;
      } else if (draw < 4) {
        action = FaultAction::kRateLimit;
      }
    }
    consecutive = (action == FaultAction::kNone) ? 0 : consecutive + 1;
    schedule.push_back(action);
  }
  return schedule;
}

// Fault-free reference harvest: which records a full BFS crawl from the
// seed can reach at all.
std::set<RecordId> ReferenceHarvest(const Table& target) {
  WebDbServer backend(target, ServerOptions());
  LocalStore store;
  BfsSelector selector;
  Crawler crawler(backend, selector, store, CrawlOptions{});
  crawler.AddSeed(FirstQueriableSeed(target));
  StatusOr<CrawlResult> result = crawler.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  return HarvestedIds(store);
}

TEST(ParallelCrawlerStressTest, NoRecordLostOrDuplicatedUnderFaults) {
  const Table& target = StressTarget();
  std::set<RecordId> reference = ReferenceHarvest(target);
  ASSERT_FALSE(reference.empty());

  WebDbServer backend(target, ServerOptions());
  FaultyServer faulty(backend, FaultProfile(), /*seed=*/1);
  FaultSchedule schedule = FailureBurstSchedule(800);
  size_t scheduled_failures = static_cast<size_t>(std::count_if(
      schedule.begin(), schedule.end(),
      [](FaultAction a) { return a != FaultAction::kNone; }));
  faulty.set_schedule(std::move(schedule));
  LockedQueryInterface server(faulty);

  LocalStore store;
  BfsSelector selector;
  RetryPolicy retry((RetryPolicyConfig()));
  ParallelCrawler crawler(server, selector, store, CrawlOptions{},
                          ParallelOptions{/*threads=*/16, /*batch=*/8},
                          /*abort_policy=*/nullptr, &retry);
  crawler.AddSeed(FirstQueriableSeed(target));
  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // No duplicated records: the store's record count equals the number
  // of distinct original ids, and every harvested id is a real one.
  std::set<RecordId> harvested = HarvestedIds(store);
  EXPECT_EQ(store.num_records(), harvested.size());
  EXPECT_EQ(result->records, harvested.size());
  for (RecordId id : harvested) ASSERT_TRUE(reference.count(id));

  // No lost records: the only sanctioned loss path is value
  // abandonment, so whenever nothing was abandoned the harvest must be
  // EXACTLY the fault-free harvest. (With bursts of <= 2 against a
  // retry budget of 4 attempts, abandonment needs 12 scheduled
  // failures to land on one value — allowed by the positional
  // schedule's arrival-order dependence, but not silently: it shows up
  // in the counters below.)
  const ResilienceCounters& res = result->resilience;
  if (res.abandoned_values == 0) {
    EXPECT_EQ(harvested, reference);
  }

  // Retry accounting is internally consistent and bounded, under every
  // interleaving: each failure is either retried or ends its drain
  // attempt (degrading the query); a requeue costs a full 4-attempt
  // budget; a degraded query was either re-queued or abandoned.
  EXPECT_GT(res.transient_failures, 0u);
  EXPECT_LE(res.transient_failures, scheduled_failures);
  EXPECT_EQ(res.retries + res.degraded_queries, res.transient_failures);
  EXPECT_EQ(res.requeues + res.abandoned_values, res.degraded_queries);
  EXPECT_LE(res.requeues, res.transient_failures / 4);

  // Cost accounting stayed exact across threads: the server's meter and
  // the crawler's round count agree.
  EXPECT_EQ(result->rounds, server.communication_rounds());
}

TEST(ParallelCrawlerStressTest, RepeatedRunsAreIdenticalAcrossSchedulings) {
  // Hammer the engine: the same crawl 5 times at high thread counts must
  // produce the same result every time, whatever the OS scheduler does.
  const Table& target = StressTarget();
  std::vector<TracePoint> reference_trace;
  std::set<RecordId> reference_ids;
  for (int attempt = 0; attempt < 5; ++attempt) {
    WebDbServer backend(target, ServerOptions());
    FaultyServer faulty(backend, FaultProfile::Transient(0.08), /*seed=*/5);
    faulty.set_keyed_faults(true);
    LockedQueryInterface server(faulty);
    LocalStore store;
    BfsSelector selector;
    RetryPolicy retry((RetryPolicyConfig()));
    ParallelCrawler crawler(server, selector, store, CrawlOptions{},
                            ParallelOptions{/*threads=*/16, /*batch=*/6},
                            nullptr, &retry);
    crawler.AddSeed(FirstQueriableSeed(target));
    StatusOr<CrawlResult> result = crawler.Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (attempt == 0) {
      reference_trace = result->trace.points();
      reference_ids = HarvestedIds(store);
      ASSERT_FALSE(reference_trace.empty());
    } else {
      EXPECT_EQ(result->trace.points(), reference_trace);
      EXPECT_EQ(HarvestedIds(store), reference_ids);
    }
  }
}

TEST(ParallelCrawlerStressTest, GreedyHeapGrowthStaysBoundedUnderFaults) {
  // The greedy selector's lazy max-heap dedups same-degree re-pushes, so
  // its lifetime push count is bounded by one push per discovery plus
  // one per degree increment — NOT by one per (record, value) harvest
  // event, which is what an undeduped heap would cost. A bound violation
  // means the dedup regressed into heap blow-up.
  const Table& target = StressTarget();
  WebDbServer backend(target, ServerOptions());
  FaultyServer faulty(backend, FaultProfile::Transient(0.08), /*seed=*/5);
  faulty.set_keyed_faults(true);
  LockedQueryInterface server(faulty);
  LocalStore store;
  GreedyLinkSelector selector(store);
  RetryPolicy retry((RetryPolicyConfig()));
  ParallelCrawler crawler(server, selector, store, CrawlOptions{},
                          ParallelOptions{/*threads=*/16, /*batch=*/8},
                          nullptr, &retry);
  crawler.AddSeed(FirstQueriableSeed(target));
  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(store.num_records(), 0u);

  uint64_t degree_sum = 0;
  for (ValueId v = 0; v < store.num_values_seen(); ++v) {
    degree_sum += store.LocalDegree(v);
  }
  // Each push happens at a strictly larger degree than the previous push
  // of the same value, so per value: pushes <= 1 (discovery) + final
  // local degree. Summed over the dense id space this gives the bound.
  EXPECT_LE(selector.heap_pushes(), store.num_values_seen() + degree_sum)
      << "heap dedup regressed: pushes exceed discovery + degree budget";
  EXPECT_GT(selector.heap_pushes(), 0u);
  // The crawl ran to completion, so the frontier is exhausted and the
  // heap was fully drained popping stale entries.
  EXPECT_EQ(selector.frontier_size(), 0u);
  EXPECT_EQ(selector.heap_size(), 0u);
}

// --- ShardedLocalStore under concurrent ingest ------------------------

TEST(ShardedStoreTest, ConcurrentIngestIsExactlyOnce) {
  constexpr uint32_t kThreads = 8;
  constexpr uint32_t kRecords = 20000;
  constexpr uint32_t kValuesPerRecord = 4;
  constexpr uint32_t kValueSpace = 500;

  // Deterministic synthetic records; every record is offered by TWO
  // threads so the exactly-once guarantee is actually exercised.
  auto values_of = [](RecordId id) {
    std::vector<ValueId> values;
    Pcg32 rng(id * 2654435761u + 1);
    for (uint32_t i = 0; i < kValuesPerRecord; ++i) {
      values.push_back(rng.NextBounded(kValueSpace));
    }
    return values;
  };

  ShardedLocalStore store(/*num_shards=*/32);
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Thread t inserts records where id % (kThreads/2) == t % 4, so
      // threads t and t+4 race on the same ids.
      for (RecordId id = t % (kThreads / 2); id < kRecords;
           id += kThreads / 2) {
        std::vector<ValueId> values = values_of(id);
        store.AddRecord(id, values);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(store.num_records(), kRecords);
  // Each id was offered twice -> observations count both.
  EXPECT_EQ(store.num_observations(), uint64_t{kRecords} * 2);

  // Aggregate statistics match a serial reference exactly.
  std::vector<uint32_t> want_frequency(kValueSpace, 0);
  std::vector<uint64_t> want_links(kValueSpace, 0);
  for (RecordId id = 0; id < kRecords; ++id) {
    for (ValueId v : values_of(id)) {
      want_frequency[v] += 1;
      want_links[v] += kValuesPerRecord - 1;
    }
  }
  for (ValueId v = 0; v < kValueSpace; ++v) {
    EXPECT_EQ(store.LocalFrequency(v), want_frequency[v]) << "value " << v;
    EXPECT_EQ(store.LocalLinkCount(v), want_links[v]) << "value " << v;
  }

  // Snapshot is deterministic: sorted by record id, complete, with the
  // exact value lists each record was inserted with.
  std::vector<std::pair<RecordId, std::vector<ValueId>>> snapshot =
      store.Snapshot();
  ASSERT_EQ(snapshot.size(), kRecords);
  for (RecordId id = 0; id < kRecords; ++id) {
    ASSERT_EQ(snapshot[id].first, id);
    EXPECT_EQ(snapshot[id].second, values_of(id));
  }
}

TEST(ShardedStoreTest, ContainsRecordIsSafeDuringIngest) {
  // Concurrent lookups during ingest must be safe (TSan checks the
  // synchronization) and must never return a corrupt answer — only
  // "not yet" or "present".
  ShardedLocalStore store(/*num_shards=*/8);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (RecordId id = 0; id < 1000; id += 97) {
        store.ContainsRecord(id);
      }
    }
  });
  std::vector<ValueId> values = {1, 2, 3};
  for (RecordId id = 0; id < 1000; ++id) {
    EXPECT_TRUE(store.AddRecord(id, values));
    EXPECT_FALSE(store.AddRecord(id, values));  // duplicate observation
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(store.num_records(), 1000u);
  EXPECT_EQ(store.num_observations(), 2000u);
  for (RecordId id = 0; id < 1000; id += 97) {
    EXPECT_TRUE(store.ContainsRecord(id));
  }
}

}  // namespace
}  // namespace deepcrawl
