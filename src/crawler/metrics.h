// Crawl metrics: the coverage-versus-communication trace behind every
// figure in the paper's evaluation.
//
// Figure 3 plots communication rounds needed to reach a coverage level;
// Figures 5 and 6 plot coverage reached within a round budget. Both are
// projections of the same monotone trace (rounds, records-harvested)
// that the Crawler appends to after every page fetch.

#ifndef DEEPCRAWL_CRAWLER_METRICS_H_
#define DEEPCRAWL_CRAWLER_METRICS_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace deepcrawl {

struct TracePoint {
  uint64_t rounds = 0;   // cumulative communication rounds
  uint64_t records = 0;  // cumulative distinct records harvested

  bool operator==(const TracePoint&) const = default;
};

// Resilience tallies of a crawl under transient source failures (see
// src/crawler/retry_policy.h and src/server/faulty_server.h). All
// counters are cumulative over the crawl, so benches can report
// coverage-under-faults next to the coverage-versus-rounds trace.
struct ResilienceCounters {
  // Page fetches that failed with a retryable status.
  uint64_t transient_failures = 0;
  // Fetches re-issued after a failure (each also cost one round).
  uint64_t retries = 0;
  // Simulated-clock ticks spent backing off between attempts.
  uint64_t backoff_ticks = 0;
  // Values re-queued at the frontier tail after their per-drain retry
  // budget ran out.
  uint64_t requeues = 0;
  // Values dropped for good after exhausting the re-queue budget.
  uint64_t abandoned_values = 0;
  // Queries that ended with pages lost to failures (requeued or
  // abandoned), i.e. completed in degraded mode.
  uint64_t degraded_queries = 0;
  // Fetches rejected with a rate-limit status carrying a retry-after
  // hint. The fleet's politeness limiter reads these (with
  // max_retry_after_hint) to treat the server's hint as a hard floor on
  // when the source may be scheduled again.
  uint64_t rate_limit_rejections = 0;
  // Largest retry-after hint (in clock ticks) any rate-limit rejection
  // carried; 0 when none was ever seen.
  uint64_t max_retry_after_hint = 0;

  bool operator==(const ResilienceCounters&) const = default;
};

// Circuit-breaker transition tallies for one fleet source (see
// src/fleet/circuit_breaker.h for the state machine).
struct BreakerTransitions {
  uint32_t opens = 0;    // closed -> open trips
  uint32_t reopens = 0;  // half-open probe failed -> open again
  uint32_t closes = 0;   // half-open probe succeeded -> closed
  uint32_t probes = 0;   // open -> half-open probe turns granted

  bool operator==(const BreakerTransitions&) const = default;
};

// Per-source degradation report of a fleet crawl: what a source lost to
// faults, how long its breaker kept it quarantined, and every breaker
// transition — so partial results under chaos are explicit, never
// silent (DESIGN.md §11).
struct SourceDegradation {
  uint32_t source_id = 0;
  std::string name;
  // Reached its coverage target or exhausted its frontier.
  bool finished = false;
  // Breaker flapped past the quarantine threshold (capped re-probe
  // backoff engaged).
  bool quarantined = false;
  // The fleet gave up re-probing for good (or the source failed hard).
  bool abandoned = false;
  uint64_t records_harvested = 0;
  // Target shortfall at the end of the run (0 when finished or no
  // target was set).
  uint64_t records_missing = 0;
  // Values the retry machinery dropped after exhausting re-queues.
  uint64_t values_abandoned = 0;
  uint64_t rounds = 0;         // communication rounds this source consumed
  uint64_t turns = 0;          // scheduler turns granted
  uint64_t ticks_quarantined = 0;  // fleet clock ticks spent breaker-open
  BreakerTransitions breaker;

  bool operator==(const SourceDegradation&) const = default;
};

// Monotone (in both fields) crawl progress trace.
class CrawlTrace {
 public:
  // Appends a point; rounds and records must be non-decreasing.
  void Add(uint64_t rounds, uint64_t records);

  // Appends a whole crawl wave of points in one call, with the same
  // collapsing/monotonicity semantics as point-by-point Add. The
  // batched engine buffers each wave's per-page points and flushes them
  // through this single append, so trace emission never assumes one
  // writer per page (see parallel_crawler.cc and the regression test in
  // tests/crawler_trace_wave_test.cc).
  void AddWave(std::span<const TracePoint> points);

  const std::vector<TracePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  // Resilience tallies accumulated alongside the trace points.
  ResilienceCounters& resilience() { return resilience_; }
  const ResilienceCounters& resilience() const { return resilience_; }

  // Fewest rounds after which at least `target_records` records were
  // harvested; nullopt when the trace never reaches the target.
  std::optional<uint64_t> RoundsToRecords(uint64_t target_records) const;

  // Records harvested by the time `rounds` rounds were spent (the last
  // point at or before `rounds`; 0 when the crawl had not started).
  uint64_t RecordsAtRounds(uint64_t rounds) const;

 private:
  std::vector<TracePoint> points_;
  ResilienceCounters resilience_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_METRICS_H_
