// PagedStore: the out-of-core backend behind LocalStore's
// Layout::kPaged — every statistics-table structure the in-memory kCsr
// layout keeps in RAM, rebuilt as paged segments over a shared
// PageCache so a crawl's working state can exceed memory by orders of
// magnitude (ROADMAP item 1; DESIGN.md §14).
//
// Segment map (all fixed-stride arrays over epoch-file shadow pages,
// see src/util/page_cache.h for the on-disk format):
//
//   recvals   record-values CSR data      (ValueId)
//   recoff    record-values CSR offsets   (u64, recoff[slot+1] = end)
//   recid     slot -> original RecordId
//   recobs    slot -> observation count
//   freq      value -> local frequency
//   link      value -> link count (degree with multiplicity)
//   postdata  postings arena              (record slots)
//   postdir   postings row directory      (offset/size/capacity)
//   adjdata   G_local adjacency arena     (neighbor ValueIds)
//   adjdir    adjacency row directory
//   idmap     RecordId -> slot hash       (persistent value->id map)
//   edges     dedup set of (min,max) G_local edge keys
//
// The two dynamic-CSR arenas use the same doubling relocation as
// ChunkedArena but never compact: abandoned chunks cost at most ~3x
// the live data in *disk* (the geometric chunk series), which is the
// cheap resource here, and skipping compaction keeps appends O(1)
// pages touched. Row content order — the thing selectors observe — is
// append order in both layouts, so crawls are bit-identical.
//
// The hash segments grow by generations: a rehash writes a fresh
// `<name>.g<gen+1>` file set and retires the old generation, whose
// files are kept until two more checkpoints commit (older manifests
// may still reference them) and then deleted.
//
// Checkpoint contract: Checkpoint() flushes dirty frames, fsyncs
// everything written since the last checkpoint, durably writes
// MANIFEST.<stamp> (scalars + per-segment page epoch tables), then
// retires epochs that fell out of the two-manifest durable window.
// LoadCheckpoint(stamp) reloads a manifest, sweeps every store file
// the manifest does not reference (crash leftovers), and eagerly
// re-reads every referenced page so corruption surfaces as a clean
// Status at resume time, not an abort mid-crawl.

#ifndef DEEPCRAWL_CRAWLER_PAGED_STORE_H_
#define DEEPCRAWL_CRAWLER_PAGED_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/relation/types.h"
#include "src/util/page_cache.h"
#include "src/util/status.h"

namespace deepcrawl {

// Manifest format version (independent of the crawl checkpoint
// version; the manifest is the store's own recovery root).
inline constexpr uint32_t kPagedManifestVersion = 1;

class PagedStore {
 public:
  struct Options {
    std::string dir;            // store directory (created if missing)
    uint32_t page_bytes = 4096; // power of two, >= 64
    uint32_t cache_pages = 1024;
    bool exact_degrees = true;
    // When false, opening deletes any leftover store files so the
    // store starts empty; when true, files are preserved for a
    // follow-up LoadCheckpoint (which does its own sweep).
    bool resume = false;
  };

  // Opens the store. Aborts on invalid options (page size not a
  // power of two / < 64).
  explicit PagedStore(const Options& options);
  ~PagedStore();

  PagedStore(const PagedStore&) = delete;
  PagedStore& operator=(const PagedStore&) = delete;

  // --- LocalStore-mirroring operations (same contracts) ---
  bool AddRecord(RecordId id, std::span<const ValueId> values);
  bool ContainsRecord(RecordId id) const;
  void ObserveDuplicate(RecordId id);
  void RestoreObservations(RecordId id, uint32_t count);
  uint64_t num_observations() const { return num_observations_; }
  size_t RecordsObservedTimes(uint32_t k) const;
  size_t num_records() const { return num_records_; }
  size_t num_values_seen() const { return num_values_; }
  uint32_t LocalFrequency(ValueId v) const;
  uint64_t LocalDegree(ValueId v) const;
  RecordId OriginalRecordId(uint32_t slot) const;
  uint32_t ObservationCount(uint32_t slot) const;

  // Copy-out accessors (paged rows cross page boundaries, so spans
  // into the cache are impossible; LocalStore serves spans over these
  // into per-accessor scratch buffers).
  void CopyNeighbors(ValueId v, std::vector<ValueId>& out) const;
  void CopyPostings(ValueId v, std::vector<uint32_t>& out) const;
  void CopyRecordValues(uint32_t slot, std::vector<ValueId>& out) const;

  // --- checkpoint / recovery ---
  // Flushes, syncs, and writes MANIFEST.<stamp>; returns the stamp
  // (monotonic from 1) for the crawl checkpoint's STOR section.
  StatusOr<uint64_t> Checkpoint();
  // Restores the store to the state of MANIFEST.<stamp>, discarding
  // all in-cache state, sweeping unreferenced files, and validating
  // every referenced page's checksum.
  Status LoadCheckpoint(uint64_t stamp);

  uint64_t last_stamp() const { return last_stamp_; }
  const PageCacheStats& cache_stats() const;
  const Options& options() const { return options_; }

 private:
  // 16-byte row directory entry for the paged dynamic-CSR arenas.
  struct RowMeta {
    uint64_t offset = 0;
    uint32_t size = 0;
    uint32_t capacity = 0;
  };
  // 16-byte linear-probing slot; key 0 = empty (keys are RecordId+1
  // or packed nonzero edge pairs, so 0 never collides with data).
  struct HashSlot {
    uint64_t key = 0;
    uint32_t value = 0;
    uint32_t pad = 0;
  };

  struct PagedHash;
  struct Impl;

  // Builds an empty Impl (cache + registered segment files).
  void ResetImpl();
  // Store-wide sweep: deletes every file in the directory that starts
  // with a store prefix but is not in `expected` (filenames).
  Status SweepDirectory(const std::vector<std::string>& expected) const;
  // Arena append with doubling relocation (no compaction).
  void ArenaAppend(PagedArray<uint32_t>& data, PagedArray<RowMeta>& dir,
                   uint64_t& tail, uint64_t row, uint32_t value);
  void MoveRange(PagedArray<uint32_t>& data, uint64_t from, uint64_t to,
                 uint64_t count);

  Options options_;
  std::unique_ptr<Impl> impl_;

  // Logical scalars (checkpointed in the manifest).
  uint64_t num_records_ = 0;
  uint64_t num_observations_ = 0;
  uint64_t num_values_ = 0;
  uint64_t recvals_size_ = 0;
  uint64_t post_tail_ = 0;
  uint64_t adj_tail_ = 0;
  uint64_t last_stamp_ = 0;

  // Retired hash-generation files pending deletion once `delete_at`
  // commits (older manifests may reference them until then).
  struct Retired {
    uint64_t delete_at;
    std::vector<std::string> paths;
  };
  std::vector<Retired> retired_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_PAGED_STORE_H_
