#include "src/util/thread_pool.h"

#include <atomic>
#include <utility>

#include "src/util/logging.h"

namespace deepcrawl {

ThreadPool::ThreadPool(unsigned num_threads) {
  DEEPCRAWL_CHECK(num_threads >= 1) << "thread pool needs >= 1 worker";
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_workers_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DEEPCRAWL_CHECK(!stopping_) << "Submit on a stopping pool";
    queue_.push_back(std::move(task));
  }
  wake_workers_.notify_one();
}

void ThreadPool::RunAndWait(std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  // Per-wave completion latch; local so overlapping RunAndWait calls
  // from different threads would not interfere.
  struct Latch {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = tasks.size();
  for (std::function<void()>& task : tasks) {
    Submit([latch, task = std::move(task)] {
      task();
      std::lock_guard<std::mutex> lock(latch->mu);
      if (--latch->remaining == 0) latch->done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->done.wait(lock, [&] { return latch->remaining == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_workers_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace deepcrawl
