# Empty dependencies file for bench_mmmi_ablation.
# This may be replaced when dependencies are built.
