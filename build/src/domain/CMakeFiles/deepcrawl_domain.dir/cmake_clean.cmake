file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_domain.dir/coverage_set.cc.o"
  "CMakeFiles/deepcrawl_domain.dir/coverage_set.cc.o.d"
  "CMakeFiles/deepcrawl_domain.dir/domain_selector.cc.o"
  "CMakeFiles/deepcrawl_domain.dir/domain_selector.cc.o.d"
  "CMakeFiles/deepcrawl_domain.dir/domain_table.cc.o"
  "CMakeFiles/deepcrawl_domain.dir/domain_table.cc.o.d"
  "libdeepcrawl_domain.a"
  "libdeepcrawl_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
