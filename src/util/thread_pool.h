// ThreadPool: a fixed-size worker pool with a single FIFO task queue.
//
// The parallel crawl engine (src/crawler/parallel_crawler.h) issues its
// page fetches in waves: every wave submits up to `batch` independent
// fetch tasks and blocks until all of them finished, then commits the
// results sequentially. That access pattern needs nothing fancier than a
// mutex-guarded queue — no work stealing, no futures, no task graph —
// so that is all this pool provides, keeping the concurrency substrate
// small enough to audit (and to run under ThreadSanitizer in CI, see
// tools/check.sh).
//
// Determinism note: the pool never reorders results — callers index
// their output slots by task rank, so which worker ran a task (and in
// what order tasks completed) is invisible to the caller. This is the
// foundation of the engine's thread-count-invariance contract
// (DESIGN.md §8).

#ifndef DEEPCRAWL_UTIL_THREAD_POOL_H_
#define DEEPCRAWL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace deepcrawl {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (must be >= 1).
  explicit ThreadPool(unsigned num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains the queue (pending tasks still run), then joins the workers.
  ~ThreadPool();

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueues one task. Tasks must not throw (the library is
  // exception-free) and must not submit into the same pool recursively.
  void Submit(std::function<void()> task);

  // Runs every task on the pool and blocks until all of them finished.
  // Tasks may run in any order and on any worker; callers that care
  // about order must write results into rank-indexed slots.
  void RunAndWait(std::vector<std::function<void()>>& tasks);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable wake_workers_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_UTIL_THREAD_POOL_H_
