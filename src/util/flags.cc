#include "src/util/flags.h"

#include <cstdlib>
#include <sstream>

#include "src/util/logging.h"

namespace deepcrawl {

void FlagParser::Register(const std::string& name, Kind kind, void* target,
                          const std::string& help,
                          std::string default_text) {
  DEEPCRAWL_CHECK(target != nullptr);
  DEEPCRAWL_CHECK(!name.empty() && name[0] != '-')
      << "flag names are registered without dashes: " << name;
  bool inserted =
      flags_
          .emplace(name, Flag{kind, target, help, std::move(default_text)})
          .second;
  DEEPCRAWL_CHECK(inserted) << "duplicate flag --" << name;
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           const std::string& help) {
  Register(name, Kind::kString, target, help, "\"" + *target + "\"");
}

void FlagParser::AddInt64(const std::string& name, int64_t* target,
                          const std::string& help) {
  Register(name, Kind::kInt64, target, help, std::to_string(*target));
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           const std::string& help) {
  Register(name, Kind::kDouble, target, help, std::to_string(*target));
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         const std::string& help) {
  Register(name, Kind::kBool, target, help, *target ? "true" : "false");
}

Status FlagParser::Assign(const std::string& name, Flag& flag,
                          const std::string& text) {
  switch (flag.kind) {
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = text;
      return Status::OK();
    case Kind::kInt64: {
      char* end = nullptr;
      long long parsed = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("--" + name + ": expected integer, "
                                       "got '" + text + "'");
      }
      *static_cast<int64_t*>(flag.target) = parsed;
      return Status::OK();
    }
    case Kind::kDouble: {
      char* end = nullptr;
      double parsed = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("--" + name + ": expected number, "
                                       "got '" + text + "'");
      }
      *static_cast<double*>(flag.target) = parsed;
      return Status::OK();
    }
    case Kind::kBool: {
      if (text == "true" || text == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (text == "false" || text == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("--" + name +
                                       ": expected true/false, got '" +
                                       text + "'");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable flag kind");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }

    auto it = flags_.find(body);
    // "--no-foo" negates a registered boolean "foo".
    if (it == flags_.end() && !has_value && body.rfind("no-", 0) == 0) {
      auto no_it = flags_.find(body.substr(3));
      if (no_it != flags_.end() && no_it->second.kind == Kind::kBool) {
        *static_cast<bool*>(no_it->second.target) = false;
        continue;
      }
    }
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + body);
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.kind == Kind::kBool) {
        *static_cast<bool*>(flag.target) = true;
        continue;
      }
      // Consume the next argv element as the value.
      if (i + 1 >= argc) {
        return Status::InvalidArgument("--" + body + " needs a value");
      }
      value = argv[++i];
    }
    DEEPCRAWL_RETURN_IF_ERROR(Assign(body, flag, value));
  }
  return Status::OK();
}

std::string FlagParser::HelpText() const {
  std::ostringstream out;
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name << " (default: " << flag.default_text << ")\n"
        << "      " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace deepcrawl
