// Tests of DomainTable (Definition 4.1) construction and statistics.

#include "src/domain/domain_table.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::MakeTable;

TEST(DomainTableTest, MapsSharedValuesToTargetIds) {
  Table target = MakeTable({
      {{"Actor", "hanks"}, {"Title", "t1"}},
  });
  Table sample = MakeTable({
      {{"Actor", "hanks"}, {"Title", "s1"}},
      {{"Actor", "hanks"}, {"Title", "s2"}},
      {{"Actor", "streep"}, {"Title", "s3"}},
  });
  DomainTable dt =
      DomainTable::Build(sample, target.schema(), target.mutable_catalog());

  EXPECT_EQ(dt.num_domain_records(), 3u);
  ValueId hanks = testing_util::GetValueId(target, "Actor", "hanks");
  EXPECT_TRUE(dt.Contains(hanks));
  EXPECT_EQ(dt.DomainFrequency(hanks), 2u);
  EXPECT_NEAR(dt.Probability(hanks), 2.0 / 3.0, 1e-12);
}

TEST(DomainTableTest, UnseenValuesAreInternedIntoTargetCatalog) {
  Table target = MakeTable({{{"Actor", "hanks"}, {"Title", "t1"}}});
  size_t before = target.num_distinct_values();
  Table sample = MakeTable({{{"Actor", "streep"}, {"Title", "s1"}}});
  DomainTable dt =
      DomainTable::Build(sample, target.schema(), target.mutable_catalog());

  // "streep" and "s1" got fresh target ids with zero target postings.
  EXPECT_GT(target.catalog().size(), before);
  StatusOr<AttributeId> actor = target.schema().FindAttribute("Actor");
  ASSERT_TRUE(actor.ok());
  ValueId streep = target.catalog().Find(*actor, "streep");
  ASSERT_NE(streep, kInvalidValueId);
  EXPECT_TRUE(dt.Contains(streep));
  EXPECT_EQ(target.value_frequency(streep), 0u);
}

TEST(DomainTableTest, AttributesMissingFromTargetAreSkipped) {
  Table target = MakeTable({{{"Actor", "hanks"}}});
  Table sample = MakeTable({
      {{"Actor", "hanks"}, {"BoxOffice", "1M"}},
  });
  DomainTable dt =
      DomainTable::Build(sample, target.schema(), target.mutable_catalog());
  // BoxOffice is not queriable on the target: no entry for "1M".
  EXPECT_EQ(dt.num_entries(), 1u);
}

TEST(DomainTableTest, PostingsAreSortedDomainRecordIds) {
  Table target = MakeTable({{{"Actor", "hanks"}, {"Title", "t"}}});
  Table sample = MakeTable({
      {{"Actor", "streep"}, {"Title", "s0"}},
      {{"Actor", "hanks"}, {"Title", "s1"}},
      {{"Actor", "hanks"}, {"Title", "s2"}},
  });
  DomainTable dt =
      DomainTable::Build(sample, target.schema(), target.mutable_catalog());
  ValueId hanks = testing_util::GetValueId(target, "Actor", "hanks");
  auto postings = dt.DomainPostings(hanks);
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0], 1u);
  EXPECT_EQ(postings[1], 2u);
}

TEST(DomainTableTest, MissingValueHasZeroStatistics) {
  Table target = MakeTable({{{"Actor", "hanks"}}});
  Table sample = MakeTable({{{"Actor", "hanks"}}});
  DomainTable dt =
      DomainTable::Build(sample, target.schema(), target.mutable_catalog());
  EXPECT_FALSE(dt.Contains(9999));
  EXPECT_EQ(dt.DomainFrequency(9999), 0u);
  EXPECT_EQ(dt.Probability(9999), 0.0);
  EXPECT_TRUE(dt.DomainPostings(9999).empty());
}

TEST(DomainTableTest, ValuesListMatchesEntries) {
  Table target = MakeTable({{{"Actor", "a"}, {"Title", "t"}}});
  Table sample = MakeTable({
      {{"Actor", "a"}, {"Title", "x"}},
      {{"Actor", "b"}, {"Title", "y"}},
  });
  DomainTable dt =
      DomainTable::Build(sample, target.schema(), target.mutable_catalog());
  EXPECT_EQ(dt.values().size(), dt.num_entries());
  for (ValueId v : dt.values()) {
    EXPECT_TRUE(dt.Contains(v));
    EXPECT_GT(dt.DomainFrequency(v), 0u);
  }
}

}  // namespace
}  // namespace deepcrawl
