// Tests of seed-reachability analysis ("convergence coverage", §1/§4).

#include "src/graph/reachability.h"

#include <gtest/gtest.h>

#include "src/crawler/crawler.h"
#include "src/crawler/naive_selectors.h"
#include "src/server/web_db_server.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeFigure1Table;
using testing_util::MakeTable;

TEST(ReachabilityTest, Figure1FullyReachableFromA2) {
  Table table = MakeFigure1Table();
  InvertedIndex index(table);
  ValueId a2 = GetValueId(table, "A", "a2");
  ReachabilityReport report =
      ComputeReachability(table, index, std::vector<ValueId>{a2});
  EXPECT_EQ(report.reachable_records, table.num_records());
  EXPECT_DOUBLE_EQ(report.record_fraction, 1.0);
  EXPECT_EQ(report.reachable_values, table.num_distinct_values());
  // Example 2.1 needs three query waves from a2: a2 -> {...c2}, c2 ->
  // (a3,b4) / c1 -> (a1,b1).
  EXPECT_GE(report.max_depth, 2u);
  EXPECT_LE(report.max_depth, 3u);
}

TEST(ReachabilityTest, DataIslandStaysUnreachable) {
  Table table = MakeTable({
      {{"X", "x1"}, {"Y", "y1"}},
      {{"X", "x1"}, {"Y", "y2"}},
      {{"X", "x2"}, {"Y", "y3"}},
  });
  InvertedIndex index(table);
  ValueId x1 = GetValueId(table, "X", "x1");
  ReachabilityReport report =
      ComputeReachability(table, index, std::vector<ValueId>{x1});
  EXPECT_EQ(report.reachable_records, 2u);
  EXPECT_TRUE(report.reachable_record[0]);
  EXPECT_TRUE(report.reachable_record[1]);
  EXPECT_FALSE(report.reachable_record[2]);
}

TEST(ReachabilityTest, MultipleSeedsUnionTheirComponents) {
  Table table = MakeTable({
      {{"X", "x1"}, {"Y", "y1"}},
      {{"X", "x2"}, {"Y", "y2"}},
  });
  InvertedIndex index(table);
  std::vector<ValueId> seeds = {GetValueId(table, "X", "x1"),
                                GetValueId(table, "X", "x2")};
  ReachabilityReport report = ComputeReachability(table, index, seeds);
  EXPECT_EQ(report.reachable_records, 2u);
}

TEST(ReachabilityTest, UnknownSeedIsIgnored) {
  Table table = MakeFigure1Table();
  InvertedIndex index(table);
  ReachabilityReport report =
      ComputeReachability(table, index, std::vector<ValueId>{99999});
  EXPECT_EQ(report.reachable_records, 0u);
  EXPECT_EQ(report.reachable_values, 0u);
}

TEST(ReachabilityTest, ResultLimitCutsReachability) {
  // Hub h matches 5 records; only record 4 carries the bridge value to
  // a second cluster. With limit 3 the bridge record is never returned
  // (§5.4: limits reduce effective connectivity).
  Table table = MakeTable({
      {{"H", "h"}, {"Id", "r0"}},
      {{"H", "h"}, {"Id", "r1"}},
      {{"H", "h"}, {"Id", "r2"}},
      {{"H", "h"}, {"Id", "r3"}},
      {{"H", "h"}, {"Bridge", "b"}},
      {{"Bridge", "b"}, {"Id", "far"}},
  });
  InvertedIndex index(table);
  ValueId h = GetValueId(table, "H", "h");

  ReachabilityReport unlimited =
      ComputeReachability(table, index, std::vector<ValueId>{h});
  EXPECT_EQ(unlimited.reachable_records, 6u);

  ReachabilityReport limited = ComputeReachabilityWithLimit(
      table, index, std::vector<ValueId>{h}, /*result_limit=*/3);
  EXPECT_EQ(limited.reachable_records, 3u);
}

TEST(ReachabilityTest, CrawlNeverExceedsConvergenceCoverage) {
  // Property: any crawl's harvest is bounded by the reachability fixed
  // point of its seed, and an exhaustive crawl attains it.
  Table table = MakeTable({
      {{"A", "p"}, {"B", "q"}},
      {{"A", "p"}, {"B", "r"}},
      {{"A", "s"}, {"B", "r"}},
      {{"A", "t"}, {"B", "u"}},  // island
  });
  InvertedIndex index(table);
  for (ValueId seed = 0; seed < table.num_distinct_values(); ++seed) {
    ReachabilityReport bound =
        ComputeReachability(table, index, std::vector<ValueId>{seed});
    WebDbServer server(table, ServerOptions{});
    LocalStore store;
    BfsSelector selector;
    Crawler crawler(server, selector, store, CrawlOptions{});
    crawler.AddSeed(seed);
    StatusOr<CrawlResult> result = crawler.Run();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->records, bound.reachable_records) << "seed " << seed;
  }
}

}  // namespace
}  // namespace deepcrawl
