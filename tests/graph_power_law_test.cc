#include "src/graph/power_law.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace deepcrawl {
namespace {

// Builds a histogram following frequency(d) = round(C * d^-alpha).
std::vector<uint64_t> SyntheticPowerLawHistogram(double alpha, double c,
                                                 size_t max_degree) {
  std::vector<uint64_t> histogram(max_degree + 1, 0);
  for (size_t d = 1; d <= max_degree; ++d) {
    histogram[d] = static_cast<uint64_t>(
        std::llround(c * std::pow(static_cast<double>(d), -alpha)));
  }
  return histogram;
}

TEST(PowerLawTest, LogLogPointsSkipEmptyBinsAndDegreeZero) {
  std::vector<uint64_t> histogram = {7, 4, 0, 2};
  std::vector<LogLogPoint> points = ToLogLogPoints(histogram);
  ASSERT_EQ(points.size(), 2u);  // degrees 1 and 3 only
  EXPECT_DOUBLE_EQ(points[0].log10_degree, 0.0);
  EXPECT_DOUBLE_EQ(points[0].log10_frequency, std::log10(4.0));
  EXPECT_DOUBLE_EQ(points[1].log10_degree, std::log10(3.0));
}

TEST(PowerLawTest, FitRecoversExponent) {
  for (double alpha : {1.5, 2.0, 2.5}) {
    std::vector<uint64_t> histogram =
        SyntheticPowerLawHistogram(alpha, 1e6, 200);
    PowerLawFit fit = FitPowerLaw(ToLogLogPoints(histogram));
    EXPECT_NEAR(fit.exponent, alpha, 0.1) << "alpha=" << alpha;
    EXPECT_GT(fit.r_squared, 0.98);
  }
}

TEST(PowerLawTest, LogBinningReducesPointCount) {
  std::vector<uint64_t> histogram =
      SyntheticPowerLawHistogram(2.0, 1e6, 1000);
  std::vector<LogLogPoint> raw = ToLogLogPoints(histogram);
  std::vector<LogLogPoint> binned = ToLogBinnedPoints(histogram, 2.0);
  EXPECT_LT(binned.size(), raw.size());
  EXPECT_GE(binned.size(), 5u);
}

TEST(PowerLawTest, LogBinnedFitStillRecoversExponent) {
  std::vector<uint64_t> histogram =
      SyntheticPowerLawHistogram(2.2, 1e7, 2000);
  PowerLawFit fit = FitPowerLaw(ToLogBinnedPoints(histogram, 1.7));
  EXPECT_NEAR(fit.exponent, 2.2, 0.25);
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(PowerLawTest, UniformDegreesFitFlat) {
  // Every degree has the same frequency: exponent ~ 0.
  std::vector<uint64_t> histogram(50, 10);
  histogram[0] = 0;
  PowerLawFit fit = FitPowerLaw(ToLogLogPoints(histogram));
  EXPECT_NEAR(fit.exponent, 0.0, 1e-9);
}

}  // namespace
}  // namespace deepcrawl
