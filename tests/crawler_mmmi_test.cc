// Tests of the Min-Max Mutual Information selector (§3.3).

#include "src/crawler/mmmi_selector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/crawler/crawler.h"
#include "src/server/web_db_server.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeTable;

TEST(MmmiSelectorTest, BehavesLikeGreedyBeforeSaturation) {
  LocalStore store;
  MmmiSelector selector(store);
  EXPECT_FALSE(selector.saturated());
  selector.OnValueDiscovered(1);
  selector.OnValueDiscovered(2);
  store.AddRecord(0, std::vector<ValueId>{2, 3, 4});
  selector.OnRecordHarvested(0);
  EXPECT_EQ(selector.SelectNext(), 2u);  // highest degree, greedy phase
}

TEST(MmmiSelectorTest, DependencyScoreIsMaxPmiWithIssuedQueries) {
  LocalStore store;
  MmmiSelector selector(store);
  // DBlocal: 4 records. Value 10 always co-occurs with issued query 1;
  // value 20 never does.
  store.AddRecord(0, std::vector<ValueId>{1, 10});
  store.AddRecord(1, std::vector<ValueId>{1, 10});
  store.AddRecord(2, std::vector<ValueId>{2, 20});
  store.AddRecord(3, std::vector<ValueId>{2, 30});

  QueryOutcome q1;
  q1.value = 1;
  selector.OnQueryCompleted(q1);

  // s(10) = ln( P(10,1) / (P(10) P(1)) ) = ln( (2/4) / ((2/4)(2/4)) )
  //       = ln 2.
  EXPECT_NEAR(selector.DependencyScore(10), std::log(2.0), 1e-12);
  // Value 20 shares no record with any issued query.
  EXPECT_EQ(selector.DependencyScore(20),
            -std::numeric_limits<double>::infinity());
}

TEST(MmmiSelectorTest, DependencyScoreTakesMaxOverQueries) {
  LocalStore store;
  MmmiSelector selector(store);
  store.AddRecord(0, std::vector<ValueId>{1, 10});
  store.AddRecord(1, std::vector<ValueId>{2, 10});
  store.AddRecord(2, std::vector<ValueId>{2, 10});
  store.AddRecord(3, std::vector<ValueId>{3, 4});

  QueryOutcome q;
  q.value = 1;
  selector.OnQueryCompleted(q);
  q.value = 2;
  selector.OnQueryCompleted(q);

  // PMI with 2 (co=2, freq2=2, freq10=3): ln(2*4/(3*2)) = ln(4/3).
  // PMI with 1 (co=1, freq1=1, freq10=3): ln(1*4/(3*1)) = ln(4/3).
  // Equal here; make query 2 stronger by construction of a tighter pair:
  EXPECT_NEAR(selector.DependencyScore(10), std::log(4.0 / 3.0), 1e-12);
}

TEST(MmmiSelectorTest, AfterSaturationPrefersUncorrelatedCandidates) {
  LocalStore store;
  MmmiSelector selector(store);
  // Frontier: 10 (correlated with issued 1), 20 (uncorrelated).
  selector.OnValueDiscovered(10);
  selector.OnValueDiscovered(20);
  store.AddRecord(0, std::vector<ValueId>{1, 10});
  selector.OnRecordHarvested(0);
  store.AddRecord(1, std::vector<ValueId>{1, 10, 11});
  selector.OnRecordHarvested(1);
  store.AddRecord(2, std::vector<ValueId>{2, 20});
  selector.OnRecordHarvested(2);

  QueryOutcome q1;
  q1.value = 1;
  selector.OnQueryCompleted(q1);

  // Greedy would pick 10 (degree 3 > degree 1); MMMI picks 20.
  selector.OnSaturation();
  EXPECT_TRUE(selector.saturated());
  EXPECT_EQ(selector.SelectNext(), 20u);
  EXPECT_EQ(selector.SelectNext(), 10u);
  EXPECT_EQ(selector.SelectNext(), kInvalidValueId);
}

TEST(MmmiSelectorTest, BatchIsRecomputedWhenExhausted) {
  MmmiOptions options;
  options.batch_size = 1;  // force re-ranking on every selection
  LocalStore store;
  MmmiSelector selector(store, options);
  selector.OnValueDiscovered(10);
  selector.OnValueDiscovered(20);
  selector.OnValueDiscovered(30);
  store.AddRecord(0, std::vector<ValueId>{10, 20, 30});
  selector.OnRecordHarvested(0);
  selector.OnSaturation();
  std::set<ValueId> drained;
  for (int i = 0; i < 3; ++i) drained.insert(selector.SelectNext());
  EXPECT_EQ(drained, (std::set<ValueId>{10, 20, 30}));
  EXPECT_EQ(selector.SelectNext(), kInvalidValueId);
}

TEST(MmmiSelectorTest, ValuesDiscoveredAfterSaturationAreStillServed) {
  LocalStore store;
  MmmiSelector selector(store);
  selector.OnSaturation();
  selector.OnValueDiscovered(5);
  store.AddRecord(0, std::vector<ValueId>{5, 6});
  selector.OnRecordHarvested(0);
  EXPECT_EQ(selector.SelectNext(), 5u);
}

TEST(MmmiSelectorTest, FullCrawlWithSaturationSwitchCompletes) {
  // End-to-end: a correlated database crawled through the switch-over.
  std::vector<testing_util::Row> rows;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 6; ++i) {
      rows.push_back({
          // A shared marketplace value keeps the AVG connected across
          // the otherwise-disjoint communities.
          {"Shop", "main"},
          {"Community", "c" + std::to_string(c)},
          {"Member", "m" + std::to_string(c) + "_" + std::to_string(i % 3)},
          {"Item", "i" + std::to_string(c) + "_" + std::to_string(i)},
      });
    }
  }
  Table table = MakeTable(rows);
  ServerOptions server_options;
  server_options.page_size = 3;
  WebDbServer server(table, server_options);
  LocalStore store;
  MmmiSelector selector(store);
  CrawlOptions crawl_options;
  crawl_options.saturation_records = table.num_records() / 2;
  Crawler crawler(server, selector, store, crawl_options);
  crawler.AddSeed(GetValueId(table, "Community", "c0"));

  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(selector.saturated());
  EXPECT_EQ(result->records, table.num_records());
}

}  // namespace
}  // namespace deepcrawl
