#include "src/graph/power_law.h"

#include <cmath>

#include "src/util/logging.h"

namespace deepcrawl {

std::vector<LogLogPoint> ToLogLogPoints(
    const std::vector<uint64_t>& histogram) {
  std::vector<LogLogPoint> points;
  for (size_t d = 1; d < histogram.size(); ++d) {
    if (histogram[d] == 0) continue;
    points.push_back(LogLogPoint{
        std::log10(static_cast<double>(d)),
        std::log10(static_cast<double>(histogram[d]))});
  }
  return points;
}

std::vector<LogLogPoint> ToLogBinnedPoints(
    const std::vector<uint64_t>& histogram, double bin_ratio) {
  DEEPCRAWL_CHECK_GT(bin_ratio, 1.0) << "bin ratio must exceed 1";
  std::vector<LogLogPoint> points;
  double lo = 1.0;
  while (lo < static_cast<double>(histogram.size())) {
    double hi = lo * bin_ratio;
    uint64_t total = 0;
    size_t width = 0;
    for (size_t d = static_cast<size_t>(lo);
         d < histogram.size() && static_cast<double>(d) < hi; ++d) {
      total += histogram[d];
      ++width;
    }
    if (width > 0 && total > 0) {
      double center = std::sqrt(lo * std::min(
          hi, static_cast<double>(histogram.size())));
      double avg_frequency =
          static_cast<double>(total) / static_cast<double>(width);
      points.push_back(LogLogPoint{std::log10(center),
                                   std::log10(avg_frequency)});
    }
    lo = hi;
  }
  return points;
}

PowerLawFit FitPowerLaw(std::vector<LogLogPoint> points) {
  DEEPCRAWL_CHECK_GE(points.size(), 2u)
      << "need at least two log-log points to fit a power law";
  std::vector<double> x, y;
  x.reserve(points.size());
  y.reserve(points.size());
  for (const LogLogPoint& p : points) {
    x.push_back(p.log10_degree);
    y.push_back(p.log10_frequency);
  }
  LinearFit line = FitLeastSquares(x, y);
  PowerLawFit fit;
  fit.exponent = -line.slope;
  fit.r_squared = line.r_squared;
  fit.points = std::move(points);
  return fit;
}

}  // namespace deepcrawl
