#include "src/datagen/movie_domain.h"

#include <gtest/gtest.h>

#include "src/domain/domain_table.h"
#include "src/graph/components.h"

namespace deepcrawl {
namespace {

MovieDomainPairConfig SmallConfig() {
  MovieDomainPairConfig config;
  config.universe_size = 3000;
  config.target_size = 900;
  config.seed = 21;
  return config;
}

TEST(MovieDomainTest, SizesFollowThePaperShape) {
  StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(SmallConfig());
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  EXPECT_EQ(pair->universe.num_records(), 3000u);
  // Bernoulli sampling: within 30% of the requested expectation.
  EXPECT_NEAR(static_cast<double>(pair->target.num_records()), 900.0, 270.0);
  // DM(I) (post-1960) is a superset of DM(II) (post-1980); both are
  // proper, sizable subsets of the universe.
  EXPECT_GT(pair->dm1.num_records(), pair->dm2.num_records());
  EXPECT_LT(pair->dm1.num_records(), pair->universe.num_records());
  double dm1_fraction = static_cast<double>(pair->dm1.num_records()) /
                        static_cast<double>(pair->universe.num_records());
  double dm2_fraction = static_cast<double>(pair->dm2.num_records()) /
                        static_cast<double>(pair->universe.num_records());
  // Paper: 270k/400k = 0.675 and 190k/400k = 0.475.
  EXPECT_NEAR(dm1_fraction, 0.675, 0.15);
  EXPECT_NEAR(dm2_fraction, 0.475, 0.15);
}

TEST(MovieDomainTest, TargetSchemaHasEditionAttribute) {
  StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(SmallConfig());
  ASSERT_TRUE(pair.ok());
  EXPECT_TRUE(pair->target.schema().FindAttribute("Edition").ok());
  EXPECT_FALSE(pair->universe.schema().FindAttribute("Edition").ok());
  EXPECT_TRUE(pair->target.schema().FindAttribute("Actor").ok());
}

TEST(MovieDomainTest, DomainTablesOverlapTargetValues) {
  StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(SmallConfig());
  ASSERT_TRUE(pair.ok());
  Table& target = pair->target;
  size_t values_before = target.num_distinct_values();
  DomainTable dt1 = DomainTable::Build(pair->dm1, target.schema(),
                                       target.mutable_catalog());
  // A sizable share of the target's own values must be DT candidates,
  // and DT must contribute additional (unseen) candidates.
  size_t shared = 0;
  for (ValueId v = 0; v < values_before; ++v) {
    if (dt1.Contains(v)) ++shared;
  }
  EXPECT_GT(static_cast<double>(shared) / values_before, 0.5);
  EXPECT_GT(target.num_distinct_values(), values_before);
}

TEST(MovieDomainTest, LargerDomainTableCoversMoreOfTheTarget) {
  StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(SmallConfig());
  ASSERT_TRUE(pair.ok());
  Table& target = pair->target;
  size_t values_before = target.num_distinct_values();
  DomainTable dt1 = DomainTable::Build(pair->dm1, target.schema(),
                                       target.mutable_catalog());
  DomainTable dt2 = DomainTable::Build(pair->dm2, target.schema(),
                                       target.mutable_catalog());
  size_t shared1 = 0, shared2 = 0;
  for (ValueId v = 0; v < values_before; ++v) {
    if (dt1.Contains(v)) ++shared1;
    if (dt2.Contains(v)) ++shared2;
  }
  EXPECT_GT(shared1, shared2);  // DM(I) knows more of the target
}

TEST(MovieDomainTest, TargetIsWellConnected) {
  StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(SmallConfig());
  ASSERT_TRUE(pair.ok());
  ConnectivityReport report = AnalyzeConnectivity(pair->target);
  EXPECT_GT(report.largest_component_record_fraction, 0.9);
}

TEST(MovieDomainTest, DeterministicForFixedSeed) {
  StatusOr<MovieDomainPair> a = GenerateMovieDomainPair(SmallConfig());
  StatusOr<MovieDomainPair> b = GenerateMovieDomainPair(SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->target.num_records(), b->target.num_records());
  EXPECT_EQ(a->dm1.num_records(), b->dm1.num_records());
  EXPECT_EQ(a->universe.num_distinct_values(),
            b->universe.num_distinct_values());
}

TEST(MovieDomainTest, InvalidConfigsRejected) {
  MovieDomainPairConfig config = SmallConfig();
  config.target_size = config.universe_size + 1;
  EXPECT_FALSE(GenerateMovieDomainPair(config).ok());

  config = SmallConfig();
  config.universe_size = 0;
  EXPECT_FALSE(GenerateMovieDomainPair(config).ok());

  config = SmallConfig();
  config.min_year = 2000;
  config.max_year = 1990;
  EXPECT_FALSE(GenerateMovieDomainPair(config).ok());
}

}  // namespace
}  // namespace deepcrawl
