file(REMOVE_RECURSE
  "libdeepcrawl_crawler.a"
)
