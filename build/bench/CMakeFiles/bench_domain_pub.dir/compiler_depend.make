# Empty compiler generated dependencies file for bench_domain_pub.
# This may be replaced when dependencies are built.
