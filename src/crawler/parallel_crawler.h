// ParallelCrawler: the batched, multi-threaded crawl engine.
//
// The serial Crawler (crawler.h) issues one page fetch at a time; real
// deep-web crawlers amortize network latency by keeping several queries
// in flight at once (the round-limited access model of Sheng et al.,
// PAPERS.md). This engine crawls in WAVES over a fixed set of `batch`
// drain slots:
//
//   1. refill — empty slots take the next frontier values, in slot
//      order (so slot rank == selector rank);
//   2. fetch  — every active slot issues exactly one page fetch; the
//      fetches run concurrently on a ThreadPool, against a thread-safe
//      QueryInterface (see src/server/locked_interface.h);
//   3. commit — results are applied strictly in slot order, never in
//      completion order: records are deduplicated and stored, values
//      discovered, selector callbacks fired, retries/backoff decided,
//      and the wave's trace points appended in one buffered call.
//
// Determinism contract (tested exhaustively by
// tests/crawler_parallel_differential_test.cc; see DESIGN.md §8):
//
//   * batch == 1 reproduces the serial Crawler BIT-IDENTICALLY: same
//     seed ⇒ same queries in the same order, same trace points, same
//     ResilienceCounters, same stop reason — at any thread count.
//   * for ANY batch, the output is a pure function of (seed, batch):
//     the thread count changes wall-clock time and nothing else.
//   * batch > 1 is a semantic parameter: each wave picks its top-B
//     frontier candidates from the knowledge of the previous wave
//     (queries within a wave cannot see each other's results — exactly
//     the round-limited model), so its query order legitimately differs
//     from batch == 1 for history-sensitive selectors.
//
// The engine composes with the PR-1 resilience layer: transient fetch
// failures are retried per slot (the failed page is simply re-fetched
// in the next wave after the backoff is charged), and exhausted values
// are re-queued/abandoned with the same bookkeeping as the serial
// crawler.

#ifndef DEEPCRAWL_CRAWLER_PARALLEL_CRAWLER_H_
#define DEEPCRAWL_CRAWLER_PARALLEL_CRAWLER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/crawler/abort_policy.h"
#include "src/crawler/crawler.h"
#include "src/crawler/local_store.h"
#include "src/crawler/metrics.h"
#include "src/crawler/query_selector.h"
#include "src/crawler/retry_policy.h"
#include "src/server/query_interface.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace deepcrawl {

struct ParallelOptions {
  // Worker threads fetching pages (>= 1). Affects wall-clock only.
  uint32_t threads = 4;
  // Concurrent drain slots per wave (>= 1). Affects crawl semantics:
  // batch == 1 is exactly the serial crawl order.
  uint32_t batch = 4;
};

class ParallelCrawler {
 public:
  // All referenced objects must outlive the crawler. When
  // parallel.threads > 1 the server must be thread-safe (wrap it in a
  // LockedQueryInterface); `abort_policy` and `retry_policy` follow the
  // serial Crawler's contract.
  ParallelCrawler(QueryInterface& server, QuerySelector& selector,
                  LocalStore& store, CrawlOptions options,
                  ParallelOptions parallel,
                  AbortPolicy* abort_policy = nullptr,
                  const RetryPolicy* retry_policy = nullptr);

  ParallelCrawler(const ParallelCrawler&) = delete;
  ParallelCrawler& operator=(const ParallelCrawler&) = delete;

  // Plants a seed value; duplicate seeds are ignored (same as serial).
  void AddSeed(ValueId v);

  // Runs waves until a stop condition fires. Like the serial crawler,
  // Run() may be called again to continue: slots interrupted by the
  // round budget stay parked and resume exactly, with no page
  // re-fetched and no record double-counted.
  StatusOr<CrawlResult> Run();

  void set_max_rounds(uint64_t max_rounds) {
    options_.max_rounds = max_rounds;
  }
  // Adjusts the record target between Run() calls (0 = unbounded),
  // enabling staged crawls (e.g. the marginal-phase timing in
  // bench_mmmi_ablation: crawl to saturation, then raise the target and
  // time only the MMMI phase).
  void set_target_records(uint64_t target_records) {
    options_.target_records = target_records;
  }
  uint64_t rounds_used() const { return rounds_used_; }
  const LocalStore& store() const { return store_; }
  const SimulatedClock& clock() const { return clock_; }
  const ParallelOptions& parallel_options() const { return parallel_; }

 private:
  // One in-flight drain: which value, which page comes next, and the
  // outcome accumulated so far. Parked across Run() calls on budget
  // expiry (the batched generalization of the serial PendingDrain).
  struct Slot {
    ValueId value = kInvalidValueId;
    uint32_t next_page = 0;
    uint32_t failures = 0;
    QueryOutcome outcome;
  };

  void DiscoverValue(ValueId v);
  ValueId NextValue();
  // Applies one fetched page to the crawl state (serial semantics; see
  // the drain loop in crawler.cc). Clears `slot_box` when the drain
  // ended; leaves it parked for the next wave otherwise. Returns a
  // non-OK status only when the crawl must fail.
  Status CommitFetch(std::optional<Slot>& slot_box,
                     StatusOr<ResultPage> fetched);
  // Drain-finished bookkeeping shared by the completion paths.
  void FinishDrain(std::optional<Slot>& slot_box);
  void CheckSaturation();

  QueryInterface& server_;
  QuerySelector& selector_;
  LocalStore& store_;
  CrawlOptions options_;
  ParallelOptions parallel_;
  AbortPolicy* abort_policy_;
  const RetryPolicy* retry_policy_;
  std::unique_ptr<ThreadPool> pool_;

  std::vector<char> seen_;
  bool saturation_notified_ = false;
  uint64_t rounds_used_ = 0;
  uint64_t queries_issued_ = 0;
  CrawlTrace trace_;
  SimulatedClock clock_;
  std::deque<ValueId> retry_queue_;
  std::unordered_map<ValueId, uint32_t> requeue_count_;

  std::vector<std::optional<Slot>> slots_;
  // The wave currently being executed (slot indices, lowest rank
  // first) and how many of its fetches have been committed. A wave is
  // an atomic unit of the crawl order: when the round budget expires
  // mid-wave, the unfetched suffix survives across Run() calls and is
  // fetched FIRST on resume, before any refill — this is what makes a
  // budget-sliced run bit-identical to a one-shot run at any batch.
  std::vector<size_t> wave_;
  size_t wave_pos_ = 0;
  // Per-wave trace points, flushed through CrawlTrace::AddWave once per
  // wave slice (single buffered append instead of one write per page).
  std::vector<TracePoint> wave_points_;
  // Wave-assembly scratch, reused across waves (cleared, never shrunk)
  // so steady-state waves allocate nothing.
  std::vector<std::optional<StatusOr<ResultPage>>> fetch_results_;
  std::vector<std::function<void()>> fetch_tasks_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_PARALLEL_CRAWLER_H_
