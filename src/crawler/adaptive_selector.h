// Adaptive meta-selection: switch policies online at the saturation knee.
//
// §3.3 observes that the greedy link-based crawler's marginal benefit
// decays past ~85% coverage and hand-switches to MMMI at a fixed
// coverage threshold. ROADMAP item 3 generalizes this: instead of a
// hand-picked policy per source kind (structured / textual / mixed),
// one meta-selector wraps an ordered chain of registered selectors —
// canonically GL → GL+MMMI → term-weight — and advances down the chain
// when a windowed harvest-rate estimator (the same EWMA CrawlFleet's
// marginal-harvest scheduler uses, src/crawler/harvest_rate.h) decays
// past a fraction of its per-phase peak or under an absolute floor.
//
// Mechanics: every child observes the full crawl event stream
// (OnValueDiscovered / OnRecordHarvested / OnQueryCompleted /
// OnSaturation), so each maintains its own frontier and statistics and
// is "warm" the moment it becomes active. SelectNext consults only the
// active child; the chosen value is then reported to every other child
// via OnValueTaken so no frontier re-issues it. When a phase advances,
// the newly active child receives OnSaturation() — that is what flips
// an MMMI child into its marginal (dependency-scored) mode.
//
// Determinism: the switch rule is evaluated inside OnQueryCompleted,
// which the engine's wave committer replays in deterministic order, so
// the switch wave is a pure function of the crawl history — the
// bit-identity resume contract holds across the switch boundary.
// SaveState serializes the estimator, phase counters, and every child
// in chain order behind a fingerprint (chain names + switch options).

#ifndef DEEPCRAWL_CRAWLER_ADAPTIVE_SELECTOR_H_
#define DEEPCRAWL_CRAWLER_ADAPTIVE_SELECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/crawler/harvest_rate.h"
#include "src/crawler/query_selector.h"

namespace deepcrawl {

struct AdaptiveOptions {
  // EWMA blend weight of each completed query's records-per-round.
  double ewma_alpha = 0.3;
  // Advance when the EWMA falls below this fraction of its peak within
  // the current phase...
  double switch_decay = 0.4;
  // ...or below this absolute records-per-round floor.
  double hr_floor = 0.5;
  // Minimum completed queries per phase before a switch is considered
  // (early estimates from a small DBlocal are noise, §3.3).
  uint32_t min_phase_queries = 25;
};

class AdaptiveSelector : public QuerySelector {
 public:
  // `children` is the phase chain, consulted in order; must be
  // non-empty, and every child must be frontier-driven
  // (MaySelectUndiscovered() == false) so the shared event stream fully
  // describes each child's candidate set.
  AdaptiveSelector(std::vector<std::unique_ptr<QuerySelector>> children,
                   AdaptiveOptions options = AdaptiveOptions{});

  void OnValueDiscovered(ValueId v) override;
  void OnRecordHarvested(uint32_t slot) override;
  void OnQueryCompleted(const QueryOutcome& outcome) override;
  void OnSaturation() override;
  void OnValueTaken(ValueId v) override;
  ValueId SelectNext() override;
  std::string_view name() const override { return name_; }

  Status SaveState(CheckpointWriter& writer) const override;
  Status LoadState(CheckpointReader& reader, ValueId value_bound) override;

  // Introspection for tests and reports.
  size_t active_phase() const { return active_; }
  size_t num_phases() const { return children_.size(); }
  const HarvestRateEwma& estimator() const { return estimator_; }
  uint64_t phase_switches() const { return phase_switches_; }

 private:
  void AdvancePhase();

  std::vector<std::unique_ptr<QuerySelector>> children_;
  AdaptiveOptions options_;
  std::string name_;  // "adaptive(a,b,...)", stable for CONF validation

  size_t active_ = 0;
  uint64_t phase_queries_ = 0;
  uint64_t phase_switches_ = 0;
  double peak_hr_ = 0.0;
  HarvestRateEwma estimator_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_ADAPTIVE_SELECTOR_H_
