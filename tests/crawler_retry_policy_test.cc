// Tests of the retry/backoff policy: retryability classification, the
// per-drain attempt budget, capped exponential backoff, deterministic
// jitter, and the retry-after floor.

#include "src/crawler/retry_policy.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepcrawl {
namespace {

TEST(RetryPolicyTest, TransientCodesAreRetryable) {
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::Unavailable("503")));
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::DeadlineExceeded("timeout")));
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::ResourceExhausted("429")));
}

TEST(RetryPolicyTest, PermanentCodesAreNotRetryable) {
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::OK()));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::OutOfRange("past last page")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::InvalidArgument("bad")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::NotFound("gone")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Internal("bug")));
}

TEST(RetryPolicyTest, ShouldRetryStopsAtMaxAttempts) {
  RetryPolicyConfig config;
  config.max_attempts = 3;
  RetryPolicy policy(config);
  Status transient = Status::Unavailable("503");

  EXPECT_TRUE(policy.ShouldRetry(transient, 1));
  EXPECT_TRUE(policy.ShouldRetry(transient, 2));
  EXPECT_FALSE(policy.ShouldRetry(transient, 3));
  EXPECT_FALSE(policy.ShouldRetry(transient, 4));
}

TEST(RetryPolicyTest, ShouldRetryRejectsPermanentFailures) {
  RetryPolicy policy;
  EXPECT_FALSE(policy.ShouldRetry(Status::OutOfRange("done"), 1));
}

TEST(RetryPolicyTest, MaxAttemptsOneMeansNoRetries) {
  RetryPolicyConfig config;
  config.max_attempts = 1;
  RetryPolicy policy(config);
  EXPECT_FALSE(policy.ShouldRetry(Status::Unavailable("503"), 1));
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicyConfig config;
  config.initial_backoff_ticks = 2;
  config.backoff_multiplier = 2.0;
  config.max_backoff_ticks = 10;
  config.jitter = 0.0;  // full window, no randomization
  RetryPolicy policy(config);
  Status transient = Status::Unavailable("503");

  EXPECT_EQ(policy.BackoffTicks(transient, 1, 0), 2u);
  EXPECT_EQ(policy.BackoffTicks(transient, 2, 0), 4u);
  EXPECT_EQ(policy.BackoffTicks(transient, 3, 0), 8u);
  EXPECT_EQ(policy.BackoffTicks(transient, 4, 0), 10u);  // capped
  EXPECT_EQ(policy.BackoffTicks(transient, 9, 0), 10u);
}

TEST(RetryPolicyTest, JitterIsDeterministicAndWithinWindow) {
  RetryPolicyConfig config;
  config.initial_backoff_ticks = 8;
  config.max_backoff_ticks = 64;
  config.jitter = 0.5;
  RetryPolicy a(config);
  RetryPolicy b(config);
  Status transient = Status::Unavailable("503");

  for (uint32_t failures = 1; failures <= 4; ++failures) {
    for (ValueId value = 0; value < 20; ++value) {
      uint64_t ticks = a.BackoffTicks(transient, failures, value);
      // Stateless: only (seed, value, failures) matter, not call order.
      EXPECT_EQ(ticks, b.BackoffTicks(transient, failures, value));
      uint64_t window = std::min<uint64_t>(
          config.max_backoff_ticks, config.initial_backoff_ticks
                                        << (failures - 1));
      EXPECT_GE(ticks, 1u);
      EXPECT_LE(ticks, window);
      // Half the window is guaranteed at jitter=0.5.
      EXPECT_GE(ticks, window - window / 2);
    }
  }
}

TEST(RetryPolicyTest, DistinctSeedsDecorrelateJitter) {
  RetryPolicyConfig config;
  config.initial_backoff_ticks = 64;
  config.max_backoff_ticks = 64;
  config.jitter = 1.0;
  RetryPolicyConfig other = config;
  other.seed = config.seed + 1;
  RetryPolicy a(config);
  RetryPolicy b(other);
  Status transient = Status::Unavailable("503");

  int differing = 0;
  for (ValueId value = 0; value < 50; ++value) {
    if (a.BackoffTicks(transient, 1, value) !=
        b.BackoffTicks(transient, 1, value)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 25);
}

TEST(RetryPolicyTest, RetryAfterHintFloorsBackoff) {
  RetryPolicyConfig config;
  config.initial_backoff_ticks = 1;
  config.max_backoff_ticks = 2;
  config.jitter = 0.0;
  RetryPolicy policy(config);

  Status rate_limited = Status::ResourceExhausted("429").WithRetryAfter(9);
  EXPECT_EQ(policy.BackoffTicks(rate_limited, 1, 0), 9u);
  // A hint below the computed backoff does not shrink it.
  Status mild = Status::ResourceExhausted("429").WithRetryAfter(1);
  EXPECT_EQ(policy.BackoffTicks(mild, 2, 0), 2u);
}

TEST(RetryPolicyTest, BackoffIsAtLeastOneTick) {
  RetryPolicyConfig config;
  config.initial_backoff_ticks = 1;
  config.max_backoff_ticks = 1;
  config.jitter = 1.0;
  RetryPolicy policy(config);
  for (ValueId value = 0; value < 20; ++value) {
    EXPECT_GE(policy.BackoffTicks(Status::Unavailable("x"), 1, value), 1u);
  }
}

TEST(RetryPolicyTest, FloorTicksIsExactlyTheAdvertisedHint) {
  RetryPolicy policy((RetryPolicyConfig()));
  EXPECT_EQ(policy.FloorTicks(Status::ResourceExhausted("429").WithRetryAfter(7)),
            7u);
  EXPECT_EQ(policy.FloorTicks(Status::ResourceExhausted("429").WithRetryAfter(1)),
            1u);
  // No hint, no floor — regardless of status code.
  EXPECT_EQ(policy.FloorTicks(Status::ResourceExhausted("429")), 0u);
  EXPECT_EQ(policy.FloorTicks(Status::Unavailable("503")), 0u);
  EXPECT_EQ(policy.FloorTicks(Status::OK()), 0u);
}

TEST(RetryPolicyTest, JitterNeverUndercutsTheRetryAfterFloor) {
  RetryPolicyConfig config;
  config.initial_backoff_ticks = 1;
  config.max_backoff_ticks = 4;
  config.jitter = 1.0;  // most adversarial: backoff uniform over [1, window]
  RetryPolicy policy(config);
  Status hinted = Status::ResourceExhausted("429").WithRetryAfter(11);
  for (uint32_t failures = 1; failures <= 4; ++failures) {
    for (ValueId value = 0; value < 64; ++value) {
      EXPECT_GE(policy.BackoffTicks(hinted, failures, value), 11u)
          << "failures=" << failures << " value=" << value;
    }
  }
}

TEST(SimulatedClockTest, AdvanceAccumulates) {
  SimulatedClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.Advance(3);
  clock.Advance(5);
  EXPECT_EQ(clock.now(), 8u);
}

}  // namespace
}  // namespace deepcrawl
