// Competitive-guarantee property suite — the headline artifact of the
// Sheng et al. selector family (src/crawler/optimal_selector.h): on the
// adversarial instances of src/datagen/adversarial_workload.h, measured
// crawl cost (queries to FULL coverage) stays within the competitive
// bound of the ground-truth optimum OPT = B across generator seeds,
// instance sizes, and fault profiles, while greedy degree ranking pays
// a gap that GROWS with instance size — the ω(OPT) separation the
// construction exists to exhibit.
//
// Cost model: every crawl stops at target_records == n (coverage), so
// the query count excludes any post-coverage frontier drain; ratios are
// exact because generator, server, and serial engine are deterministic.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/local_store.h"
#include "src/crawler/optimal_selector.h"
#include "src/crawler/retry_policy.h"
#include "src/datagen/adversarial_workload.h"
#include "src/server/faulty_server.h"
#include "src/server/web_db_server.h"

namespace deepcrawl {
namespace {

constexpr uint64_t kFaultSeed = 29;

uint64_t Log2Ceil(uint64_t v) {
  uint64_t bits = 0;
  while ((uint64_t{1} << bits) < v) ++bits;
  return bits;
}

AdversarialInstance MakeTrap(uint32_t leaf_buckets, uint32_t decoy_buckets,
                             uint32_t decoy_width, uint64_t seed) {
  AdversarialConfig config;
  config.family = AdversarialFamily::kGreedyTrap;
  config.leaf_buckets = leaf_buckets;
  config.bucket_records = 4;
  config.decoy_buckets = decoy_buckets;
  config.decoy_width = decoy_width;
  config.seed = seed;
  StatusOr<AdversarialInstance> instance =
      GenerateAdversarialInstance(config);
  DEEPCRAWL_CHECK(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

AdversarialInstance MakeSkew(uint32_t leaf_buckets,
                             uint32_t occupied_leaves) {
  AdversarialConfig config;
  config.family = AdversarialFamily::kSkewedChain;
  config.leaf_buckets = leaf_buckets;
  config.bucket_records = 4;
  config.occupied_leaves = occupied_leaves;
  StatusOr<AdversarialInstance> instance =
      GenerateAdversarialInstance(config);
  DEEPCRAWL_CHECK(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

std::unique_ptr<QuerySelector> MakeSelector(
    const std::string& policy, const LocalStore& store,
    const AdversarialInstance& instance) {
  std::unique_ptr<QuerySelector> selector;
  if (policy == "greedy") {
    selector = std::make_unique<GreedyLinkSelector>(store);
    return selector;
  }
  StatusOr<AttributeId> rank_attr =
      instance.table.schema().FindAttribute("range");
  DEEPCRAWL_CHECK(rank_attr.ok());
  StatusOr<QueryHierarchy> hierarchy = QueryHierarchy::FromCatalog(
      instance.table.catalog(), rank_attr.value());
  DEEPCRAWL_CHECK(hierarchy.ok()) << hierarchy.status().ToString();
  OptimalSelectorOptions options;
  options.mode = policy == "opt-rank" ? OptimalMode::kRank
                                      : OptimalMode::kThreshold;
  options.result_limit = instance.result_limit;
  selector = std::make_unique<RankOptimalSelector>(
      store, std::move(hierarchy).value(), options);
  return selector;
}

FaultProfile FlakyProfile() {
  // Transient-only faults (every class the retry policy can absorb);
  // no truncation, so no record is ever permanently lost and full
  // coverage stays reachable.
  FaultProfile profile;
  profile.unavailable_rate = 0.05;
  profile.timeout_rate = 0.03;
  profile.rate_limit_rate = 0.02;
  return profile;
}

struct CoverageRun {
  uint64_t queries = 0;
  uint64_t records = 0;
  double ratio = 0.0;
};

// Crawls `instance` to full coverage with `selector` and returns the
// query cost against the instance's ground-truth OPT.
CoverageRun CrawlToCoverage(const AdversarialInstance& instance,
                            QuerySelector& selector, LocalStore& store,
                            bool flaky = false) {
  ServerOptions server_options;
  server_options.page_size = instance.result_limit;
  server_options.result_limit = instance.result_limit;
  WebDbServer backend(instance.table, server_options);
  std::optional<FaultyServer> faulty;
  QueryInterface* server = &backend;
  if (flaky) {
    faulty.emplace(backend, FlakyProfile(), kFaultSeed);
    faulty->set_keyed_faults(true);
    server = &*faulty;
  }
  RetryPolicy retry((RetryPolicyConfig()));
  CrawlOptions options;
  options.target_records = instance.table.num_records();
  Crawler crawler(*server, selector, store, options,
                  /*abort_policy=*/nullptr, &retry);
  crawler.AddSeed(instance.root_value);
  StatusOr<CrawlResult> result = crawler.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  CoverageRun run;
  run.queries = result->queries;
  run.records = result->records;
  run.ratio = static_cast<double>(result->queries) /
              static_cast<double>(instance.opt_queries);
  return run;
}

CoverageRun CrawlToCoverage(const AdversarialInstance& instance,
                            const std::string& policy,
                            bool flaky = false) {
  LocalStore store;
  std::unique_ptr<QuerySelector> selector =
      MakeSelector(policy, store, instance);
  return CrawlToCoverage(instance, *selector, store, flaky);
}

// Trap shapes whose total bucket count rounds to B = 16, 32, 64, with
// the decoy mass scaling as the construction demands (W = B, g = B/4).
struct TrapShape {
  uint32_t leaf_buckets;
  uint32_t decoy_buckets;
  uint32_t decoy_width;
  uint32_t total_buckets;  // expected B
};

const TrapShape kTrapShapes[] = {
    {12, 4, 16, 16},
    {24, 8, 32, 32},
    {48, 16, 64, 64},
};

// --- the competitive bound -------------------------------------------

// opt-rank reaches full coverage within 2x OPT on every seed and size:
// the descent queries each of the 2B - 1 hierarchy nodes at most once
// and OPT = B, so cost/OPT < 2 with no constant slack needed.
TEST(OptimalCompetitivePropertyTest, RankWithinTwiceOptAllSeedsAndSizes) {
  for (uint64_t seed : {1u, 5u, 9u}) {
    for (const TrapShape& shape : kTrapShapes) {
      AdversarialInstance trap =
          MakeTrap(shape.leaf_buckets, shape.decoy_buckets,
                   shape.decoy_width, seed);
      ASSERT_EQ(trap.total_buckets, shape.total_buckets);
      CoverageRun run = CrawlToCoverage(trap, "opt-rank");
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " B=" + std::to_string(shape.total_buckets));
      EXPECT_EQ(run.records, trap.table.num_records());
      EXPECT_LE(run.ratio, 2.0) << run.queries << " queries for OPT="
                                << trap.opt_queries;
    }
  }
}

// The count-free threshold variant obeys the same 2x bound — exactly
// full leaves trip its overflow test, but leaves have no children, so
// the extra descent the paper charges for never materializes here.
TEST(OptimalCompetitivePropertyTest, ThresholdWithinTwiceOpt) {
  for (const TrapShape& shape : kTrapShapes) {
    AdversarialInstance trap = MakeTrap(
        shape.leaf_buckets, shape.decoy_buckets, shape.decoy_width, 5);
    CoverageRun run = CrawlToCoverage(trap, "opt-threshold");
    SCOPED_TRACE("B=" + std::to_string(shape.total_buckets));
    EXPECT_EQ(run.records, trap.table.num_records());
    EXPECT_LE(run.ratio, 2.0) << run.queries << " queries for OPT="
                              << trap.opt_queries;
  }
}

// The count arithmetic actually fires: querying right siblings first
// proves left siblings covered/empty, so part of the rank descent's
// advantage over opt-threshold is skipped queries, not luck.
TEST(OptimalCompetitivePropertyTest, RankCountArithmeticSkipsQueries) {
  AdversarialInstance trap = MakeTrap(24, 8, 32, 5);
  LocalStore store;
  StatusOr<AttributeId> rank_attr =
      trap.table.schema().FindAttribute("range");
  ASSERT_TRUE(rank_attr.ok());
  StatusOr<QueryHierarchy> hierarchy =
      QueryHierarchy::FromCatalog(trap.table.catalog(), rank_attr.value());
  ASSERT_TRUE(hierarchy.ok());
  OptimalSelectorOptions options;
  options.result_limit = trap.result_limit;
  RankOptimalSelector selector(store, std::move(hierarchy).value(),
                               options);
  CoverageRun run = CrawlToCoverage(trap, selector, store);
  EXPECT_EQ(run.records, trap.table.num_records());
  EXPECT_GT(selector.skipped_by_count(), 0u);
  // Every query the descent issued was charged to a distinct node.
  EXPECT_LE(selector.descent_queries(), trap.total_intervals);
}

// --- the lower bound --------------------------------------------------

// Greedy degree ranking drains the decoy mass before finishing the
// core: its cost/OPT grows with instance size while opt-rank's stays
// flat — the measured ω(OPT) separation.
TEST(OptimalCompetitivePropertyTest, GreedyGapGrowsWithInstanceSize) {
  std::vector<double> greedy_ratios;
  std::vector<double> rank_ratios;
  for (const TrapShape& shape : kTrapShapes) {
    AdversarialInstance trap = MakeTrap(
        shape.leaf_buckets, shape.decoy_buckets, shape.decoy_width, 7);
    CoverageRun greedy = CrawlToCoverage(trap, "greedy");
    CoverageRun rank = CrawlToCoverage(trap, "opt-rank");
    EXPECT_EQ(greedy.records, trap.table.num_records());
    greedy_ratios.push_back(greedy.ratio);
    rank_ratios.push_back(rank.ratio);
  }
  // Strictly growing gap for greedy; flat (bounded) ratio for the
  // descent.
  for (size_t i = 1; i < greedy_ratios.size(); ++i) {
    EXPECT_GT(greedy_ratios[i], greedy_ratios[i - 1]) << "size step " << i;
  }
  for (double ratio : rank_ratios) EXPECT_LE(ratio, 2.0);
  // At B=64 the separation is at least 4x — far beyond noise, and any
  // future selector regression that softens the trap trips this first.
  EXPECT_GE(greedy_ratios.back(), 4.0 * rank_ratios.back());
}

// --- robustness -------------------------------------------------------

// Transient faults (with retries) neither break coverage nor void the
// guarantee: degraded drains are conservatively treated as overflows,
// so the bound relaxes only by the re-covered children. 3x OPT is a
// generous envelope over the measured costs.
TEST(OptimalCompetitivePropertyTest, RankBoundSurvivesFlakyFaults) {
  for (const TrapShape& shape : kTrapShapes) {
    AdversarialInstance trap = MakeTrap(
        shape.leaf_buckets, shape.decoy_buckets, shape.decoy_width, 5);
    CoverageRun run = CrawlToCoverage(trap, "opt-rank", /*flaky=*/true);
    SCOPED_TRACE("B=" + std::to_string(shape.total_buckets));
    EXPECT_EQ(run.records, trap.table.num_records());
    EXPECT_LE(run.ratio, 3.0) << run.queries << " queries for OPT="
                              << trap.opt_queries;
  }
}

// --- the additive term ------------------------------------------------

// On the skewed chain the descent pays OPT plus a term additive in
// log B (the overflowing ancestor chain and its empty-sibling probes),
// never proportional to B.
TEST(OptimalCompetitivePropertyTest, SkewOverheadStaysLogarithmic) {
  for (uint32_t buckets : {32u, 128u}) {
    for (uint32_t occupied : {1u, 3u}) {
      AdversarialInstance skew = MakeSkew(buckets, occupied);
      CoverageRun run = CrawlToCoverage(skew, "opt-rank");
      SCOPED_TRACE("B=" + std::to_string(buckets) +
                   " occupied=" + std::to_string(occupied));
      EXPECT_EQ(run.records, skew.table.num_records());
      ASSERT_GE(run.queries, skew.opt_queries);
      uint64_t overhead = run.queries - skew.opt_queries;
      EXPECT_LE(overhead, 4 * Log2Ceil(buckets) + 4)
          << run.queries << " queries for OPT=" << skew.opt_queries;
    }
  }
}

}  // namespace
}  // namespace deepcrawl
