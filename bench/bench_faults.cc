// Robustness sweep — coverage cost under transient source failures.
//
// The paper's controlled servers (§5) never fail, but the real sources
// they stand in for do: §5.4 mentions rate limits and result caps, and
// any multi-day crawl sees timeouts and 503s. This harness measures how
// the communication-round cost of reaching 90% coverage grows with the
// transient-failure rate when the crawler retries with capped
// exponential backoff and degrades gracefully (re-queue, then abandon)
// instead of dying.
//
// Failed attempts cost a round each (the round trip happened), so the
// overhead at failure rate p should track 1/(1-p) plus the re-drained
// prefixes of re-queued values.

#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/retry_policy.h"
#include "src/datagen/canned_workloads.h"
#include "src/server/faulty_server.h"
#include "src/util/table_printer.h"

namespace {
constexpr int kNumSeeds = 4;
constexpr double kCoverage = 0.90;
}  // namespace

int main() {
  using namespace deepcrawl;
  bench::PrintBanner(
      "Robustness sweep: rounds to 90% coverage vs transient-failure rate",
      "no faults in the paper's controlled experiments; real sources "
      "(§5.4) time out and rate-limit",
      "regenerated eBay database at scale 0.05, greedy-link selection, "
      "retry budget 4 attempts / 2 re-queues, average of " +
          std::to_string(kNumSeeds) + " crawl seeds");

  const double fault_rates[] = {0.0, 0.05, 0.10, 0.20, 0.30};

  TablePrinter table({"failure rate", "coverage", "rounds to 90%",
                      "vs fault-free", "retries", "re-queues", "abandoned"});
  double baseline = 0.0;
  for (double rate : fault_rates) {
    double rounds = 0, coverage = 0, retries = 0, requeues = 0, abandoned = 0;
    for (int s = 0; s < kNumSeeds; ++s) {
      StatusOr<Table> db = GenerateTable(EbayConfig(0.05, /*seed=*/11));
      DEEPCRAWL_CHECK(db.ok());
      WebDbServer backend(*db, ServerOptions());
      FaultyServer server(backend, FaultProfile::Transient(rate),
                          /*seed=*/100 + static_cast<uint64_t>(s));

      CrawlOptions options;
      options.target_records = static_cast<uint64_t>(
          kCoverage * static_cast<double>(db->num_records()));

      RetryPolicyConfig retry_config;
      retry_config.seed = 0x5eed + static_cast<uint64_t>(s);
      RetryPolicy retry(retry_config);
      LocalStore store;
      GreedyLinkSelector selector(store);
      CrawlResult result =
          bench::RunCrawl(server, selector, store, options,
                          bench::SeedValue(*db, static_cast<uint32_t>(s)),
                          &retry);
      rounds += static_cast<double>(result.rounds);
      coverage += static_cast<double>(result.records) /
                  static_cast<double>(db->num_records());
      retries += static_cast<double>(result.resilience.retries);
      requeues += static_cast<double>(result.resilience.requeues);
      abandoned += static_cast<double>(result.resilience.abandoned_values);
    }
    rounds /= kNumSeeds;
    coverage /= kNumSeeds;
    if (rate == 0.0) baseline = rounds;
    table.AddRow({TablePrinter::FormatPercent(rate, 0),
                  TablePrinter::FormatPercent(coverage, 1),
                  TablePrinter::FormatDouble(rounds, 0),
                  TablePrinter::FormatPercent(rounds / baseline, 0),
                  TablePrinter::FormatDouble(retries / kNumSeeds, 0),
                  TablePrinter::FormatDouble(requeues / kNumSeeds, 1),
                  TablePrinter::FormatDouble(abandoned / kNumSeeds, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nreading: retried rounds dominate the overhead — it stays "
               "near the 1/(1-p) waterline of paying one round per failed "
               "attempt. Re-queues and abandonments only appear once "
               "max_attempts consecutive failures of one value become "
               "likely; the crawl itself never dies, it just pays more "
               "rounds for the same coverage.\n";
  return 0;
}
