// §3.3 ablation — MMMI ranking variants and LocalStore degree tracking.
//
// Two design choices called out in DESIGN.md:
//
//  1. MMMI ranking. The paper's literal text sorts Lto-query ascending
//     by the max-PMI dependency s(q) alone (HR ∝ 1/s); it also says the
//     method "is used together with the greedy link-based approach".
//     This library defaults to the degree-discounted combination
//     degree * exp(-s). The ablation compares plain GL, literal MMMI,
//     and the combination.
//
//  2. Local degree tracking. GreedyLinkSelector can rank by exact
//     distinct-neighbor degree (hash sets; more memory) or by the cheap
//     with-multiplicity link count. The ablation measures whether the
//     cheap proxy changes crawling cost.

#include <iostream>

#include "bench/bench_common.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/mmmi_selector.h"
#include "src/datagen/canned_workloads.h"
#include "src/util/table_printer.h"

namespace {
constexpr double kScale = 0.1;
constexpr int kNumSeeds = 5;
}  // namespace

int main() {
  using namespace deepcrawl;
  bench::PrintBanner(
      "Ablation (§3.3): MMMI ranking variants; exact vs proxy degrees",
      "design choices not pinned down by the paper's text",
      "regenerated eBay at scale " + TablePrinter::FormatDouble(kScale, 2) +
          ", crawl to 99% coverage with GL->variant switch at 85%, sum "
          "over " + std::to_string(kNumSeeds) + " seeds");

  double total[5] = {0, 0, 0, 0, 0};  // GL, pure, comb, weighted, proxy
  for (int s = 0; s < kNumSeeds; ++s) {
    StatusOr<Table> generated = GenerateTable(EbayConfig(kScale, 60 + s));
    DEEPCRAWL_CHECK(generated.ok());
    const Table& db = *generated;
    WebDbServer server(db, ServerOptions{});
    CrawlOptions options;
    options.target_records =
        static_cast<uint64_t>(0.99 * static_cast<double>(db.num_records()));
    options.saturation_records =
        static_cast<uint64_t>(0.85 * static_cast<double>(db.num_records()));
    ValueId seed_value = bench::SeedValue(db, static_cast<uint32_t>(s));

    {
      LocalStore store;
      GreedyLinkSelector selector(store);
      total[0] += static_cast<double>(
          bench::RunCrawl(server, selector, store, options, seed_value)
              .rounds);
    }
    {
      LocalStore store;
      MmmiSelector selector(store,
                            MmmiOptions{10, MmmiRanking::kPureDependency});
      total[1] += static_cast<double>(
          bench::RunCrawl(server, selector, store, options, seed_value)
              .rounds);
    }
    {
      LocalStore store;
      MmmiSelector selector(store,
                            MmmiOptions{10, MmmiRanking::kDegreeDiscount});
      total[2] += static_cast<double>(
          bench::RunCrawl(server, selector, store, options, seed_value)
              .rounds);
    }
    {
      LocalStore store;
      MmmiSelector selector(
          store, MmmiOptions{10, MmmiRanking::kWeightedDependency});
      total[3] += static_cast<double>(
          bench::RunCrawl(server, selector, store, options, seed_value)
              .rounds);
    }
    {
      LocalStore::Options store_options;
      store_options.exact_degrees = false;  // link-count proxy
      LocalStore store(store_options);
      GreedyLinkSelector selector(store);
      total[4] += static_cast<double>(
          bench::RunCrawl(server, selector, store, options, seed_value)
              .rounds);
    }
  }

  TablePrinter table({"variant", "total rounds to 99%", "vs greedy-link"});
  const char* names[5] = {"greedy-link (exact degrees)",
                          "MMMI: literal 1/s ordering",
                          "MMMI: degree * exp(-s) (default)",
                          "MMMI: weighted-mean PMI variant",
                          "greedy-link (link-count proxy)"};
  for (int i = 0; i < 5; ++i) {
    table.AddRow({names[i], TablePrinter::FormatDouble(total[i], 0),
                  TablePrinter::FormatPercent(total[i] / total[0], 1)});
  }
  table.Print(std::cout);
  std::cout << "\nreading: both max()-based MMMI variants reproduce "
               "Figure 4's saving on this workload; the degree-"
               "discounted combination is the more robust default "
               "because the literal 1/s ordering ignores query "
               "productivity and can lose to plain greedy-link when "
               "value dependency is weak (see DESIGN.md). The weighted-"
               "mean PMI alternative the paper floats dilutes the "
               "signal and saves nothing — empirical support for the "
               "paper's max() choice (\"to avoid bad decisions\"). The "
               "link-count proxy tracks exact degrees closely at a "
               "fraction of the memory.\n";
  return 0;
}
