#include "src/net/frame.h"

#include <cstddef>
#include <utility>

namespace deepcrawl {
namespace {

// Minimum bytes of the inner framing (magic + version + size + checksum)
// — any announced frame length below this is forged.
constexpr uint32_t kInnerFramingBytes = 4 + 4 + 8 + 8;

// Smallest possible encoding of one record (u32 id + u64 value count):
// the divisor ReadCount uses to bound a forged record count.
constexpr size_t kMinRecordBytes = 4 + 8;

void EncodeServerOptions(CheckpointWriter& writer,
                         const ServerOptions& options) {
  writer.WriteU32(options.page_size);
  writer.WriteU32(options.result_limit);
  writer.WriteU8(options.reports_total_count ? 1 : 0);
  writer.WriteU64(options.queriable_attributes.size());
  for (AttributeId attr : options.queriable_attributes) {
    writer.WriteU32(attr);
  }
}

ServerOptions DecodeServerOptions(CheckpointReader& reader) {
  ServerOptions options;
  options.page_size = reader.ReadU32();
  options.result_limit = reader.ReadU32();
  uint8_t reports = reader.ReadU8();
  if (reports > 1) reader.MarkCorrupt("reports_total_count flag not 0/1");
  options.reports_total_count = reports == 1;
  uint64_t count = reader.ReadCount(4);
  options.queriable_attributes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t attr = reader.ReadU32();
    if (attr > UINT16_MAX) reader.MarkCorrupt("attribute id out of range");
    options.queriable_attributes.push_back(static_cast<AttributeId>(attr));
  }
  return options;
}

void EncodePage(CheckpointWriter& writer, const ResultPage& page) {
  writer.WriteU32(page.page_number);
  writer.WriteU8(page.total_matches.has_value() ? 1 : 0);
  if (page.total_matches.has_value()) writer.WriteU32(*page.total_matches);
  writer.WriteU8(page.has_more ? 1 : 0);
  writer.WriteU64(page.records.size());
  for (const ReturnedRecord& record : page.records) {
    writer.WriteU32(record.id);
    writer.WriteU64(record.values.size());
    for (ValueId value : record.values) writer.WriteU32(value);
  }
}

DecodedPage DecodePage(CheckpointReader& reader) {
  DecodedPage out;
  out.page.page_number = reader.ReadU32();
  uint8_t has_total = reader.ReadU8();
  if (has_total > 1) reader.MarkCorrupt("total_matches flag not 0/1");
  if (has_total == 1) out.page.total_matches = reader.ReadU32();
  uint8_t has_more = reader.ReadU8();
  if (has_more > 1) reader.MarkCorrupt("has_more flag not 0/1");
  out.page.has_more = has_more == 1;
  uint64_t num_records = reader.ReadCount(kMinRecordBytes);
  out.page.records.reserve(num_records);
  // Spans can only be planted once out.values stops reallocating, so
  // first decode ids and per-record extents, then fix the spans up.
  std::vector<std::pair<size_t, size_t>> extents;  // (offset, count)
  extents.reserve(num_records);
  for (uint64_t i = 0; i < num_records; ++i) {
    ReturnedRecord record;
    record.id = reader.ReadU32();
    uint64_t num_values = reader.ReadCount(4);
    extents.emplace_back(out.values.size(), num_values);
    for (uint64_t j = 0; j < num_values; ++j) {
      out.values.push_back(reader.ReadU32());
    }
    out.page.records.push_back(record);
  }
  if (!reader.ok()) return DecodedPage{};
  for (size_t i = 0; i < extents.size(); ++i) {
    out.page.records[i].values = std::span<const ValueId>(
        out.values.data() + extents[i].first, extents[i].second);
  }
  return out;
}

// Validates that `type` names a fetch-request form.
bool IsFetchType(WireMessageType type) {
  switch (type) {
    case WireMessageType::kFetchPage:
    case WireMessageType::kFetchPageByText:
    case WireMessageType::kFetchPageByKeyword:
    case WireMessageType::kFetchPageConjunctive:
    case WireMessageType::kFetchPageKeywordOf:
      return true;
    default:
      return false;
  }
}

std::string FinishFrame(CheckpointWriter& body) {
  return EncodeWireFrame(body.buffer());
}

}  // namespace

uint8_t WireStatusCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:                 return 0;
    case StatusCode::kInvalidArgument:    return 1;
    case StatusCode::kNotFound:           return 2;
    case StatusCode::kOutOfRange:         return 3;
    case StatusCode::kFailedPrecondition: return 4;
    case StatusCode::kAlreadyExists:      return 5;
    case StatusCode::kResourceExhausted:  return 6;
    case StatusCode::kInternal:           return 7;
    case StatusCode::kUnavailable:        return 8;
    case StatusCode::kDeadlineExceeded:   return 9;
  }
  return 7;  // unreachable; map to kInternal
}

StatusOr<StatusCode> StatusCodeFromWire(uint8_t wire_code) {
  switch (wire_code) {
    case 0: return StatusCode::kOk;
    case 1: return StatusCode::kInvalidArgument;
    case 2: return StatusCode::kNotFound;
    case 3: return StatusCode::kOutOfRange;
    case 4: return StatusCode::kFailedPrecondition;
    case 5: return StatusCode::kAlreadyExists;
    case 6: return StatusCode::kResourceExhausted;
    case 7: return StatusCode::kInternal;
    case 8: return StatusCode::kUnavailable;
    case 9: return StatusCode::kDeadlineExceeded;
    default:
      return Status::InvalidArgument("unknown wire status code " +
                                     std::to_string(wire_code));
  }
}

void EncodeStatus(CheckpointWriter& writer, const Status& status) {
  writer.WriteU8(WireStatusCode(status.code()));
  writer.WriteString(status.message());
  writer.WriteU8(status.retry_after_rounds().has_value() ? 1 : 0);
  if (status.retry_after_rounds().has_value()) {
    writer.WriteU32(*status.retry_after_rounds());
  }
}

Status DecodeStatus(CheckpointReader& reader) {
  uint8_t wire_code = reader.ReadU8();
  std::string message = reader.ReadString();
  uint8_t has_retry = reader.ReadU8();
  if (has_retry > 1) reader.MarkCorrupt("retry_after flag not 0/1");
  uint32_t retry_after = has_retry == 1 ? reader.ReadU32() : 0;
  StatusOr<StatusCode> code = StatusCodeFromWire(wire_code);
  if (!code.ok()) {
    reader.MarkCorrupt(code.status().message());
    return Status::OK();
  }
  Status status(*code, std::move(message));
  if (has_retry == 1) status = status.WithRetryAfter(retry_after);
  return status;
}

std::string EncodeWireFrame(std::string_view body) {
  std::string inner = FrameCheckpoint(body, kWireProtocolVersion);
  std::string out;
  out.reserve(4 + inner.size());
  uint32_t len = static_cast<uint32_t>(inner.size());
  out.push_back(static_cast<char>(len & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.append(inner);
  return out;
}

std::string EncodeHelloFrame() {
  CheckpointWriter body;
  body.WriteU8(static_cast<uint8_t>(WireMessageType::kHello));
  return FinishFrame(body);
}

std::string EncodeServerInfoFrame(const WireServerInfo& info) {
  CheckpointWriter body;
  body.WriteU8(static_cast<uint8_t>(WireMessageType::kServerInfo));
  EncodeServerOptions(body, info.options);
  body.WriteU32(info.num_values);
  body.WriteString(std::string_view(
      reinterpret_cast<const char*>(info.queriable_bitmap.data()),
      info.queriable_bitmap.size()));
  return FinishFrame(body);
}

std::string EncodeRequestFrame(const WireRequest& request) {
  CheckpointWriter body;
  body.WriteU8(static_cast<uint8_t>(request.type));
  body.WriteU64(request.request_id);
  switch (request.type) {
    case WireMessageType::kFetchPage:
    case WireMessageType::kFetchPageKeywordOf:
      body.WriteU32(request.value);
      break;
    case WireMessageType::kFetchPageByText:
      body.WriteU32(request.attr);
      body.WriteString(request.text);
      break;
    case WireMessageType::kFetchPageByKeyword:
      body.WriteString(request.text);
      break;
    case WireMessageType::kFetchPageConjunctive:
      body.WriteU64(request.values.size());
      for (ValueId value : request.values) body.WriteU32(value);
      break;
    default:
      DEEPCRAWL_CHECK(false) << "not a fetch request type: "
                             << static_cast<int>(request.type);
  }
  body.WriteU32(request.page_number);
  return FinishFrame(body);
}

std::string EncodeResponseFrame(uint64_t request_id,
                                const StatusOr<ResultPage>& result) {
  CheckpointWriter body;
  body.WriteU8(static_cast<uint8_t>(WireMessageType::kPageResult));
  body.WriteU64(request_id);
  EncodeStatus(body, result.status());
  if (result.ok()) EncodePage(body, *result);
  return FinishFrame(body);
}

std::string EncodeGoAwayFrame(const Status& status) {
  DEEPCRAWL_CHECK(!status.ok()) << "GoAway must carry the shed reason";
  CheckpointWriter body;
  body.WriteU8(static_cast<uint8_t>(WireMessageType::kGoAway));
  EncodeStatus(body, status);
  return FinishFrame(body);
}

StatusOr<WireRequest> DecodeRequest(std::string_view body) {
  CheckpointReader reader(body);
  WireRequest request;
  uint8_t raw_type = reader.ReadU8();
  request.type = static_cast<WireMessageType>(raw_type);
  if (request.type == WireMessageType::kHello) {
    if (!reader.ok() || !reader.AtEnd()) {
      return Status::InvalidArgument("malformed hello body");
    }
    return request;
  }
  if (!IsFetchType(request.type)) {
    return Status::InvalidArgument("unexpected client message type " +
                                   std::to_string(raw_type));
  }
  request.request_id = reader.ReadU64();
  switch (request.type) {
    case WireMessageType::kFetchPage:
    case WireMessageType::kFetchPageKeywordOf:
      request.value = reader.ReadU32();
      break;
    case WireMessageType::kFetchPageByText: {
      uint32_t attr = reader.ReadU32();
      if (attr > UINT16_MAX) reader.MarkCorrupt("attribute id out of range");
      request.attr = static_cast<AttributeId>(attr);
      request.text = reader.ReadString();
      break;
    }
    case WireMessageType::kFetchPageByKeyword:
      request.text = reader.ReadString();
      break;
    case WireMessageType::kFetchPageConjunctive: {
      uint64_t count = reader.ReadCount(4);
      request.values.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        request.values.push_back(reader.ReadU32());
      }
      break;
    }
    default:
      break;  // unreachable: IsFetchType filtered already
  }
  request.page_number = reader.ReadU32();
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after request body");
  }
  return request;
}

StatusOr<WireServerMessage> DecodeServerMessage(std::string_view body) {
  CheckpointReader reader(body);
  WireServerMessage message;
  uint8_t raw_type = reader.ReadU8();
  message.type = static_cast<WireMessageType>(raw_type);
  switch (message.type) {
    case WireMessageType::kServerInfo: {
      message.info.options = DecodeServerOptions(reader);
      message.info.num_values = reader.ReadU32();
      std::string bitmap = reader.ReadString();
      if (reader.ok() && bitmap.size() != (message.info.num_values + 7) / 8) {
        reader.MarkCorrupt("queriable bitmap size mismatch");
      }
      message.info.queriable_bitmap.assign(bitmap.begin(), bitmap.end());
      break;
    }
    case WireMessageType::kPageResult: {
      message.request_id = reader.ReadU64();
      message.status = DecodeStatus(reader);
      if (reader.ok() && message.status.ok()) {
        message.result = DecodePage(reader);
      }
      break;
    }
    case WireMessageType::kGoAway: {
      message.status = DecodeStatus(reader);
      if (reader.ok() && message.status.ok()) {
        reader.MarkCorrupt("GoAway without a shed reason");
      }
      break;
    }
    default:
      return Status::InvalidArgument("unexpected server message type " +
                                     std::to_string(raw_type));
  }
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after server message");
  }
  return message;
}

void FrameAssembler::Append(std::string_view bytes) {
  // Compact once the consumed prefix dominates, so long-lived
  // connections don't grow the buffer without bound.
  if (pos_ > 4096 && pos_ >= buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes);
}

StatusOr<bool> FrameAssembler::Next(std::string* body) {
  if (failed_.has_value()) return *failed_;
  size_t available = buffer_.size() - pos_;
  if (available < 4) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data() + pos_);
  uint32_t frame_len = static_cast<uint32_t>(p[0]) |
                       (static_cast<uint32_t>(p[1]) << 8) |
                       (static_cast<uint32_t>(p[2]) << 16) |
                       (static_cast<uint32_t>(p[3]) << 24);
  // Bound-check the announced length BEFORE waiting for the bytes: a
  // forged length must not make us buffer toward a 4 GiB frame.
  if (frame_len < kInnerFramingBytes || frame_len > max_frame_bytes_) {
    failed_ = Status::InvalidArgument("frame length " +
                                      std::to_string(frame_len) +
                                      " outside protocol bounds");
    return *failed_;
  }
  if (available < 4 + static_cast<size_t>(frame_len)) return false;
  std::string_view inner(buffer_.data() + pos_ + 4, frame_len);
  StatusOr<std::string_view> payload =
      UnframeCheckpoint(inner, kWireProtocolVersion);
  if (!payload.ok()) {
    failed_ = payload.status();
    return *failed_;
  }
  body->assign(payload->data(), payload->size());
  pos_ += 4 + static_cast<size_t>(frame_len);
  return true;
}

}  // namespace deepcrawl
