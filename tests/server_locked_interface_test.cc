// Tests for LockedQueryInterface (the thread-safe adapter the parallel
// crawler fetches through) and for the FaultyServer's keyed fault mode
// (arrival-order independence of the fault stream).

#include "src/server/locked_interface.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <thread>
#include <tuple>
#include <vector>

#include "src/server/faulty_server.h"
#include "src/server/web_db_server.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeFigure1Table;

std::vector<RecordId> RecordIds(const ResultPage& page) {
  std::vector<RecordId> ids;
  for (const ReturnedRecord& r : page.records) ids.push_back(r.id);
  return ids;
}

TEST(LockedInterfaceTest, ForwardsFetchesIdentically) {
  Table table = MakeFigure1Table();
  ServerOptions options;
  options.page_size = 2;
  WebDbServer direct(table, options);
  WebDbServer wrapped_backend(table, options);
  LockedQueryInterface locked(wrapped_backend);

  ValueId a2 = GetValueId(table, "A", "a2");
  for (uint32_t page = 0; page < 2; ++page) {
    StatusOr<ResultPage> want = direct.FetchPage(a2, page);
    StatusOr<ResultPage> got = locked.FetchPage(a2, page);
    ASSERT_TRUE(want.ok() && got.ok());
    EXPECT_EQ(RecordIds(*want), RecordIds(*got));
    EXPECT_EQ(want->total_matches, got->total_matches);
    EXPECT_EQ(want->has_more, got->has_more);
  }

  StatusOr<ResultPage> by_text = locked.FetchPageByText(
      *table.schema().FindAttribute("B"), "b2", 0);
  ASSERT_TRUE(by_text.ok());
  EXPECT_EQ(by_text->records.size(), 2u);

  StatusOr<ResultPage> by_keyword = locked.FetchPageByKeyword("c2", 0);
  ASSERT_TRUE(by_keyword.ok());
  EXPECT_EQ(by_keyword->total_matches.value_or(0), 3u);

  std::vector<ValueId> conj = {a2, GetValueId(table, "C", "c2")};
  StatusOr<ResultPage> conjunctive = locked.FetchPageConjunctive(conj, 0);
  ASSERT_TRUE(conjunctive.ok());
  EXPECT_EQ(conjunctive->records.size(), 2u);

  StatusOr<ResultPage> keyword_of = locked.FetchPageKeywordOf(a2, 0);
  ASSERT_TRUE(keyword_of.ok());
  EXPECT_EQ(RecordIds(*keyword_of),
            RecordIds(*direct.FetchPageKeywordOf(a2, 0)));

  // Errors pass through too.
  StatusOr<ResultPage> past_end = locked.FetchPage(a2, 99);
  EXPECT_EQ(past_end.status().code(), StatusCode::kOutOfRange);

  EXPECT_EQ(locked.options().page_size, options.page_size);
  EXPECT_TRUE(locked.IsQueriableValue(a2));
}

TEST(LockedInterfaceTest, MetersStayExactUnderConcurrency) {
  Table table = MakeFigure1Table();
  WebDbServer backend(table, ServerOptions());
  LockedQueryInterface locked(backend);
  ValueId a2 = GetValueId(table, "A", "a2");
  ValueId c2 = GetValueId(table, "C", "c2");

  constexpr int kThreads = 8;
  constexpr int kFetchesPerThread = 50;
  std::atomic<uint64_t> ok_pages{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kFetchesPerThread; ++i) {
        ValueId v = ((t + i) % 2 == 0) ? a2 : c2;
        StatusOr<ResultPage> page = locked.FetchPage(v, 0);
        if (page.ok()) ok_pages.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ok_pages.load(), uint64_t{kThreads} * kFetchesPerThread);
  // Every fetch was a page-0 submission; the meters must have lost
  // nothing to races.
  EXPECT_EQ(locked.communication_rounds(),
            uint64_t{kThreads} * kFetchesPerThread);
  EXPECT_EQ(locked.queries_issued(), uint64_t{kThreads} * kFetchesPerThread);

  locked.ResetMeters();
  EXPECT_EQ(locked.communication_rounds(), 0u);
}

TEST(LockedInterfaceTest, SimulatedLatencyDoesNotSerializeFetches) {
  // The latency sleep happens OUTSIDE the lock: 8 concurrent fetches at
  // 20ms simulated RTT must take far less than 8 * 20ms wall-clock.
  Table table = MakeFigure1Table();
  WebDbServer backend(table, ServerOptions());
  LockedQueryInterface locked(backend, /*latency_us=*/20000);
  ValueId a2 = GetValueId(table, "A", "a2");

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] { ASSERT_TRUE(locked.FetchPage(a2, 0).ok()); });
  }
  for (std::thread& t : threads) t.join();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // Serialized would be >= 160ms; allow generous slack for slow CI.
  EXPECT_LT(elapsed.count(), 120);
  EXPECT_EQ(locked.communication_rounds(), 8u);
}

// --- keyed fault mode -------------------------------------------------

using FetchKey = std::tuple<ValueId, uint32_t, uint32_t>;  // value, page, try

// Issues the given logical fetches against a fresh keyed FaultyServer
// and returns the status code each one observed.
std::map<FetchKey, StatusCode> OutcomesInOrder(
    const Table& table, const std::vector<FetchKey>& fetches) {
  WebDbServer backend(table, ServerOptions());
  FaultProfile profile;
  profile.unavailable_rate = 0.25;
  profile.timeout_rate = 0.15;
  profile.rate_limit_rate = 0.10;
  FaultyServer faulty(backend, profile, /*seed=*/99);
  faulty.set_keyed_faults(true);
  std::map<FetchKey, StatusCode> outcomes;
  for (const FetchKey& key : fetches) {
    StatusOr<ResultPage> page =
        faulty.FetchPage(std::get<0>(key), std::get<1>(key));
    outcomes[key] = page.status().code();
  }
  return outcomes;
}

TEST(LockedInterfaceTest, KeyedFaultsAreArrivalOrderIndependent) {
  Table table = MakeFigure1Table();
  std::vector<FetchKey> fetches;
  for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
    // Two attempts per (value, page 0): retries draw fresh decisions,
    // but keyed ones — attempt N of a fetch sees the same fault no
    // matter what other queries ran in between.
    fetches.emplace_back(v, 0, 1);
    fetches.emplace_back(v, 0, 2);
  }

  std::map<FetchKey, StatusCode> forward = OutcomesInOrder(table, fetches);
  std::vector<FetchKey> reversed = fetches;
  // Reverse pairs of attempts as blocks so attempt 1 of a fetch still
  // precedes attempt 2 (a retry can never precede the failure).
  std::vector<FetchKey> shuffled;
  for (size_t i = fetches.size(); i >= 2; i -= 2) {
    shuffled.push_back(fetches[i - 2]);
    shuffled.push_back(fetches[i - 1]);
  }
  std::map<FetchKey, StatusCode> backward = OutcomesInOrder(table, shuffled);

  EXPECT_EQ(forward, backward);

  // Sanity: the profile actually fired on some fetches and spared
  // others, so the equality above is not vacuous.
  size_t failures = 0;
  for (const auto& [key, code] : forward) {
    if (code != StatusCode::kOk && code != StatusCode::kOutOfRange) ++failures;
  }
  EXPECT_GT(failures, 0u);
  EXPECT_LT(failures, forward.size());
}

TEST(LockedInterfaceTest, KeyedModeDistinguishesInterfaceKinds) {
  // The same value queried through the typed field and the keyword box
  // is a different logical fetch and may meet different faults; both
  // decisions must still be reproducible.
  Table table = MakeFigure1Table();
  auto run = [&table] {
    WebDbServer backend(table, ServerOptions());
    FaultyServer faulty(backend, FaultProfile::Transient(0.5), /*seed=*/3);
    faulty.set_keyed_faults(true);
    std::vector<StatusCode> codes;
    for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
      codes.push_back(faulty.FetchPage(v, 0).status().code());
      codes.push_back(faulty.FetchPageKeywordOf(v, 0).status().code());
    }
    return codes;
  };
  EXPECT_EQ(run(), run());
}

TEST(LockedInterfaceTest, ScheduleStillOverridesKeyedMode) {
  // Scripted schedules keep positional precedence even in keyed mode —
  // existing scripted tests must not change meaning.
  Table table = MakeFigure1Table();
  WebDbServer backend(table, ServerOptions());
  FaultyServer faulty(backend, FaultProfile(), /*seed=*/1);
  faulty.set_keyed_faults(true);
  faulty.set_schedule({FaultAction::kUnavailable, FaultAction::kNone});
  ValueId a2 = GetValueId(table, "A", "a2");
  EXPECT_EQ(faulty.FetchPage(a2, 0).status().code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(faulty.FetchPage(a2, 0).ok());
}

}  // namespace
}  // namespace deepcrawl
