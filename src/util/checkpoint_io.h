// Checkpoint byte streams: the little-endian encoder/decoder and file
// framing underneath the crawl checkpoint layer (see
// src/crawler/checkpoint.h and DESIGN.md §10).
//
// Writer side is a plain append-only buffer. Reader side is
// *sticky-failure bounds-checked*: the first out-of-bounds read (or an
// explicit MarkCorrupt from semantic validation) latches the reader
// into a failed state in which every later read returns zeroes, so a
// decoder can run a whole section straight through and test status()
// once — corrupt input can produce an error, never a crash or an
// out-of-bounds access. ReadCount() additionally validates element
// counts against the bytes actually remaining, so a corrupt length
// field can never trigger a huge allocation.
//
// The file framing (magic, version, payload size, FNV-1a checksum)
// rejects truncated, bit-flipped, or version-mismatched images before
// any section is decoded.

#ifndef DEEPCRAWL_UTIL_CHECKPOINT_IO_H_
#define DEEPCRAWL_UTIL_CHECKPOINT_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace deepcrawl {

// Append-only little-endian encoder.
class CheckpointWriter {
 public:
  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  // Doubles are serialized as their IEEE-754 bit pattern, so values
  // round-trip exactly (including infinities).
  void WriteDouble(double v);
  // Length-prefixed (u32) byte string.
  void WriteString(std::string_view text);

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

// Bounds-checked little-endian decoder with sticky failure.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::string_view data) : data_(data) {}

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  double ReadDouble();
  std::string ReadString();

  // Reads a u64 element count and validates that `count * elem_size`
  // bytes actually remain, so corrupt counts can never drive a huge
  // allocation. Returns 0 (latching failure) on a bad count;
  // `elem_size` must be >= 1.
  uint64_t ReadCount(size_t elem_size);

  // Latches the failed state with a reason (semantic validation
  // failures, e.g. an out-of-range value id).
  void MarkCorrupt(std::string reason);

  bool ok() const { return error_.empty(); }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  // OK, or InvalidArgument describing the first decode failure.
  Status status() const;

 private:
  bool Require(size_t bytes);

  std::string_view data_;
  size_t pos_ = 0;
  std::string error_;
};

// FNV-1a over `data`; the payload checksum used by the framing.
uint64_t CheckpointChecksum(std::string_view data);

// Wraps `payload` in the magic/version/size/checksum framing:
//   magic "DCPK" | u32 version | u64 payload size | payload | u64 fnv1a
std::string FrameCheckpoint(std::string_view payload, uint32_t version);

// Validates the framing of a full image and returns the payload slice
// (viewing into `image`), or a clean InvalidArgument for any corruption
// or a version other than `expected_version`.
StatusOr<std::string_view> UnframeCheckpoint(std::string_view image,
                                             uint32_t expected_version);

// Atomic durable file write: a per-writer-unique temp name
// (<path>.tmp.<pid>.<seq>, so concurrent checkpointers to the same
// path never truncate each other's in-flight temp), written, fsynced,
// renamed over `path`, then the containing directory is fsynced — a
// crash at any point leaves either the previous file or the complete
// new file, never a zero-length or partial one. Returns
// Status::Internal on fsync/rename failure.
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

// Same unique-temp + rename protocol but with NO fsync: the rename is
// still atomic against concurrent readers, but the new bytes are not
// durable until SyncFileDurable(path) (and the parent directory) is
// called. The page cache uses this for evictions between checkpoints,
// where durability is only required at checkpoint boundaries.
Status WriteFileAtomicDeferredSync(const std::string& path,
                                   std::string_view bytes);

// fsyncs the file at `path` and then its containing directory, making
// an earlier deferred-sync write (data + rename) durable.
Status SyncFileDurable(const std::string& path);

StatusOr<std::string> ReadFileBytes(const std::string& path);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_UTIL_CHECKPOINT_IO_H_
