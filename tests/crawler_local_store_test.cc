#include "src/crawler/local_store.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepcrawl {
namespace {

std::vector<ValueId> V(std::initializer_list<ValueId> ids) { return ids; }

TEST(LocalStoreTest, AddRecordDeduplicatesByRecordId) {
  LocalStore store;
  EXPECT_TRUE(store.AddRecord(7, V({1, 2, 3})));
  EXPECT_FALSE(store.AddRecord(7, V({1, 2, 3})));
  EXPECT_EQ(store.num_records(), 1u);
  EXPECT_TRUE(store.ContainsRecord(7));
  EXPECT_FALSE(store.ContainsRecord(8));
}

TEST(LocalStoreTest, LocalFrequencyCountsRecords) {
  LocalStore store;
  store.AddRecord(0, V({1, 2}));
  store.AddRecord(1, V({2, 3}));
  store.AddRecord(2, V({2, 4}));
  EXPECT_EQ(store.LocalFrequency(2), 3u);
  EXPECT_EQ(store.LocalFrequency(1), 1u);
  EXPECT_EQ(store.LocalFrequency(99), 0u);  // never seen
}

TEST(LocalStoreTest, ExactDegreesCountDistinctNeighbors) {
  LocalStore store;
  store.AddRecord(0, V({1, 2, 3}));
  store.AddRecord(1, V({1, 2, 4}));
  // Value 1 co-occurs with {2, 3, 4}: degree 3 despite 2 occurring twice.
  EXPECT_EQ(store.LocalDegree(1), 3u);
  EXPECT_EQ(store.LocalDegree(3), 2u);
  EXPECT_EQ(store.LocalDegree(99), 0u);
}

TEST(LocalStoreTest, LinkCountModeCountsWithMultiplicity) {
  LocalStore::Options options;
  options.exact_degrees = false;
  LocalStore store(options);
  store.AddRecord(0, V({1, 2, 3}));
  store.AddRecord(1, V({1, 2, 4}));
  // Value 1: (3-1) + (3-1) = 4 link endpoints.
  EXPECT_EQ(store.LocalDegree(1), 4u);
}

TEST(LocalStoreTest, PostingsTrackSlots) {
  LocalStore store;
  store.AddRecord(10, V({5}));
  store.AddRecord(20, V({5, 6}));
  auto postings = store.LocalPostings(5);
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0], 0u);
  EXPECT_EQ(postings[1], 1u);
  EXPECT_EQ(store.OriginalRecordId(0), 10u);
  EXPECT_EQ(store.OriginalRecordId(1), 20u);
  EXPECT_TRUE(store.LocalPostings(99).empty());
}

TEST(LocalStoreTest, RecordValuesRoundTrip) {
  LocalStore store;
  store.AddRecord(3, V({9, 4, 7}));
  auto values = store.RecordValues(0);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], 9u);  // stored in given order
  EXPECT_EQ(values[1], 4u);
  EXPECT_EQ(values[2], 7u);
}

TEST(LocalStoreTest, NumValuesSeenGrowsWithMaxId) {
  LocalStore store;
  EXPECT_EQ(store.num_values_seen(), 0u);
  store.AddRecord(0, V({100}));
  EXPECT_EQ(store.num_values_seen(), 101u);  // dense id space
  EXPECT_EQ(store.LocalFrequency(50), 0u);
}

TEST(LocalStoreDeathTest, EmptyRecordAborts) {
  LocalStore store;
  EXPECT_DEATH(store.AddRecord(0, {}), "no values");
}

}  // namespace
}  // namespace deepcrawl
