file(REMOVE_RECURSE
  "libdeepcrawl_datagen.a"
)
