// Statistical property sweeps across seeds: distribution-level checks
// on the samplers and generators that the experiment harnesses lean on.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/datagen/publication_domain.h"
#include "src/util/random.h"
#include "src/util/stats.h"
#include "src/util/zipf.h"

namespace deepcrawl {
namespace {

class ZipfChiSquareTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(ZipfChiSquareTest, ExactSamplerMatchesPmfByChiSquare) {
  auto [seed, exponent] = GetParam();
  constexpr uint32_t kItems = 30;
  constexpr int kDraws = 60000;
  ZipfSampler zipf(kItems, exponent);
  Pcg32 rng(seed);
  std::vector<int> counts(kItems, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(rng)];

  double chi_square = 0.0;
  for (uint32_t i = 0; i < kItems; ++i) {
    double expected = zipf.Pmf(i) * kDraws;
    ASSERT_GT(expected, 5.0) << "bin too thin for a chi-square check";
    double diff = counts[i] - expected;
    chi_square += diff * diff / expected;
  }
  // 29 degrees of freedom: the 99.9th percentile is ~58.3. A correct
  // sampler fails this with probability ~0.1% per (seed, exponent).
  EXPECT_LT(chi_square, 58.3) << "exponent " << exponent;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ZipfChiSquareTest,
    ::testing::Combine(::testing::Values(11ull, 29ull),
                       ::testing::Values(0.0, 0.7, 1.0, 1.4)));

TEST(StudentTSweepTest, QuantileMonotoneInProbabilityAndDf) {
  for (double df : {2.0, 5.0, 14.0, 50.0}) {
    double previous = -1e9;
    for (double p : {0.55, 0.7, 0.8, 0.9, 0.95, 0.99}) {
      double q = StudentTQuantile(p, df);
      EXPECT_GT(q, previous) << "df " << df << " p " << p;
      previous = q;
    }
  }
  // For a fixed upper-tail probability, heavier tails (smaller df) give
  // larger quantiles.
  for (double p : {0.9, 0.95, 0.99}) {
    EXPECT_GT(StudentTQuantile(p, 2), StudentTQuantile(p, 14));
    EXPECT_GT(StudentTQuantile(p, 14), StudentTQuantile(p, 1000));
  }
}

class PublicationPairSweepTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PublicationPairSweepTest, StructuralInvariantsAcrossSeeds) {
  PublicationDomainPairConfig config;
  config.universe_size = 2500;
  config.seed = GetParam();
  StatusOr<PublicationDomainPair> pair =
      GeneratePublicationDomainPair(config);
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();

  // Subset relations on record counts.
  EXPECT_LE(pair->target.num_records(), pair->universe.num_records());
  EXPECT_LE(pair->sample.num_records(), pair->universe.num_records());
  // Every target record's Title exists in the universe (targets are
  // universe papers).
  StatusOr<AttributeId> target_title =
      pair->target.schema().FindAttribute("Title");
  StatusOr<AttributeId> universe_title =
      pair->universe.schema().FindAttribute("Title");
  ASSERT_TRUE(target_title.ok() && universe_title.ok());
  size_t checked = 0;
  for (ValueId v = 0; v < pair->target.num_distinct_values(); ++v) {
    if (pair->target.catalog().attribute_of(v) != *target_title) continue;
    EXPECT_NE(pair->universe.catalog().Find(
                  *universe_title, pair->target.catalog().text_of(v)),
              kInvalidValueId);
    ++checked;
  }
  EXPECT_EQ(checked, pair->target.num_records());  // titles are unique
}

INSTANTIATE_TEST_SUITE_P(Seeds, PublicationPairSweepTest,
                         ::testing::Values(1, 7, 19, 42));

}  // namespace
}  // namespace deepcrawl
