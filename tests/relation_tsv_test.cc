#include "src/relation/tsv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"

namespace deepcrawl {
namespace {

TEST(TsvTest, ReadBasicRecords) {
  std::istringstream input(
      "Title=Alien\tActor=Weaver\tActor=Holm\tDirector=Scott\n"
      "Title=Aliens\tActor=Weaver\tDirector=Cameron\n");
  StatusOr<Table> table = ReadTableTsv(input);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_records(), 2u);
  EXPECT_EQ(table->schema().num_attributes(), 3u);
  // "Weaver" appears in both records under Actor.
  StatusOr<AttributeId> actor = table->schema().FindAttribute("Actor");
  ASSERT_TRUE(actor.ok());
  ValueId weaver = table->catalog().Find(*actor, "Weaver");
  ASSERT_NE(weaver, kInvalidValueId);
  EXPECT_EQ(table->value_frequency(weaver), 2u);
}

TEST(TsvTest, SkipsEmptyLines) {
  std::istringstream input("A=1\n\nA=2\n");
  StatusOr<Table> table = ReadTableTsv(input);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_records(), 2u);
}

TEST(TsvTest, ValueMayContainEquals) {
  std::istringstream input("Price=>=100\n");
  StatusOr<Table> table = ReadTableTsv(input);
  ASSERT_TRUE(table.ok());
  StatusOr<AttributeId> price = table->schema().FindAttribute("Price");
  ASSERT_TRUE(price.ok());
  EXPECT_NE(table->catalog().Find(*price, ">=100"), kInvalidValueId);
}

TEST(TsvTest, MalformedCellsRejected) {
  {
    std::istringstream input("NoEqualsSign\n");
    EXPECT_EQ(ReadTableTsv(input).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    std::istringstream input("=value\n");
    EXPECT_EQ(ReadTableTsv(input).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    std::istringstream input("attr=\n");
    EXPECT_EQ(ReadTableTsv(input).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(TsvTest, RoundTripPreservesContent) {
  Table original = testing_util::MakeFigure1Table();
  std::ostringstream out;
  ASSERT_TRUE(WriteTableTsv(original, out).ok());
  std::istringstream in(out.str());
  StatusOr<Table> reread = ReadTableTsv(in);
  ASSERT_TRUE(reread.ok());
  ASSERT_EQ(reread->num_records(), original.num_records());
  ASSERT_EQ(reread->num_distinct_values(), original.num_distinct_values());
  // Every record carries the same (attribute name, text) multiset.
  for (RecordId r = 0; r < original.num_records(); ++r) {
    std::multiset<std::string> want, got;
    for (ValueId v : original.record(r)) {
      want.insert(
          original.schema()
              .attribute(original.catalog().attribute_of(v)).name +
          "=" + original.catalog().text_of(v));
    }
    for (ValueId v : reread->record(r)) {
      got.insert(
          reread->schema()
              .attribute(reread->catalog().attribute_of(v)).name +
          "=" + reread->catalog().text_of(v));
    }
    EXPECT_EQ(want, got) << "record " << r;
  }
}

TEST(TsvTest, FileRoundTrip) {
  Table original = testing_util::MakeFigure1Table();
  std::string path = ::testing::TempDir() + "/deepcrawl_tsv_test.tsv";
  ASSERT_TRUE(WriteTableTsvFile(original, path).ok());
  StatusOr<Table> reread = ReadTableTsvFile(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->num_records(), original.num_records());
}

TEST(TsvTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadTableTsvFile("/nonexistent/path.tsv").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace deepcrawl
