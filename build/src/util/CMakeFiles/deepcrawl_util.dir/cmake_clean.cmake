file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_util.dir/flags.cc.o"
  "CMakeFiles/deepcrawl_util.dir/flags.cc.o.d"
  "CMakeFiles/deepcrawl_util.dir/random.cc.o"
  "CMakeFiles/deepcrawl_util.dir/random.cc.o.d"
  "CMakeFiles/deepcrawl_util.dir/stats.cc.o"
  "CMakeFiles/deepcrawl_util.dir/stats.cc.o.d"
  "CMakeFiles/deepcrawl_util.dir/status.cc.o"
  "CMakeFiles/deepcrawl_util.dir/status.cc.o.d"
  "CMakeFiles/deepcrawl_util.dir/table_printer.cc.o"
  "CMakeFiles/deepcrawl_util.dir/table_printer.cc.o.d"
  "CMakeFiles/deepcrawl_util.dir/zipf.cc.o"
  "CMakeFiles/deepcrawl_util.dir/zipf.cc.o.d"
  "libdeepcrawl_util.a"
  "libdeepcrawl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
