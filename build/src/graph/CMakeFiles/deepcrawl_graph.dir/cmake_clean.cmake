file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_graph.dir/attribute_value_graph.cc.o"
  "CMakeFiles/deepcrawl_graph.dir/attribute_value_graph.cc.o.d"
  "CMakeFiles/deepcrawl_graph.dir/components.cc.o"
  "CMakeFiles/deepcrawl_graph.dir/components.cc.o.d"
  "CMakeFiles/deepcrawl_graph.dir/dominating_set.cc.o"
  "CMakeFiles/deepcrawl_graph.dir/dominating_set.cc.o.d"
  "CMakeFiles/deepcrawl_graph.dir/power_law.cc.o"
  "CMakeFiles/deepcrawl_graph.dir/power_law.cc.o.d"
  "CMakeFiles/deepcrawl_graph.dir/reachability.cc.o"
  "CMakeFiles/deepcrawl_graph.dir/reachability.cc.o.d"
  "CMakeFiles/deepcrawl_graph.dir/set_cover.cc.o"
  "CMakeFiles/deepcrawl_graph.dir/set_cover.cc.o.d"
  "libdeepcrawl_graph.a"
  "libdeepcrawl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
