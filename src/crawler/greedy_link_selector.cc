#include "src/crawler/greedy_link_selector.h"

#include "src/util/logging.h"

namespace deepcrawl {

GreedyLinkSelector::GreedyLinkSelector(const LocalStore& store)
    : store_(store) {}

void GreedyLinkSelector::Push(ValueId v) {
  if (!IsPending(v)) return;
  heap_.push(HeapEntry{store_.LocalDegree(v), v});
}

void GreedyLinkSelector::OnValueDiscovered(ValueId v) {
  if (v >= pending_.size()) pending_.resize(static_cast<size_t>(v) + 1, 0);
  DEEPCRAWL_DCHECK(pending_[v] == 0) << "value discovered twice";
  pending_[v] = 1;
  ++frontier_size_;
  heap_.push(HeapEntry{store_.LocalDegree(v), v});
}

void GreedyLinkSelector::OnRecordHarvested(uint32_t slot) {
  // Every pending value in the record gained links; refresh its entry.
  for (ValueId v : store_.RecordValues(slot)) {
    Push(v);
  }
}

std::vector<ValueId> GreedyLinkSelector::PendingValues() const {
  std::vector<ValueId> values;
  values.reserve(frontier_size_);
  for (ValueId v = 0; v < pending_.size(); ++v) {
    if (pending_[v]) values.push_back(v);
  }
  return values;
}

ValueId GreedyLinkSelector::SelectNext() {
  while (!heap_.empty()) {
    HeapEntry top = heap_.top();
    heap_.pop();
    if (!IsPending(top.value)) continue;  // already selected earlier
    uint64_t degree = store_.LocalDegree(top.value);
    if (degree != top.degree) continue;  // stale; a fresher entry exists
    MarkNotPending(top.value);
    return top.value;
  }
  return kInvalidValueId;
}

}  // namespace deepcrawl
