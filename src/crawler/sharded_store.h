// ShardedLocalStore: a striped-lock harvest store for concurrent ingest.
//
// The deterministic wave engine (parallel_crawler.h) commits into the
// plain LocalStore sequentially by contract — that is what makes its
// traces reproducible. But not every consumer wants that contract: a
// fleet of independent crawlers pointed at shards of a source, or a
// live extractor pipeline, wants to dump records into ONE deduplicating
// store from many threads at full speed and only needs the aggregate to
// be exact, not the interleaving.
//
// This store serves that path. Records are sharded by id hash, value
// statistics by value id, each shard behind its own mutex, so writers
// on different shards never contend. Guarantees under arbitrary
// concurrent AddRecord calls:
//
//   * exactly-once insertion — for a given record id, exactly one
//     caller is told "new", every other observation is tallied as a
//     duplicate (no lost and no double-counted records; stress-tested
//     in tests/crawler_parallel_stress_test.cc, raced under TSan);
//   * exact aggregate statistics once writers quiesce — record count,
//     observation count, per-value frequency and link count all equal
//     the single-threaded result;
//   * Snapshot() is deterministic (sorted by record id), independent of
//     the interleaving that built the store.

#ifndef DEEPCRAWL_CRAWLER_SHARDED_STORE_H_
#define DEEPCRAWL_CRAWLER_SHARDED_STORE_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/relation/types.h"

namespace deepcrawl {

class ShardedLocalStore {
 public:
  // `num_shards` is rounded up to a power of two (lock striping uses a
  // mask); 16 is plenty below ~32 writer threads.
  explicit ShardedLocalStore(uint32_t num_shards = 16);

  ShardedLocalStore(const ShardedLocalStore&) = delete;
  ShardedLocalStore& operator=(const ShardedLocalStore&) = delete;

  // Thread-safe. Returns true when the record was new; a false return
  // means some caller (possibly this one, earlier) already inserted it
  // and this observation was tallied as a duplicate.
  bool AddRecord(RecordId id, std::span<const ValueId> values);

  bool ContainsRecord(RecordId id) const;

  // Aggregates over all shards. Exact when no writer is mid-flight.
  size_t num_records() const;
  uint64_t num_observations() const;  // duplicates included

  // num(q, DBlocal) and the with-multiplicity link count of `v` (the
  // LocalStore proxy-degree mode; exact distinct-neighbor degrees are
  // not maintained here — they would serialize every insert).
  uint32_t LocalFrequency(ValueId v) const;
  uint64_t LocalLinkCount(ValueId v) const;

  // Deterministic view: (record id, values) sorted by record id.
  std::vector<std::pair<RecordId, std::vector<ValueId>>> Snapshot() const;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(record_shards_.size());
  }

 private:
  struct RecordShard {
    mutable std::mutex mu;
    std::unordered_map<RecordId, std::vector<ValueId>> records;
    uint64_t observations = 0;
  };
  struct ValueStats {
    uint32_t frequency = 0;
    uint64_t link_count = 0;
  };
  struct ValueShard {
    mutable std::mutex mu;
    std::unordered_map<ValueId, ValueStats> stats;
  };

  RecordShard& ShardOf(RecordId id);
  const RecordShard& ShardOf(RecordId id) const;

  uint64_t shard_mask_;
  std::vector<RecordShard> record_shards_;
  std::vector<ValueShard> value_shards_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_SHARDED_STORE_H_
