#include "src/crawler/scripted_selector.h"

#include <gtest/gtest.h>

#include "src/crawler/crawler.h"
#include "src/graph/attribute_value_graph.h"
#include "src/graph/dominating_set.h"
#include "src/graph/set_cover.h"
#include "src/server/web_db_server.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeFigure1Table;

TEST(ScriptedSelectorTest, WalksScriptInOrder) {
  ScriptedSelector selector({7, 3, 9});
  EXPECT_EQ(selector.remaining(), 3u);
  selector.OnValueDiscovered(42);  // ignored
  EXPECT_EQ(selector.SelectNext(), 7u);
  EXPECT_EQ(selector.SelectNext(), 3u);
  EXPECT_EQ(selector.remaining(), 1u);
  EXPECT_EQ(selector.SelectNext(), 9u);
  EXPECT_EQ(selector.SelectNext(), kInvalidValueId);
  EXPECT_EQ(selector.SelectNext(), kInvalidValueId);
}

TEST(ScriptedSelectorTest, EmptyScript) {
  ScriptedSelector selector({});
  EXPECT_EQ(selector.SelectNext(), kInvalidValueId);
}

TEST(ScriptedSelectorTest, WmdsPlanDiscoversEveryValueButCanMissRecords) {
  // Definition 2.4 made executable. Crawling a dominating set of the
  // VALUE graph discovers every distinct value — but a record none of
  // whose own values made the set is never retrieved (see set_cover.h).
  Table table = MakeFigure1Table();
  WebDbServer server(table, ServerOptions{});
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  DominatingSetResult plan = GreedyWeightedDominatingSet(
      graph, [&](ValueId v) {
        return static_cast<double>(server.FullRetrievalCost(v));
      });

  LocalStore store;
  ScriptedSelector selector(plan.vertices);
  Crawler crawler(server, selector, store, CrawlOptions{});
  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->queries, plan.vertices.size());
  // Every value was discovered (domination)...
  size_t values_seen = 0;
  for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
    if (store.LocalFrequency(v) > 0) ++values_seen;
  }
  EXPECT_EQ(values_seen, table.num_distinct_values());
  // ...but on Figure 1's graph the greedy dominating set misses the
  // (a3, b4, c2) record when c2 is only dominated, not selected.
  EXPECT_LE(result->records, table.num_records());
}

TEST(ScriptedSelectorTest, SetCoverPlanRetrievesEveryRecord) {
  // The corrected offline plan: weighted set cover over postings.
  Table table = MakeFigure1Table();
  WebDbServer server(table, ServerOptions{});
  InvertedIndex index(table);
  SetCoverResult plan = GreedyWeightedSetCover(
      table, index, [&](ValueId v) {
        return static_cast<double>(server.FullRetrievalCost(v));
      });
  ASSERT_EQ(plan.uncovered_records, 0u);
  ASSERT_TRUE(IsRecordCover(table, index, plan.values));

  LocalStore store;
  ScriptedSelector selector(plan.values);
  Crawler crawler(server, selector, store, CrawlOptions{});
  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records, table.num_records());
  EXPECT_EQ(result->queries, plan.values.size());
  // Executed cost matches the plan's predicted weight (full drains).
  EXPECT_EQ(result->rounds, static_cast<uint64_t>(plan.total_weight));
}

TEST(ScriptedSelectorTest, ScriptIsAuthoritativeOverDiscovery) {
  // Even values never discovered by the crawl are issued (and already-
  // covered values are issued again per the script).
  Table table = MakeFigure1Table();
  WebDbServer server(table, ServerOptions{});
  ValueId a2 = GetValueId(table, "A", "a2");
  LocalStore store;
  ScriptedSelector selector({a2, a2});  // deliberate duplicate
  Crawler crawler(server, selector, store, CrawlOptions{});
  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->queries, 2u);  // the duplicate was really issued
  EXPECT_EQ(result->records, 3u);  // but harvested nothing new
}

}  // namespace
}  // namespace deepcrawl
