#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace deepcrawl {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats stats;
  stats.Add(3.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 3.5);
  EXPECT_EQ(stats.max(), 3.5);
}

TEST(LinearFitTest, ExactLineIsRecovered) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 * xi - 2.0);
  LinearFit fit = FitLeastSquares(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFitTest, FlatDataHasZeroSlope) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {5, 5, 5, 5};
  LinearFit fit = FitLeastSquares(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  EXPECT_EQ(fit.r_squared, 1.0);
}

TEST(LinearFitTest, NoisyDataHasImperfectR2) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6};
  std::vector<double> y = {1.0, 2.5, 2.4, 4.3, 4.6, 6.2};
  LinearFit fit = FitLeastSquares(x, y);
  EXPECT_GT(fit.slope, 0.8);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(StudentTTest, CdfIsSymmetricAroundZero) {
  for (double df : {1.0, 5.0, 14.0, 100.0}) {
    EXPECT_NEAR(StudentTCdf(0.0, df), 0.5, 1e-10);
    for (double t : {0.5, 1.0, 2.5}) {
      EXPECT_NEAR(StudentTCdf(t, df) + StudentTCdf(-t, df), 1.0, 1e-9)
          << "df=" << df << " t=" << t;
    }
  }
}

TEST(StudentTTest, KnownQuantiles) {
  // Classic t-table values.
  EXPECT_NEAR(StudentTQuantile(0.95, 14), 1.761, 2e-3);   // one-sided 95%
  EXPECT_NEAR(StudentTQuantile(0.90, 14), 1.345, 2e-3);   // one-sided 90%
  EXPECT_NEAR(StudentTQuantile(0.975, 10), 2.228, 2e-3);  // two-sided 95%
  EXPECT_NEAR(StudentTQuantile(0.975, 1), 12.706, 2e-2);
  // Large df approaches the normal quantile 1.6449.
  EXPECT_NEAR(StudentTQuantile(0.95, 10000), 1.6449, 5e-3);
}

TEST(StudentTTest, QuantileInvertsCdf) {
  for (double df : {3.0, 14.0, 29.0}) {
    for (double p : {0.1, 0.25, 0.5, 0.8, 0.9, 0.99}) {
      double q = StudentTQuantile(p, df);
      EXPECT_NEAR(StudentTCdf(q, df), p, 1e-8) << "df=" << df << " p=" << p;
    }
  }
}

TEST(OneSampleTTestTest, ConfidenceIntervalCoversMeanOfConstantish) {
  // 15 estimates (like the paper's C(6,2) overlap estimates).
  std::vector<double> samples = {35000, 36800, 34100, 36200, 35900,
                                 34800, 35500, 36500, 33900, 35200,
                                 36100, 34600, 35800, 35300, 34900};
  TTestResult result = OneSampleTTest(samples, 0.90);
  EXPECT_EQ(result.n, 15u);
  EXPECT_EQ(result.df, 14.0);
  EXPECT_GT(result.mean, 34000);
  EXPECT_LT(result.mean, 37000);
  EXPECT_LT(result.ci_lower, result.mean);
  EXPECT_GT(result.ci_upper, result.mean);
  // One-sided upper bound sits between the mean and the two-sided upper.
  EXPECT_GT(result.one_sided_upper, result.mean);
  EXPECT_LT(result.one_sided_upper, result.ci_upper);
}

TEST(OneSampleTTestTest, WiderConfidenceGivesWiderInterval) {
  std::vector<double> samples = {1, 2, 3, 4, 5, 6, 7, 8};
  TTestResult narrow = OneSampleTTest(samples, 0.80);
  TTestResult wide = OneSampleTTest(samples, 0.99);
  EXPECT_LT(narrow.ci_upper - narrow.ci_lower,
            wide.ci_upper - wide.ci_lower);
}

}  // namespace
}  // namespace deepcrawl
