# Empty compiler generated dependencies file for deepcrawl_graph_tests.
# This may be replaced when dependencies are built.
