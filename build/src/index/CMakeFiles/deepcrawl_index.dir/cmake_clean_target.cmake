file(REMOVE_RECURSE
  "libdeepcrawl_index.a"
)
