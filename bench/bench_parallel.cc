// Parallel crawl engine bench: wall-clock speedup of the batched wave
// engine over the serial crawler under simulated network latency, plus
// thread-count-invariance evidence and ShardedLocalStore ingest scaling.
//
// The paper's cost model counts communication rounds, not seconds; this
// bench is about the orthogonal systems question of how much wall-clock
// a crawler saves by keeping `batch` queries in flight when every round
// costs one network RTT. Simulated RTT is injected by
// LockedQueryInterface (the sleep happens OUTSIDE its lock, so
// concurrent fetches overlap exactly like real requests).
//
// Determinism on display: for a fixed batch, every thread count yields
// the SAME rounds/records/queries — only the wall-clock column moves.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/sharded_store.h"
#include "src/datagen/movie_domain.h"
#include "src/server/locked_interface.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"

namespace deepcrawl {
namespace bench {
namespace {

constexpr uint64_t kLatencyUs = 200;  // simulated per-fetch RTT

Table MakeTarget() {
  MovieDomainPairConfig config;
  config.universe_size = 4000;
  config.target_size = 1200;
  config.seed = 7;
  StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
  DEEPCRAWL_CHECK(pair.ok()) << pair.status().ToString();
  return std::move(pair->target);
}

struct BenchRun {
  uint64_t rounds = 0;
  uint64_t records = 0;
  uint64_t queries = 0;
  double wall_ms = 0.0;
};

BenchRun CrawlOnce(const Table& target, uint32_t threads, uint32_t batch) {
  WebDbServer backend(target, ServerOptions());
  LockedQueryInterface server(backend, kLatencyUs);
  LocalStore store;
  GreedyLinkSelector selector(store);
  CrawlOptions options;
  options.target_records =
      static_cast<uint64_t>(0.9 * static_cast<double>(target.num_records()));
  auto start = std::chrono::steady_clock::now();
  CrawlResult result =
      RunParallelCrawl(server, selector, store, options,
                       ParallelOptions{threads, batch}, SeedValue(target, 0));
  auto elapsed = std::chrono::steady_clock::now() - start;
  BenchRun run;
  run.rounds = result.rounds;
  run.records = result.records;
  run.queries = result.queries;
  run.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          elapsed)
          .count();
  return run;
}

void SpeedupSweep(const Table& target) {
  PrintBanner(
      "Parallel crawl engine: wall-clock vs threads x batch",
      "n/a (systems bench; the paper counts rounds, not seconds)",
      "greedy-link to 90% coverage, simulated RTT " +
          std::to_string(kLatencyUs) + "us/fetch, movie target " +
          std::to_string(target.num_records()) + " records");

  // Warm up caches, the branch predictor, and the CPU frequency
  // governor so the first measured row is not penalized.
  (void)CrawlOnce(target, 2, 2);

  TablePrinter table({"threads", "batch", "rounds", "records", "queries",
                      "wall ms", "speedup"});
  for (uint32_t batch : {1u, 4u, 8u}) {
    double baseline_ms = 0.0;
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      BenchRun run = CrawlOnce(target, threads, batch);
      if (threads == 1) baseline_ms = run.wall_ms;
      table.AddRow({std::to_string(threads), std::to_string(batch),
                    TablePrinter::FormatCount(run.rounds),
                    TablePrinter::FormatCount(run.records),
                    TablePrinter::FormatCount(run.queries),
                    TablePrinter::FormatDouble(run.wall_ms, 1),
                    TablePrinter::FormatDouble(baseline_ms / run.wall_ms, 2) +
                        "x"});
    }
  }
  table.Print(std::cout);
  std::cout << "\nnote: within each batch block the rounds/records/queries\n"
               "columns are constant — thread count changes wall-clock only\n"
               "(the engine's determinism contract, DESIGN.md §8). batch=1\n"
               "cannot overlap fetches and shows no speedup by design.\n";
}

void ShardedIngestSweep() {
  PrintBanner("ShardedLocalStore: concurrent ingest throughput",
              "n/a (systems bench)",
              "200k synthetic records of 4 values, 32 shards");

  constexpr uint32_t kRecords = 200000;
  constexpr uint32_t kValuesPerRecord = 4;
  constexpr uint32_t kValueSpace = 5000;

  TablePrinter table({"threads", "wall ms", "records/s", "speedup"});
  double baseline_ms = 0.0;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    ShardedLocalStore store(/*num_shards=*/32);
    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        std::vector<ValueId> values(kValuesPerRecord);
        for (RecordId id = t; id < kRecords; id += threads) {
          Pcg32 rng(id * 2654435761u + 1);
          for (uint32_t i = 0; i < kValuesPerRecord; ++i) {
            values[i] = rng.NextBounded(kValueSpace);
          }
          store.AddRecord(id, values);
        }
      });
    }
    for (std::thread& t : workers) t.join();
    auto elapsed = std::chrono::steady_clock::now() - start;
    double wall_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            elapsed)
            .count();
    DEEPCRAWL_CHECK_EQ(store.num_records(), kRecords);
    if (threads == 1) baseline_ms = wall_ms;
    table.AddRow(
        {std::to_string(threads), TablePrinter::FormatDouble(wall_ms, 1),
         TablePrinter::FormatCount(
             static_cast<uint64_t>(kRecords / (wall_ms / 1000.0))),
         TablePrinter::FormatDouble(baseline_ms / wall_ms, 2) + "x"});
  }
  table.Print(std::cout);
}

// Reduced fixed-configuration sweep for the check.sh perf pass: one
// serial and one 8-thread batched crawl (speedup + determinism canary)
// plus the 8-thread sharded ingest throughput, written as
// BENCH_parallel.json.
void RunJsonSuite(const Table& target, const std::string& json_path) {
  BenchJson json("parallel");

  (void)CrawlOnce(target, 2, 2);  // warm-up
  BenchRun serial = CrawlOnce(target, 1, 8);
  BenchRun threaded = CrawlOnce(target, 8, 8);
  DEEPCRAWL_CHECK_EQ(serial.rounds, threaded.rounds)
      << "thread count changed crawl semantics";
  json.Add("crawl_speedup_8t_batch8", serial.wall_ms / threaded.wall_ms, "x",
           /*higher_is_better=*/true);
  json.Add("crawl_rounds_batch8", static_cast<double>(serial.rounds),
           "rounds", /*higher_is_better=*/false);

  constexpr uint32_t kRecords = 200000;
  constexpr uint32_t kValuesPerRecord = 4;
  constexpr uint32_t kValueSpace = 5000;
  constexpr uint32_t kThreads = 8;
  double best_ms = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    ShardedLocalStore store(/*num_shards=*/32);
    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (uint32_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        std::vector<ValueId> values(kValuesPerRecord);
        for (RecordId id = t; id < kRecords; id += kThreads) {
          Pcg32 rng(id * 2654435761u + 1);
          for (uint32_t i = 0; i < kValuesPerRecord; ++i) {
            values[i] = rng.NextBounded(kValueSpace);
          }
          store.AddRecord(id, values);
        }
      });
    }
    for (std::thread& t : workers) t.join();
    double wall_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - start)
            .count();
    DEEPCRAWL_CHECK_EQ(store.num_records(), kRecords);
    if (rep == 0 || wall_ms < best_ms) best_ms = wall_ms;
  }
  json.Add("sharded_ingest_8t_rps", kRecords / (best_ms / 1000.0),
           "records/s", /*higher_is_better=*/true);

  json.WriteFile(json_path);
}

}  // namespace
}  // namespace bench
}  // namespace deepcrawl

int main(int argc, char** argv) {
  deepcrawl::Table target = deepcrawl::bench::MakeTarget();
  std::string json_path = deepcrawl::bench::JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) {
    deepcrawl::bench::RunJsonSuite(target, json_path);
    return 0;
  }
  deepcrawl::bench::SpeedupSweep(target);
  deepcrawl::bench::ShardedIngestSweep();
  return 0;
}
