#include "src/crawler/query_selector.h"

#include "src/crawler/local_store.h"
#include "src/util/checkpoint_io.h"
#include "src/util/logging.h"

namespace deepcrawl {

FrontierSelector::FrontierSelector(const LocalStore& store) : store_(store) {
  frontier_.reserve(1024);
}

void FrontierSelector::EnsureFrontierCapacity(ValueId v) {
  if (v < frontier_pos_.size()) return;
  frontier_pos_.resize(static_cast<size_t>(v) + 1, kNoPosition);
}

void FrontierSelector::OnValueDiscovered(ValueId v) {
  EnsureFrontierCapacity(v);
  DEEPCRAWL_DCHECK(frontier_pos_[v] == kNoPosition) << "value discovered twice";
  frontier_pos_[v] = static_cast<uint32_t>(frontier_.size());
  frontier_.push_back(v);
  OnFrontierInsert(v);
}

void FrontierSelector::OnValueTaken(ValueId v) {
  if (IsPending(v)) MarkNotPending(v);
}

void FrontierSelector::SaveFrontier(CheckpointWriter& writer) const {
  writer.WriteU64(frontier_.size());
  for (ValueId v : frontier_) writer.WriteU32(v);
}

void FrontierSelector::LoadFrontier(CheckpointReader& reader,
                                    ValueId value_bound) {
  frontier_.clear();
  frontier_pos_.assign(value_bound, kNoPosition);
  uint64_t frontier_size = reader.ReadCount(4);
  for (uint64_t i = 0; i < frontier_size && reader.ok(); ++i) {
    ValueId v = reader.ReadU32();
    if (v >= value_bound || frontier_pos_[v] != kNoPosition) {
      reader.MarkCorrupt("frontier value id invalid");
      break;
    }
    frontier_pos_[v] = static_cast<uint32_t>(frontier_.size());
    frontier_.push_back(v);
  }
}

}  // namespace deepcrawl
