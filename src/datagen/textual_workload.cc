#include "src/datagen/textual_workload.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/util/random.h"
#include "src/util/zipf.h"

namespace deepcrawl {

namespace {

Status ValidateConfig(const TextualDbConfig& config) {
  if (config.num_documents == 0) {
    return Status::InvalidArgument("num_documents must be positive");
  }
  if (config.vocabulary == 0) {
    return Status::InvalidArgument("vocabulary must be positive");
  }
  if (config.num_topics == 0 || config.num_topics > config.vocabulary) {
    return Status::InvalidArgument(
        "num_topics must be in [1, vocabulary]");
  }
  if (config.topic_affinity < 0.0 || config.topic_affinity > 1.0) {
    return Status::InvalidArgument("topic_affinity must be in [0, 1]");
  }
  if (config.term_exponent < 0.0) {
    return Status::InvalidArgument("term_exponent must be >= 0");
  }
  if (config.title_terms_min == 0 ||
      config.title_terms_min > config.title_terms_max) {
    return Status::InvalidArgument("title term range invalid");
  }
  if (config.body_terms_min == 0 ||
      config.body_terms_min > config.body_terms_max) {
    return Status::InvalidArgument("body term range invalid");
  }
  if (config.mixed && config.num_categories == 0) {
    return Status::InvalidArgument("num_categories must be positive");
  }
  return Status::OK();
}

uint32_t DrawLength(Pcg32& rng, uint32_t lo, uint32_t hi) {
  return lo + rng.NextBounded(hi - lo + 1);
}

}  // namespace

StatusOr<Table> GenerateTextualTable(const TextualDbConfig& config) {
  DEEPCRAWL_RETURN_IF_ERROR(ValidateConfig(config));

  Schema schema;
  DEEPCRAWL_RETURN_IF_ERROR(schema.AddAttribute("title").status());
  DEEPCRAWL_RETURN_IF_ERROR(schema.AddAttribute("body").status());
  if (config.mixed) {
    DEEPCRAWL_RETURN_IF_ERROR(schema.AddAttribute("docid").status());
    DEEPCRAWL_RETURN_IF_ERROR(schema.AddAttribute("category").status());
  }
  Table table(std::move(schema));

  Pcg32 rng(config.seed, 0x7465787475616cULL);  // stream: "textual"

  // Vocabulary is split into contiguous topic slices. A topic-affine
  // draw takes a Zipf rank within the document's slice; a global draw
  // takes a Zipf rank over the whole vocabulary — low ranks are the
  // corpus-wide hub terms every topic shares (the power-law head the
  // greedy crawler loves, and where its marginal returns later decay).
  uint32_t slice = std::max(1u, config.vocabulary / config.num_topics);
  ZipfSampler slice_zipf(slice, config.term_exponent);
  ZipfSampler global_zipf(config.vocabulary, config.term_exponent);
  ZipfSampler category_zipf(config.mixed ? config.num_categories : 1, 1.0);

  // Term texts are shared verbatim between title and body, so the
  // server's keyword token dictionary genuinely unions two columns.
  std::vector<std::string> term_texts;
  term_texts.reserve(config.vocabulary);
  for (uint32_t t = 0; t < config.vocabulary; ++t) {
    term_texts.push_back("t" + std::to_string(t));
  }

  std::vector<Cell> cells;
  for (uint32_t doc = 0; doc < config.num_documents; ++doc) {
    uint32_t topic = rng.NextBounded(config.num_topics);
    uint32_t base = (topic * slice) % config.vocabulary;
    cells.clear();

    auto draw_term = [&]() -> uint32_t {
      if (rng.NextBool(config.topic_affinity)) {
        uint32_t rank = slice_zipf.Sample(rng);
        return (base + rank) % config.vocabulary;
      }
      return global_zipf.Sample(rng);
    };

    uint32_t title_len =
        DrawLength(rng, config.title_terms_min, config.title_terms_max);
    for (uint32_t i = 0; i < title_len; ++i) {
      cells.push_back(Cell{0, term_texts[draw_term()]});
    }
    uint32_t body_len =
        DrawLength(rng, config.body_terms_min, config.body_terms_max);
    for (uint32_t i = 0; i < body_len; ++i) {
      cells.push_back(Cell{1, term_texts[draw_term()]});
    }
    if (config.mixed) {
      cells.push_back(Cell{2, "doc#" + std::to_string(doc)});
      cells.push_back(
          Cell{3, "cat#" + std::to_string(category_zipf.Sample(rng))});
    }
    // AddRecord collapses duplicate (attribute, term) pairs — a document
    // lists each term once per field, which is the bag-of-terms model
    // the keyword interface exposes.
    DEEPCRAWL_RETURN_IF_ERROR(table.AddRecord(cells).status());
  }
  return table;
}

}  // namespace deepcrawl
