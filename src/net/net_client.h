// Client side of the wire protocol (src/net/frame.h): a framed TCP
// connection, a QueryInterface adapter over it, and the pipelined
// network fetch executor that plugs into the crawl engine.
//
//   * NetConnection — one non-blocking socket plus a FrameAssembler:
//     connect + Hello/ServerInfo handshake, buffered sends, and both
//     blocking (poll-based) and non-blocking receive paths. bench_net
//     drives raw NetConnections directly.
//
//   * NetQueryClient — implements QueryInterface over a NetConnection,
//     so every selector, retry policy, and the whole crawl engine run
//     unchanged against a remote WebDB. options() and
//     IsQueriableValue() are answered locally from the handshake's
//     ServerInfo (schema + queriable-value bitmap); fetches are
//     blocking request/response rounds. Because the protocol is
//     read-only and idempotent, a dead connection is retried
//     transparently: reconnect with exponential backoff inside
//     `reconnect_window_ms`, retransmit, and surface kUnavailable once
//     the window is exhausted — which is how a crawl survives a server
//     kill/restart with its trace intact. A reachable-but-silent
//     server is bounded too: after `request_attempts` timed-out rounds
//     the last failure (kDeadlineExceeded/kUnavailable) is surfaced
//     instead of retrying forever (the engine's RetryPolicy paces any
//     attempts that do fail through).
//
//   * NetFetchExecutor — the CrawlEngine executor seam over sockets:
//     FetchWave round-robins the wave's requests over up to
//     `connections` NetConnections and PIPELINES each connection's
//     share in one burst, then multiplexes with poll() until every
//     slot has an answer. Responses fill their slot by request id, the
//     engine commits in selector-rank order as always, so the crawl
//     output stays a pure function of (seed, batch) no matter how
//     responses interleave across connections (differential-tested
//     against the in-process engine byte for byte).
//
// Page-lifetime contract: a returned ResultPage's record spans point
// into storage owned by the client (DecodedPage). Pages fetched
// through FetchWave stay valid until the next FetchWave begins (which
// purges the previous wave's pages — by then the engine has committed
// them) or until PurgeRetainedPages() is called explicitly. Pages
// fetched through the serial QueryInterface path stay valid for the
// next `serial_retain_pages - 1` serial fetches — the retain list is a
// bounded window, not process-lifetime storage (unbounded retention
// would leak every page of a long serial crawl).
//
// Thread-safety: none. Like WebDbServer, a NetQueryClient belongs to
// one thread; the parallelism lives in the pipelining, not in threads.

#ifndef DEEPCRAWL_NET_NET_CLIENT_H_
#define DEEPCRAWL_NET_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/crawler/crawl_engine.h"
#include "src/net/frame.h"
#include "src/server/query_interface.h"
#include "src/util/status.h"

namespace deepcrawl {

struct NetClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Connections the fetch executor pipelines a wave over.
  uint32_t connections = 1;
  // Ceiling on one request/response round; a fetch that exceeds it is
  // treated as a dead connection (reconnect, retransmit).
  uint64_t request_timeout_ms = 30'000;
  // Total attempts (send + await rounds) a serial fetch may spend
  // before surfacing the last failure. Bounds the pathological case of
  // a server that keeps accepting connections but never answers within
  // request_timeout_ms: without a cap the client would reconnect,
  // retransmit, and time out forever.
  uint32_t request_attempts = 3;
  // Total budget for re-reaching a dead server (covers the initial
  // connect too); exhausted -> the fetch fails with kUnavailable.
  uint64_t reconnect_window_ms = 15'000;
  // First reconnect backoff; doubles per attempt, capped at 1s.
  uint64_t reconnect_backoff_ms = 20;
  uint32_t max_frame_bytes = kMaxWireFrameBytes;
  // Pages handed out by the serial QueryInterface path stay valid for
  // at least this many subsequent serial fetches; older retained pages
  // are released, bounding a long serial crawl's memory. A caller that
  // buffers more serial fetches before consuming them (e.g. a
  // CrawlEngine driving a NetQueryClient through InlineFetchExecutor
  // instead of NetFetchExecutor) must raise this above its batch size.
  uint32_t serial_retain_pages = 1024;
};

// One framed connection. All sockets are non-blocking; the blocking
// entry points (Open, SendAll, ReceiveMessage) poll internally.
class NetConnection {
 public:
  NetConnection() = default;
  ~NetConnection();

  NetConnection(const NetConnection&) = delete;
  NetConnection& operator=(const NetConnection&) = delete;

  // Connects, performs the Hello/ServerInfo handshake, and stores the
  // ServerInfo. `timeout_ms` bounds the whole sequence.
  Status Open(const std::string& host, uint16_t port, uint64_t timeout_ms,
              uint32_t max_frame_bytes = kMaxWireFrameBytes);
  void Close();
  bool is_open() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  const WireServerInfo& info() const { return info_; }

  // Queues bytes and flushes as far as the kernel will take without
  // blocking. kUnavailable on a dead connection.
  Status Send(std::string_view bytes);
  // Non-blocking flush of queued bytes.
  Status TryFlushSend();
  // Blocking flush of everything queued, bounded by `timeout_ms`.
  Status SendAll(uint64_t timeout_ms);
  bool send_pending() const { return send_pos_ < send_buffer_.size(); }
  // Bytes of queued output already accepted by the kernel (monotonic
  // over the connection's lifetime; the executor timestamps a request's
  // "sent" moment by comparing this against the request's end offset).
  uint64_t total_bytes_sent() const { return total_sent_; }

  // Blocking: next server message within `timeout_ms` (kDeadlineExceeded
  // on timeout, kUnavailable on EOF/reset, kInvalidArgument on a
  // corrupt stream).
  StatusOr<WireServerMessage> ReceiveMessage(uint64_t timeout_ms);

  // Non-blocking pair: pull available socket bytes into the assembler,
  // then drain complete messages. NextMessage true = `*out` filled.
  Status FillFromSocket();
  StatusOr<bool> NextMessage(WireServerMessage* out);

 private:
  int fd_ = -1;
  FrameAssembler assembler_;
  std::string send_buffer_;
  size_t send_pos_ = 0;
  uint64_t total_sent_ = 0;
  WireServerInfo info_;
};

class NetFetchExecutor;

class NetQueryClient : public QueryInterface {
 public:
  // Connects (within the reconnect window) and performs the handshake.
  static StatusOr<std::unique_ptr<NetQueryClient>> Connect(
      NetClientOptions options);

  // QueryInterface over the wire. Each call is one blocking round on
  // the primary connection, with transparent reconnect + retransmit.
  StatusOr<ResultPage> FetchPage(ValueId value, uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageByText(AttributeId attr,
                                       std::string_view text,
                                       uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageByKeyword(std::string_view text,
                                          uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageConjunctive(std::span<const ValueId> values,
                                            uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageKeywordOf(ValueId value,
                                          uint32_t page_number) override;

  uint64_t communication_rounds() const override { return rounds_; }
  uint64_t queries_issued() const override { return queries_; }
  void ResetMeters() override;
  // Measured socket round-trip times (see RttCounters).
  RttCounters rtt_counters() const override { return rtt_; }

  const ServerOptions& options() const override { return info_.options; }
  bool IsQueriableValue(ValueId value) const override {
    return info_.IsQueriable(value);
  }

  const WireServerInfo& server_info() const { return info_; }
  const NetClientOptions& net_options() const { return options_; }

  // Releases the storage behind every page handed out so far. Only
  // call once those pages are no longer referenced (see file comment).
  void PurgeRetainedPages();

  // Connection-level retries performed (reconnect attempts that found
  // the server again), for resilience reporting.
  uint64_t reconnects() const { return reconnects_; }

  // Pages currently held alive for handed-out record spans (bounded on
  // the serial path by serial_retain_pages; see the file comment).
  size_t retained_pages() const { return retained_.size(); }

 private:
  friend class NetFetchExecutor;

  explicit NetQueryClient(NetClientOptions options);

  // Serial round: send `request`, await its response, account meters.
  StatusOr<ResultPage> RoundTrip(WireRequest request);
  // (Re)establishes the primary connection within the reconnect
  // window; `attempted_before` skips the initial immediate try delay.
  Status EnsureConnected(NetConnection& conn);
  // Moves `page`'s storage into the retain list; the returned ResultPage
  // (spans included) stays valid until PurgeRetainedPages() or, for
  // serial fetches, until RoundTrip trims the retain window (see
  // NetClientOptions::serial_retain_pages).
  const ResultPage& Retain(DecodedPage page);
  // One fetch attempt = one communication round (page 0 = one query),
  // exactly the accounting WebDbServer/FaultyServer apply in-process.
  void AccountFetch(uint32_t page_number);
  uint64_t NextRequestId() { return next_request_id_++; }

  NetClientOptions options_;
  NetConnection primary_;
  WireServerInfo info_;
  uint64_t next_request_id_ = 1;
  std::deque<DecodedPage> retained_;
  uint64_t rounds_ = 0;
  uint64_t queries_ = 0;
  bool connected_once_ = false;
  uint64_t reconnects_ = 0;
  RttCounters rtt_;
};

// Pipelined fetch executor over a NetQueryClient (see file comment).
class NetFetchExecutor : public FetchExecutor {
 public:
  // `client` must outlive the executor. Secondary connections (beyond
  // the client's primary) are opened lazily on first use and reopened
  // on failure, up to client.net_options().connections total.
  explicit NetFetchExecutor(NetQueryClient& client);
  ~NetFetchExecutor() override;

  // `server` must be the NetQueryClient this executor wraps (the
  // engine passes its QueryInterface back through the seam).
  void FetchWave(QueryInterface& server, std::span<const FetchRequest> requests,
                 std::span<std::optional<StatusOr<ResultPage>>> results)
      override;

 private:
  struct Lane;  // one connection plus its share of the wave

  NetQueryClient& client_;
  std::vector<std::unique_ptr<NetConnection>> secondary_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_NET_NET_CLIENT_H_
