# Empty dependencies file for deepcrawl_server.
# This may be replaced when dependencies are built.
