// InvertedIndex: ValueId -> sorted posting list of RecordIds.
//
// This is the query-evaluation substrate behind the simulated Web
// database server: a single-attribute equality query (Definition 2.2)
// resolves to one posting-list lookup. Postings are stored CSR-style
// (one concatenated array plus offsets) and are sorted ascending because
// records are scanned in id order at build time.

#ifndef DEEPCRAWL_INDEX_INVERTED_INDEX_H_
#define DEEPCRAWL_INDEX_INVERTED_INDEX_H_

#include <span>
#include <vector>

#include "src/relation/table.h"
#include "src/relation/types.h"

namespace deepcrawl {

class InvertedIndex {
 public:
  // Builds the index over every record currently in `table`. The table
  // must outlive the index and must not grow afterwards (the simulated
  // target database is immutable).
  explicit InvertedIndex(const Table& table);

  // Records containing `value`, ascending by RecordId. Empty when the
  // value id is out of range or unseen.
  std::span<const RecordId> Postings(ValueId value) const;

  // Number of records matched by `value` — num(q, DB).
  uint32_t MatchCount(ValueId value) const {
    return static_cast<uint32_t>(Postings(value).size());
  }

  size_t num_values() const { return offsets_.size() - 1; }
  size_t total_postings() const { return postings_.size(); }

  // Number of records that contain BOTH values (posting intersection
  // size). Used by tests and the mutual-information machinery.
  uint32_t CooccurrenceCount(ValueId a, ValueId b) const;

 private:
  std::vector<RecordId> postings_;
  std::vector<size_t> offsets_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_INDEX_INVERTED_INDEX_H_
