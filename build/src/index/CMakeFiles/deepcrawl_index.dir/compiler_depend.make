# Empty compiler generated dependencies file for deepcrawl_index.
# This may be replaced when dependencies are built.
