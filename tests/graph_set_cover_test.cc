#include "src/graph/set_cover.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/datagen/workload_config.h"
#include "src/graph/attribute_value_graph.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeFigure1Table;
using testing_util::MakeTable;

VertexWeightFn UnitWeight() {
  return [](ValueId) { return 1.0; };
}

TEST(SetCoverTest, Figure1GreedyCoverIsValidAndNearOptimal) {
  Table table = MakeFigure1Table();
  InvertedIndex index(table);
  SetCoverResult cover =
      GreedyWeightedSetCover(table, index, UnitWeight());
  EXPECT_EQ(cover.uncovered_records, 0u);
  EXPECT_TRUE(IsRecordCover(table, index, cover.values));
  // The optimum is {c1, c2} (2 values); greedy opens with a2 (ties c2 at
  // gain 3, smaller id) and then needs two singles — the textbook H(n)
  // approximation gap.
  EXPECT_EQ(cover.values.size(), 3u);
  ValueId a2 = GetValueId(table, "A", "a2");
  EXPECT_TRUE(std::binary_search(cover.values.begin(), cover.values.end(),
                                 a2));
}

TEST(SetCoverTest, DominatingSetIsNotAlwaysARecordCover) {
  // The defect motivating this module (see set_cover.h): on Figure 1's
  // graph the greedy WMDS dominates every value yet never queries any
  // value OF the (a3, b4, c2) record, so that record is never retrieved.
  Table table = MakeFigure1Table();
  InvertedIndex index(table);
  AttributeValueGraph graph = AttributeValueGraph::Build(table);
  DominatingSetResult wmds =
      GreedyWeightedDominatingSet(graph, UnitWeight());
  ASSERT_TRUE(IsDominatingSet(graph, wmds.vertices));
  // The greedy dominating set here is NOT a record cover — the defect
  // the set-cover plan fixes.
  EXPECT_FALSE(IsRecordCover(table, index, wmds.vertices));
}

TEST(SetCoverTest, WeightsSteerChoices) {
  // Hub h covers all records at weight 10; the three ids cover one each
  // at weight 1: the cheap singletons win.
  Table table = MakeTable({
      {{"H", "h"}, {"Id", "r1"}},
      {{"H", "h"}, {"Id", "r2"}},
      {{"H", "h"}, {"Id", "r3"}},
  });
  InvertedIndex index(table);
  ValueId hub = GetValueId(table, "H", "h");
  SetCoverResult cheap_ids = GreedyWeightedSetCover(
      table, index, [&](ValueId v) { return v == hub ? 10.0 : 1.0; });
  EXPECT_EQ(cheap_ids.values.size(), 3u);
  EXPECT_DOUBLE_EQ(cheap_ids.total_weight, 3.0);

  SetCoverResult cheap_hub = GreedyWeightedSetCover(
      table, index, [&](ValueId v) { return v == hub ? 1.0 : 10.0; });
  ASSERT_EQ(cheap_hub.values.size(), 1u);
  EXPECT_EQ(cheap_hub.values[0], hub);
}

TEST(SetCoverTest, EmptyTable) {
  Schema schema;
  ASSERT_TRUE(schema.AddAttribute("A").ok());
  Table table(std::move(schema));
  InvertedIndex index(table);
  SetCoverResult cover =
      GreedyWeightedSetCover(table, index, UnitWeight());
  EXPECT_TRUE(cover.values.empty());
  EXPECT_EQ(cover.uncovered_records, 0u);
}

class SetCoverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SetCoverPropertyTest, GreedyCoverIsValidAndBoundedOnRandomDbs) {
  SyntheticDbConfig config;
  config.name = "cover";
  config.num_records = 200;
  config.seed = GetParam();
  config.attributes = {
      {.name = "A", .num_distinct = 20, .zipf_exponent = 1.0},
      {.name = "B", .num_distinct = 120, .zipf_exponent = 0.5},
  };
  StatusOr<Table> table = GenerateTable(config);
  ASSERT_TRUE(table.ok());
  InvertedIndex index(*table);
  VertexWeightFn weight = [&](ValueId v) {
    return static_cast<double>((table->value_frequency(v) + 9) / 10);
  };
  SetCoverResult cover = GreedyWeightedSetCover(*table, index, weight);
  EXPECT_EQ(cover.uncovered_records, 0u);
  EXPECT_TRUE(IsRecordCover(*table, index, cover.values));
  // No value is chosen twice, and the cover never exceeds one value per
  // record (the trivial cover).
  std::set<ValueId> distinct(cover.values.begin(), cover.values.end());
  EXPECT_EQ(distinct.size(), cover.values.size());
  EXPECT_LE(cover.values.size(), table->num_records());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetCoverPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace deepcrawl
