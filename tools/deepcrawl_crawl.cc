// deepcrawl_crawl — a command-line hidden-Web crawl driver.
//
// The paper's conclusion names "the implementation and deployment of a
// real world product database crawler" as future work; this tool is that
// front end for the simulated substrate: load (or generate) a target
// database, put it behind the query-interface simulator, crawl it with
// any of the library's selection policies, and export the harvest and
// the coverage trace.
//
// Examples:
//   # Crawl a TSV dump with greedy-link selection, write the harvest.
//   deepcrawl_crawl --input=cars.tsv --policy=greedy ...
//       --output-tsv=harvest.tsv --trace-csv=trace.csv
//
//   # Generate the paper's eBay workload and crawl to 90% coverage.
//   deepcrawl_crawl --workload=ebay --scale=0.1 --policy=mmmi ...
//       --target-coverage=0.9
//
//   # Domain-knowledge crawl: the DT comes from a second TSV.
//   deepcrawl_crawl --input=amazon.tsv --policy=domain ...
//       --domain-input=imdb.tsv

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/mmmi_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/crawler/oracle_selector.h"
#include "src/crawler/trace_io.h"
#include "src/datagen/canned_workloads.h"
#include "src/datagen/workload_config.h"
#include "src/domain/domain_selector.h"
#include "src/domain/domain_table.h"
#include "src/estimate/chao.h"
#include "src/relation/tsv.h"
#include "src/server/web_db_server.h"
#include "src/util/flags.h"
#include "src/util/random.h"
#include "src/util/table_printer.h"

namespace deepcrawl {
namespace {

struct Options {
  std::string input;
  std::string workload;
  double scale = 0.1;
  int64_t gen_seed = 1;

  std::string policy = "greedy";
  std::string domain_input;
  int64_t page_size = 10;
  int64_t result_limit = 0;
  bool counts = true;
  bool keyword = false;
  int64_t max_rounds = 0;
  double target_coverage = 0.0;
  double saturation = 0.85;
  int64_t num_seeds = 1;
  int64_t seed = 1;
  std::string trace_csv;
  std::string output_tsv;
  bool help = false;
};

StatusOr<Table> LoadTarget(const Options& options) {
  if (!options.input.empty()) return ReadTableTsvFile(options.input);
  if (options.workload == "ebay") {
    return GenerateTable(EbayConfig(options.scale, options.gen_seed));
  }
  if (options.workload == "acm") {
    return GenerateTable(AcmDlConfig(options.scale, options.gen_seed));
  }
  if (options.workload == "dblp") {
    return GenerateTable(DblpConfig(options.scale, options.gen_seed));
  }
  if (options.workload == "imdb") {
    return GenerateTable(ImdbConfig(options.scale, options.gen_seed));
  }
  return Status::InvalidArgument(
      "give --input=<tsv> or --workload=ebay|acm|dblp|imdb");
}

// Writes the harvested records back out as a TSV, reconstructing cells
// through the target's catalog.
Status WriteHarvest(const Table& target, const LocalStore& store,
                    const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::NotFound("cannot create '" + path + "'");
  for (uint32_t slot = 0; slot < store.num_records(); ++slot) {
    bool first = true;
    for (ValueId v : store.RecordValues(slot)) {
      if (!first) file << '\t';
      first = false;
      AttributeId attr = target.catalog().attribute_of(v);
      file << target.schema().attribute(attr).name << '='
           << target.catalog().text_of(v);
    }
    file << '\n';
  }
  if (!file) return Status::Internal("write failed");
  return Status::OK();
}

int Run(const Options& options) {
  StatusOr<Table> loaded = LoadTarget(options);
  if (!loaded.ok()) {
    std::cerr << "error: " << loaded.status().ToString() << "\n";
    return 1;
  }
  Table target = std::move(*loaded);
  std::cout << "target: " << target.num_records() << " records, "
            << target.num_distinct_values() << " distinct values, "
            << target.schema().num_attributes() << " attributes\n";

  // Optional domain table (required by --policy=domain).
  std::optional<DomainTable> dt;
  std::optional<Table> domain_sample;
  if (!options.domain_input.empty()) {
    StatusOr<Table> sample = ReadTableTsvFile(options.domain_input);
    if (!sample.ok()) {
      std::cerr << "error: " << sample.status().ToString() << "\n";
      return 1;
    }
    domain_sample = std::move(*sample);
    dt = DomainTable::Build(*domain_sample, target.schema(),
                            target.mutable_catalog());
    std::cout << "domain table: " << dt->num_entries()
              << " candidate queries from " << dt->num_domain_records()
              << " sample records\n";
  }

  ServerOptions server_options;
  server_options.page_size = static_cast<uint32_t>(options.page_size);
  server_options.result_limit =
      static_cast<uint32_t>(options.result_limit);
  server_options.reports_total_count = options.counts;
  WebDbServer server(target, server_options);

  LocalStore store;
  std::unique_ptr<QuerySelector> selector;
  if (options.policy == "bfs") {
    selector = std::make_unique<BfsSelector>();
  } else if (options.policy == "dfs") {
    selector = std::make_unique<DfsSelector>();
  } else if (options.policy == "random") {
    selector = std::make_unique<RandomSelector>(options.seed);
  } else if (options.policy == "greedy") {
    selector = std::make_unique<GreedyLinkSelector>(store);
  } else if (options.policy == "mmmi") {
    selector = std::make_unique<MmmiSelector>(store);
  } else if (options.policy == "oracle") {
    selector = std::make_unique<OracleSelector>(
        store, server.index(), server_options.page_size,
        server_options.result_limit);
  } else if (options.policy == "domain") {
    if (!dt.has_value()) {
      std::cerr << "error: --policy=domain needs --domain-input=<tsv>\n";
      return 1;
    }
    selector = std::make_unique<DomainSelector>(store, *dt,
                                                server_options.page_size);
  } else {
    std::cerr << "error: unknown --policy '" << options.policy << "'\n";
    return 1;
  }

  CrawlOptions crawl_options;
  crawl_options.max_rounds = static_cast<uint64_t>(options.max_rounds);
  crawl_options.use_keyword_interface = options.keyword;
  if (options.target_coverage > 0.0) {
    crawl_options.target_records = static_cast<uint64_t>(
        options.target_coverage *
        static_cast<double>(target.num_records()));
  }
  if (options.saturation > 0.0) {
    crawl_options.saturation_records = static_cast<uint64_t>(
        options.saturation * static_cast<double>(target.num_records()));
  }

  Crawler crawler(server, *selector, store, crawl_options);
  Pcg32 rng(static_cast<uint64_t>(options.seed));
  for (int64_t i = 0; i < options.num_seeds; ++i) {
    ValueId seed_value = rng.NextBounded(
        static_cast<uint32_t>(target.num_distinct_values()));
    while (target.value_frequency(seed_value) == 0) {
      seed_value = static_cast<ValueId>(
          (seed_value + 1) % target.num_distinct_values());
    }
    crawler.AddSeed(seed_value);
  }

  StatusOr<CrawlResult> result = crawler.Run();
  if (!result.ok()) {
    std::cerr << "crawl failed: " << result.status().ToString() << "\n";
    return 1;
  }

  double coverage = target.num_records() == 0
                        ? 0.0
                        : static_cast<double>(result->records) /
                              static_cast<double>(target.num_records());
  ChaoEstimate chao = Chao1Estimate(store);
  std::cout << "\npolicy " << selector->name() << " ("
            << StopReasonToString(result->stop_reason) << ")\n"
            << "  records harvested:  " << result->records << " ("
            << TablePrinter::FormatPercent(coverage, 1) << " coverage)\n"
            << "  communication:      " << result->rounds << " rounds, "
            << result->queries << " queries\n"
            << "  online size est.:   "
            << TablePrinter::FormatDouble(chao.estimated_total, 0)
            << " records (Chao1)\n";

  if (!options.trace_csv.empty()) {
    std::ofstream file(options.trace_csv);
    Status written = file ? WriteTraceCsv(result->trace, file)
                          : Status::NotFound("cannot create '" +
                                             options.trace_csv + "'");
    if (!written.ok()) {
      std::cerr << "error: " << written.ToString() << "\n";
      return 1;
    }
    std::cout << "  trace written to:   " << options.trace_csv << "\n";
  }
  if (!options.output_tsv.empty()) {
    Status written = WriteHarvest(target, store, options.output_tsv);
    if (!written.ok()) {
      std::cerr << "error: " << written.ToString() << "\n";
      return 1;
    }
    std::cout << "  harvest written to: " << options.output_tsv << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace deepcrawl

int main(int argc, char** argv) {
  using namespace deepcrawl;
  Options options;
  FlagParser parser;
  parser.AddString("input", &options.input,
                   "TSV file with the target database (see src/relation/"
                   "tsv.h for the format)");
  parser.AddString("workload", &options.workload,
                   "generate a canned workload instead: ebay|acm|dblp|imdb");
  parser.AddDouble("scale", &options.scale,
                   "scale factor for --workload (1.0 = paper size)");
  parser.AddInt64("gen-seed", &options.gen_seed,
                  "generator seed for --workload");
  parser.AddString("policy", &options.policy,
                   "bfs|dfs|random|greedy|mmmi|oracle|domain");
  parser.AddString("domain-input", &options.domain_input,
                   "TSV with a same-domain sample database (builds the "
                   "domain statistics table)");
  parser.AddInt64("page-size", &options.page_size,
                  "records per result page (k)");
  parser.AddInt64("result-limit", &options.result_limit,
                  "max retrievable records per query (0 = unlimited)");
  parser.AddBool("counts", &options.counts,
                 "server reports total match counts (--no-counts to "
                 "disable)");
  parser.AddBool("keyword", &options.keyword,
                 "crawl through the keyword box instead of typed fields");
  parser.AddInt64("max-rounds", &options.max_rounds,
                  "communication-round budget (0 = unbounded)");
  parser.AddDouble("target-coverage", &options.target_coverage,
                   "stop at this fraction of the target's records "
                   "(0 = crawl to exhaustion)");
  parser.AddDouble("saturation", &options.saturation,
                   "coverage at which MMMI switches on");
  parser.AddInt64("seeds", &options.num_seeds,
                  "number of random seed values");
  parser.AddInt64("seed", &options.seed, "RNG seed for seed-value choice");
  parser.AddString("trace-csv", &options.trace_csv,
                   "write the rounds/records trace to this CSV");
  parser.AddString("output-tsv", &options.output_tsv,
                   "write the harvested records to this TSV");
  parser.AddBool("help", &options.help, "print this help");

  Status parsed = parser.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.ToString() << "\n\nflags:\n"
              << parser.HelpText();
    return 2;
  }
  if (options.help) {
    std::cout << "deepcrawl_crawl — query-selection crawling of a "
                 "(simulated) hidden-Web database\n\nflags:\n"
              << parser.HelpText();
    return 0;
  }
  return Run(options);
}
