# Empty compiler generated dependencies file for bench_abort.
# This may be replaced when dependencies are built.
