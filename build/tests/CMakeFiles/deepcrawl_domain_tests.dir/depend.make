# Empty dependencies file for deepcrawl_domain_tests.
# This may be replaced when dependencies are built.
