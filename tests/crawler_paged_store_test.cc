// PagedStore (src/crawler/paged_store.h) unit tests: LocalStore-
// equivalence under a randomized record stream with a cache far below
// the working set, checkpoint/reopen fidelity, crash-leftover
// sweeping, and corruption surfacing as clean Status at load.

#include "src/crawler/paged_store.h"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/crawler/local_store.h"
#include "src/util/checkpoint_io.h"
#include "src/util/random.h"

namespace deepcrawl {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

PagedStore::Options TinyOptions(const std::string& dir) {
  PagedStore::Options options;
  options.dir = dir;
  options.page_bytes = 256;  // force rows across many pages
  options.cache_pages = 6;   // far below the working set
  return options;
}

// Feeds the same pseudo-random record stream (with duplicates) to both
// stores; returns the records fed.
std::vector<std::vector<ValueId>> FeedBoth(LocalStore& reference,
                                           PagedStore& paged, int records,
                                           uint32_t universe, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::vector<ValueId>> fed;
  for (int r = 0; r < records; ++r) {
    std::vector<ValueId> values;
    uint32_t n = 1 + rng.NextBounded(6);
    for (uint32_t i = 0; i < n; ++i) values.push_back(rng.NextBounded(universe));
    RecordId id = static_cast<RecordId>(rng.NextBounded(records));
    bool added_ref = reference.AddRecord(id, values);
    bool added_paged = paged.AddRecord(id, values);
    EXPECT_EQ(added_ref, added_paged) << "record " << r;
    if (!added_ref) {
      reference.ObserveDuplicate(id);
      paged.ObserveDuplicate(id);
    }
    fed.push_back(std::move(values));
  }
  return fed;
}

void ExpectStoresEqual(const LocalStore& reference, const PagedStore& paged,
                       uint32_t universe) {
  ASSERT_EQ(reference.num_records(), paged.num_records());
  ASSERT_EQ(reference.num_observations(), paged.num_observations());
  ASSERT_EQ(reference.num_values_seen(), paged.num_values_seen());
  for (uint32_t k = 1; k <= 4; ++k) {
    EXPECT_EQ(reference.RecordsObservedTimes(k), paged.RecordsObservedTimes(k))
        << "k=" << k;
  }
  std::vector<ValueId> neighbors;
  std::vector<uint32_t> postings;
  for (ValueId v = 0; v < universe; ++v) {
    EXPECT_EQ(reference.LocalFrequency(v), paged.LocalFrequency(v)) << v;
    EXPECT_EQ(reference.LocalDegree(v), paged.LocalDegree(v)) << v;
    auto ref_neighbors = reference.NeighborsSpan(v);
    paged.CopyNeighbors(v, neighbors);
    ASSERT_EQ(ref_neighbors.size(), neighbors.size()) << v;
    for (size_t i = 0; i < neighbors.size(); ++i) {
      ASSERT_EQ(ref_neighbors[i], neighbors[i]) << v << ":" << i;
    }
    auto ref_postings = reference.LocalPostings(v);
    paged.CopyPostings(v, postings);
    ASSERT_EQ(ref_postings.size(), postings.size()) << v;
    for (size_t i = 0; i < postings.size(); ++i) {
      ASSERT_EQ(ref_postings[i], postings[i]) << v << ":" << i;
    }
  }
  std::vector<ValueId> record;
  for (uint32_t slot = 0; slot < reference.num_records(); ++slot) {
    EXPECT_EQ(reference.OriginalRecordId(slot), paged.OriginalRecordId(slot));
    EXPECT_EQ(reference.ObservationCount(slot), paged.ObservationCount(slot));
    auto ref_values = reference.RecordValues(slot);
    paged.CopyRecordValues(slot, record);
    ASSERT_EQ(ref_values.size(), record.size()) << slot;
    for (size_t i = 0; i < record.size(); ++i) {
      ASSERT_EQ(ref_values[i], record[i]) << slot << ":" << i;
    }
  }
  EXPECT_FALSE(paged.ContainsRecord(0xfffffff0u));
}

TEST(PagedStoreTest, MatchesInMemoryStoreUnderThrashingCache) {
  const uint32_t kUniverse = 400;
  LocalStore reference;
  PagedStore paged(TinyOptions(FreshDir("paged_store_equiv")));
  FeedBoth(reference, paged, 1200, kUniverse, 17);
  ASSERT_GT(paged.cache_stats().evictions, 0u)
      << "cache sized above the working set — thrash not exercised";
  ExpectStoresEqual(reference, paged, kUniverse);
}

TEST(PagedStoreTest, LinkCountModeMatches) {
  const uint32_t kUniverse = 200;
  LocalStore::Options ref_options;
  ref_options.exact_degrees = false;
  LocalStore reference(ref_options);
  std::string dir = FreshDir("paged_store_link");
  PagedStore::Options options = TinyOptions(dir);
  options.exact_degrees = false;
  PagedStore paged(options);
  FeedBoth(reference, paged, 600, kUniverse, 23);
  for (ValueId v = 0; v < kUniverse; ++v) {
    EXPECT_EQ(reference.LocalDegree(v), paged.LocalDegree(v)) << v;
  }
}

TEST(PagedStoreTest, CheckpointReopenRestoresEverything) {
  const uint32_t kUniverse = 300;
  std::string dir = FreshDir("paged_store_reopen");
  LocalStore reference;
  uint64_t stamp = 0;
  {
    PagedStore paged(TinyOptions(dir));
    FeedBoth(reference, paged, 800, kUniverse, 31);
    StatusOr<uint64_t> result = paged.Checkpoint();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    stamp = *result;
  }
  PagedStore::Options options = TinyOptions(dir);
  options.resume = true;
  PagedStore reopened(options);
  ASSERT_TRUE(reopened.LoadCheckpoint(stamp).ok());
  ExpectStoresEqual(reference, reopened, kUniverse);
  // The reopened store keeps working: add more and stay consistent.
  FeedBoth(reference, reopened, 200, kUniverse, 37);
  ExpectStoresEqual(reference, reopened, kUniverse);
}

TEST(PagedStoreTest, PostCheckpointWritesDiscardedOnReload) {
  // Writes after a checkpoint are not part of it: reloading the stamp
  // must roll the store back to the checkpointed state even though
  // newer epoch files hit the disk in between (crash-window recovery).
  const uint32_t kUniverse = 150;
  std::string dir = FreshDir("paged_store_rollback");
  LocalStore reference;
  PagedStore paged(TinyOptions(dir));
  FeedBoth(reference, paged, 400, kUniverse, 41);
  StatusOr<uint64_t> stamp = paged.Checkpoint();
  ASSERT_TRUE(stamp.ok());
  // Post-checkpoint dirt: more records (fresh high ids so they always
  // insert), flushed to disk by cache thrash along the way.
  Pcg32 rng(43);
  for (int r = 0; r < 300; ++r) {
    std::vector<ValueId> values;
    uint32_t n = 1 + rng.NextBounded(6);
    for (uint32_t i = 0; i < n; ++i) values.push_back(rng.NextBounded(kUniverse));
    ASSERT_TRUE(paged.AddRecord(1000000u + static_cast<RecordId>(r), values));
  }
  ASSERT_TRUE(paged.LoadCheckpoint(*stamp).ok());
  ExpectStoresEqual(reference, paged, kUniverse);
}

TEST(PagedStoreTest, CorruptPageSurfacesAsStatusAtLoad) {
  std::string dir = FreshDir("paged_store_corrupt");
  uint64_t stamp = 0;
  {
    PagedStore paged(TinyOptions(dir));
    LocalStore reference;
    FeedBoth(reference, paged, 300, 100, 47);
    StatusOr<uint64_t> result = paged.Checkpoint();
    ASSERT_TRUE(result.ok());
    stamp = *result;
  }
  // Flip one byte in one referenced page file; page 0 of the freq
  // segment exists after any nonempty crawl — probe its epoch.
  std::string victim;
  for (uint64_t e = 1; e <= 4096 && victim.empty(); ++e) {
    std::string candidate = dir + "/freq.p0.e" + std::to_string(e);
    if (ReadFileBytes(candidate).ok()) victim = candidate;
  }
  ASSERT_FALSE(victim.empty()) << "no freq page file found to corrupt";
  StatusOr<std::string> bytes = ReadFileBytes(victim);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() - 3] ^= 0x10;  // land in the checksum/payload
  ASSERT_TRUE(WriteFileAtomic(victim, *bytes).ok());

  PagedStore::Options options = TinyOptions(dir);
  options.resume = true;
  PagedStore reopened(options);
  Status loaded = reopened.LoadCheckpoint(stamp);
  EXPECT_FALSE(loaded.ok()) << "corrupt page must fail the load scrub";
}

TEST(PagedStoreTest, MissingManifestIsCleanError) {
  std::string dir = FreshDir("paged_store_nomanifest");
  PagedStore::Options options = TinyOptions(dir);
  options.resume = true;
  PagedStore paged(options);
  EXPECT_FALSE(paged.LoadCheckpoint(1).ok());
}

}  // namespace
}  // namespace deepcrawl
