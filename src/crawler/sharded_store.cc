#include "src/crawler/sharded_store.h"

#include <algorithm>

#include "src/util/logging.h"

namespace deepcrawl {

namespace {

// SplitMix64 finalizer: spreads sequential record ids across shards.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint32_t RoundUpPow2(uint32_t n) {
  uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ShardedLocalStore::ShardedLocalStore(uint32_t num_shards) {
  DEEPCRAWL_CHECK(num_shards >= 1) << "need >= 1 shard";
  uint32_t shards = RoundUpPow2(num_shards);
  shard_mask_ = shards - 1;
  record_shards_ = std::vector<RecordShard>(shards);
  value_shards_ = std::vector<ValueShard>(shards);
}

ShardedLocalStore::RecordShard& ShardedLocalStore::ShardOf(RecordId id) {
  return record_shards_[Mix64(id) & shard_mask_];
}

const ShardedLocalStore::RecordShard& ShardedLocalStore::ShardOf(
    RecordId id) const {
  return record_shards_[Mix64(id) & shard_mask_];
}

bool ShardedLocalStore::AddRecord(RecordId id,
                                  std::span<const ValueId> values) {
  bool added = false;
  {
    RecordShard& shard = ShardOf(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.observations;
    auto [it, inserted] =
        shard.records.try_emplace(id, values.begin(), values.end());
    (void)it;
    added = inserted;
  }
  if (!added) return false;
  // Value statistics live behind their own stripes; locks are taken one
  // at a time (never nested), so writers cannot deadlock and only
  // contend when they touch the same value stripe.
  uint64_t links = values.empty() ? 0 : values.size() - 1;
  for (ValueId v : values) {
    ValueShard& shard = value_shards_[Mix64(v) & shard_mask_];
    std::lock_guard<std::mutex> lock(shard.mu);
    ValueStats& stats = shard.stats[v];
    ++stats.frequency;
    stats.link_count += links;
  }
  return true;
}

bool ShardedLocalStore::ContainsRecord(RecordId id) const {
  const RecordShard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.records.count(id) != 0;
}

size_t ShardedLocalStore::num_records() const {
  size_t total = 0;
  for (const RecordShard& shard : record_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.records.size();
  }
  return total;
}

uint64_t ShardedLocalStore::num_observations() const {
  uint64_t total = 0;
  for (const RecordShard& shard : record_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.observations;
  }
  return total;
}

uint32_t ShardedLocalStore::LocalFrequency(ValueId v) const {
  const ValueShard& shard = value_shards_[Mix64(v) & shard_mask_];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.stats.find(v);
  return it == shard.stats.end() ? 0 : it->second.frequency;
}

uint64_t ShardedLocalStore::LocalLinkCount(ValueId v) const {
  const ValueShard& shard = value_shards_[Mix64(v) & shard_mask_];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.stats.find(v);
  return it == shard.stats.end() ? 0 : it->second.link_count;
}

std::vector<std::pair<RecordId, std::vector<ValueId>>>
ShardedLocalStore::Snapshot() const {
  std::vector<std::pair<RecordId, std::vector<ValueId>>> out;
  for (const RecordShard& shard : record_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [id, values] : shard.records) {
      out.emplace_back(id, values);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace deepcrawl
