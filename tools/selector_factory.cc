#include "tools/selector_factory.h"

#include <utility>

#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/crawler/optimal_selector.h"
#include "src/crawler/oracle_selector.h"
#include "src/domain/domain_selector.h"

namespace deepcrawl {

StatusOr<std::unique_ptr<QuerySelector>> MakeSelectorByName(
    const std::string& policy, const SelectorContext& context) {
  // Two user-defined conversions (unique_ptr<Derived> -> unique_ptr<
  // QuerySelector> -> StatusOr) don't chain implicitly, hence the named
  // base-typed pointer per branch.
  std::unique_ptr<QuerySelector> selector;
  if (policy == "bfs") {
    selector = std::make_unique<BfsSelector>();
    return selector;
  }
  if (policy == "dfs") {
    selector = std::make_unique<DfsSelector>();
    return selector;
  }
  if (policy == "random") {
    selector = std::make_unique<RandomSelector>(context.seed);
    return selector;
  }
  if (context.store == nullptr) {
    return Status::InvalidArgument("selector context has no local store");
  }
  if (policy == "greedy") {
    selector = std::make_unique<GreedyLinkSelector>(*context.store);
    return selector;
  }
  if (policy == "mmmi") {
    selector = std::make_unique<MmmiSelector>(*context.store, context.mmmi);
    return selector;
  }
  if (policy == "opt-rank" || policy == "opt-threshold") {
    if (context.target == nullptr) {
      return Status::InvalidArgument("policy '" + policy +
                                     "' needs the target table (for the "
                                     "rank hierarchy)");
    }
    // A target without the rank attribute yields an empty hierarchy and
    // the selector degrades to plain greedy — that is deliberate, so
    // opt-* can run on any workload for comparison.
    AttributeId rank_attr = kInvalidAttributeId;
    StatusOr<AttributeId> found =
        context.target->schema().FindAttribute(context.rank_attribute);
    if (found.ok()) rank_attr = found.value();
    DEEPCRAWL_ASSIGN_OR_RETURN(
        QueryHierarchy hierarchy,
        QueryHierarchy::FromCatalog(context.target->catalog(), rank_attr));
    OptimalSelectorOptions opts;
    opts.mode = policy == "opt-rank" ? OptimalMode::kRank
                                     : OptimalMode::kThreshold;
    opts.result_limit = context.result_limit;
    selector = std::make_unique<RankOptimalSelector>(
        *context.store, std::move(hierarchy), opts);
    return selector;
  }
  if (policy == "oracle") {
    if (context.oracle_index == nullptr) {
      return Status::InvalidArgument(
          "policy 'oracle' needs the backend's inverted index");
    }
    selector = std::make_unique<OracleSelector>(*context.store,
                                                *context.oracle_index,
                                                context.page_size,
                                                context.result_limit);
    return selector;
  }
  if (policy == "domain") {
    if (context.domain == nullptr) {
      return Status::InvalidArgument(
          "policy 'domain' needs a domain table (--domain-input=<tsv>)");
    }
    selector = std::make_unique<DomainSelector>(
        *context.store, *context.domain, context.page_size);
    return selector;
  }
  return Status::InvalidArgument("unknown policy '" + policy + "' (" +
                                 kKnownPolicies + ")");
}

}  // namespace deepcrawl
