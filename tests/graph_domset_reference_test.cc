// Reference-implementation check: the lazy-heap greedy WMDS must make
// EXACTLY the same choices as a naive O(n^2) greedy (same scores, same
// deterministic tie-breaking), on random databases.

#include <gtest/gtest.h>

#include <limits>

#include "src/datagen/workload_config.h"
#include "src/graph/attribute_value_graph.h"
#include "src/graph/dominating_set.h"

namespace deepcrawl {
namespace {

// Naive greedy: rescans every vertex each round.
DominatingSetResult NaiveGreedy(const AttributeValueGraph& graph,
                                const VertexWeightFn& weight) {
  size_t n = graph.num_vertices();
  DominatingSetResult result;
  std::vector<char> dominated(n, 0);
  std::vector<char> selected(n, 0);
  size_t num_dominated = 0;
  while (num_dominated < n) {
    double best_score = -1.0;
    ValueId best = kInvalidValueId;
    for (ValueId v = 0; v < n; ++v) {
      if (selected[v]) continue;
      uint32_t gain = dominated[v] ? 0 : 1;
      for (ValueId u : graph.Neighbors(v)) {
        if (!dominated[u]) ++gain;
      }
      if (gain == 0) continue;
      double score = static_cast<double>(gain) / weight(v);
      // Same tie-breaking as the lazy heap: higher score wins, equal
      // scores go to the smaller vertex id.
      if (score > best_score || (score == best_score && v < best)) {
        best_score = score;
        best = v;
      }
    }
    DEEPCRAWL_CHECK(best != kInvalidValueId);
    selected[best] = 1;
    result.vertices.push_back(best);
    result.total_weight += weight(best);
    if (!dominated[best]) {
      dominated[best] = 1;
      ++num_dominated;
    }
    for (ValueId u : graph.Neighbors(best)) {
      if (!dominated[u]) {
        dominated[u] = 1;
        ++num_dominated;
      }
    }
  }
  std::sort(result.vertices.begin(), result.vertices.end());
  return result;
}

class DomsetReferenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DomsetReferenceTest, LazyHeapMatchesNaiveGreedy) {
  SyntheticDbConfig config;
  config.name = "ref";
  config.num_records = 120;
  config.seed = GetParam();
  config.attributes = {
      {.name = "A", .num_distinct = 15, .zipf_exponent = 1.0},
      {.name = "B",
       .num_distinct = 60,
       .zipf_exponent = 0.5,
       .min_per_record = 1,
       .max_per_record = 2},
  };
  StatusOr<Table> table = GenerateTable(config);
  ASSERT_TRUE(table.ok());
  AttributeValueGraph graph = AttributeValueGraph::Build(*table);

  VertexWeightFn weight = [&](ValueId v) {
    return static_cast<double>((table->value_frequency(v) + 9) / 10);
  };
  DominatingSetResult fast = GreedyWeightedDominatingSet(graph, weight);
  DominatingSetResult naive = NaiveGreedy(graph, weight);

  ASSERT_TRUE(IsDominatingSet(graph, fast.vertices));
  // The lazy heap must agree with the rescanning reference exactly —
  // total weight for sure; the vertex sets should coincide under the
  // shared deterministic tie-breaking.
  EXPECT_DOUBLE_EQ(fast.total_weight, naive.total_weight);
  EXPECT_EQ(fast.vertices, naive.vertices);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomsetReferenceTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace deepcrawl
