// Naive query selection policies (§3.1): breadth-first, depth-first, and
// random.
//
// None of them uses database statistics: BFS organizes Lto-query as a
// queue (earlier-found values first), DFS as a stack (newest first), and
// Random picks uniformly. They serve as the paper's baselines for
// Figure 3.

#ifndef DEEPCRAWL_CRAWLER_NAIVE_SELECTORS_H_
#define DEEPCRAWL_CRAWLER_NAIVE_SELECTORS_H_

#include <deque>
#include <string_view>
#include <vector>

#include "src/crawler/query_selector.h"
#include "src/util/random.h"

namespace deepcrawl {

// Lto-query as a FIFO queue.
class BfsSelector : public QuerySelector {
 public:
  BfsSelector() = default;

  void OnValueDiscovered(ValueId v) override { queue_.push_back(v); }
  void OnValueTaken(ValueId v) override;
  ValueId SelectNext() override;
  std::string_view name() const override { return "bfs"; }
  Status SaveState(CheckpointWriter& writer) const override;
  Status LoadState(CheckpointReader& reader, ValueId value_bound) override;

 private:
  std::deque<ValueId> queue_;
};

// Lto-query as a LIFO stack.
class DfsSelector : public QuerySelector {
 public:
  DfsSelector() = default;

  void OnValueDiscovered(ValueId v) override { stack_.push_back(v); }
  void OnValueTaken(ValueId v) override;
  ValueId SelectNext() override;
  std::string_view name() const override { return "dfs"; }
  Status SaveState(CheckpointWriter& writer) const override;
  Status LoadState(CheckpointReader& reader, ValueId value_bound) override;

 private:
  std::vector<ValueId> stack_;
};

// Uniformly random pick from Lto-query (swap-with-last removal).
class RandomSelector : public QuerySelector {
 public:
  explicit RandomSelector(uint64_t seed) : rng_(seed) {}

  void OnValueDiscovered(ValueId v) override { pool_.push_back(v); }
  void OnValueTaken(ValueId v) override;
  ValueId SelectNext() override;
  std::string_view name() const override { return "random"; }
  Status SaveState(CheckpointWriter& writer) const override;
  Status LoadState(CheckpointReader& reader, ValueId value_bound) override;

 private:
  Pcg32 rng_;
  std::vector<ValueId> pool_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_NAIVE_SELECTORS_H_
