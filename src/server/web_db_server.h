// WebDbServer: a simulated structured Web database behind a query
// interface.
//
// This module plays the role of the paper's "controlled database
// servers" (§5): server programs that mimic Web-site behaviour on top of
// a relational backend. The crawler may interact with a database ONLY
// through the QueryInterface this class implements, which exposes
// exactly what a real site would:
//
//   * single-attribute equality queries (Definition 2.2), addressed by
//     interned value id, by (attribute, text), or by bare keyword;
//   * paginated results, at most `page_size` (k) records per page
//     (Definition 2.3's cost model: one page fetch = one communication
//     round);
//   * an optional result-size limit: most real sources cap how many of
//     the matched records can actually be retrieved (§5.4; Amazon used
//     3200, Yahoo Automobile ~20 pages);
//   * an optional total-match count on every page, as most sources
//     report "N results found" (exploited by the §3.4 abort heuristics).
//
// Every page fetch increments the communication-round meter, which is the
// paper's cost measure. The meter can be snapshotted and reset by the
// experiment harness. Unlike a real source, WebDbServer answers every
// query perfectly; wrap it in a FaultyServer (faulty_server.h) to model
// transient failures.

#ifndef DEEPCRAWL_SERVER_WEB_DB_SERVER_H_
#define DEEPCRAWL_SERVER_WEB_DB_SERVER_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/index/inverted_index.h"
#include "src/relation/table.h"
#include "src/relation/types.h"
#include "src/server/query_interface.h"
#include "src/util/status.h"

namespace deepcrawl {

class WebDbServer : public QueryInterface {
 public:
  // `table` must outlive the server and must not change afterwards.
  WebDbServer(const Table& table, ServerOptions options);

  WebDbServer(const WebDbServer&) = delete;
  WebDbServer& operator=(const WebDbServer&) = delete;

  // QueryInterface implementation; see query_interface.h for contracts.
  StatusOr<ResultPage> FetchPage(ValueId value, uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageByText(AttributeId attr,
                                       std::string_view text,
                                       uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageByKeyword(std::string_view text,
                                          uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageConjunctive(std::span<const ValueId> values,
                                            uint32_t page_number) override;
  StatusOr<ResultPage> FetchPageKeywordOf(ValueId value,
                                          uint32_t page_number) override;

  uint64_t communication_rounds() const override {
    return communication_rounds_;
  }
  uint64_t queries_issued() const override { return queries_issued_; }
  void ResetMeters() override;

  const ServerOptions& options() const override { return options_; }
  bool IsQueriableValue(ValueId value) const override;

  // --- harness-only introspection (not visible to selectors) -----------

  // Ground-truth number of records; the harness uses it to compute true
  // coverage in controlled experiments.
  size_t true_record_count() const { return table_.num_records(); }

  const Table& table() const { return table_; }
  const InvertedIndex& index() const { return index_; }

  // Number of result pages a full retrieval of `value` costs, i.e.
  // cost(q, DB) of Definition 2.3, under the configured page size and
  // result limit. Zero-match queries still cost one round to learn that.
  uint32_t FullRetrievalCost(ValueId value) const;

  // --- keyword token dictionary ---------------------------------------
  // The keyword box treats a document as a bag of terms: the same raw
  // text under any attribute is one *token*, and a keyword query returns
  // the union of the token's postings across every attribute (the
  // query processor decides which column matches, §2.2). The dictionary
  // below is built once at construction, so a keyword query is one hash
  // probe (or, addressed by value id, one array read) instead of a
  // per-query catalog probe + set_union fold over all attributes.

  // Distinct raw texts in the catalog.
  size_t num_keyword_tokens() const { return tokens_.size(); }

  // Record ids matching the token of `value`'s text, sorted ascending.
  // Empty span when the value id is out of range.
  std::span<const RecordId> KeywordPostings(ValueId value) const;

  // Total matches of the keyword query for `value`'s text (before the
  // result limit is applied).
  uint32_t KeywordMatchCount(ValueId value) const {
    return static_cast<uint32_t>(KeywordPostings(value).size());
  }

  // Number of attributes `value`'s text appears under (≥1 for any valid
  // id); >1 means the keyword union genuinely merges columns.
  uint32_t KeywordAttributeSpan(ValueId value) const;

 private:
  // One token = one distinct raw text. Tokens backed by a single catalog
  // value alias that value's index postings; multi-attribute tokens own
  // a precomputed merged slice of merged_postings_.
  struct Token {
    ValueId single_value = kInvalidValueId;
    uint32_t merged_offset = 0;
    uint32_t merged_length = 0;
    uint32_t attribute_span = 0;
  };

  StatusOr<ResultPage> BuildPage(std::span<const RecordId> postings,
                                 uint32_t total_matches,
                                 uint32_t page_number);

  void BuildTokenDictionary();
  std::span<const RecordId> TokenPostings(const Token& token) const;

  const Table& table_;
  ServerOptions options_;
  InvertedIndex index_;
  std::vector<char> attribute_queriable_;  // indexed by AttributeId
  std::vector<Token> tokens_;
  std::vector<uint32_t> token_of_value_;  // by ValueId
  std::vector<RecordId> merged_postings_;  // arena for multi-attr tokens
  // Keys view into the catalog's interned text storage (stable for the
  // table's lifetime).
  std::unordered_map<std::string_view, uint32_t> token_by_text_;
  uint64_t communication_rounds_ = 0;
  uint64_t queries_issued_ = 0;

  // Scratch reused across queries by the keyword-union and conjunctive
  // paths (swap-buffered, capacity kept), so steady-state queries do not
  // reallocate. The server is externally synchronized when shared across
  // threads (LockedQueryInterface), so per-instance scratch is safe.
  std::vector<RecordId> scratch_merged_;
  std::vector<RecordId> scratch_next_;
  std::vector<ValueId> scratch_ordered_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_SERVER_WEB_DB_SERVER_H_
