# Empty dependencies file for offline_planning.
# This may be replaced when dependencies are built.
