#!/usr/bin/env bash
# Tier-1 verification, three times over: the plain build, an ASan/UBSan
# build, and a ThreadSanitizer build for the concurrency suite.
#
# Usage: tools/check.sh [--no-asan] [--no-tsan]
#
# The plain pass is the canonical `cmake && ctest` loop from ROADMAP.md;
# the ASan pass rebuilds everything into build-asan/ with -DASAN=ON
# (-fsanitize=address,undefined) and runs the same suite, so memory and
# UB bugs surface before they flake in production runs. The TSan pass
# rebuilds into build-tsan/ with -DTSAN=ON (-fsanitize=thread; the two
# sanitizers cannot be combined) and runs the concurrency tests — the
# thread pool, the locked query interface, the parallel crawl engine's
# differential/stress suites, and the sharded store — under the race
# detector.
set -euo pipefail
cd "$(dirname "$0")/.."

# Test suites exercising threads; kept in tests/CMakeLists.txt's
# deepcrawl_concurrency_tests binary (plus the property tests that ride
# along with it).
TSAN_FILTER='^(ThreadPoolTest|LockedInterfaceTest|ParallelCrawlerDifferentialTest|ParallelCrawlerStressTest|ShardedStoreTest|AvgInvariantsPropertyTest|TraceWaveTest)'

run_suite() {
  local build_dir="$1"; shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

echo "=== pass 1/3: plain build (build/) ==="
run_suite build

skip_asan=0
skip_tsan=0
for arg in "$@"; do
  case "${arg}" in
    --no-asan) skip_asan=1 ;;
    --no-tsan) skip_tsan=1 ;;
    *) echo "unknown flag: ${arg}" >&2; exit 2 ;;
  esac
done

if [[ "${skip_asan}" == 1 ]]; then
  echo "=== pass 2/3 skipped (--no-asan) ==="
else
  echo "=== pass 2/3: sanitizer build (build-asan/, -DASAN=ON) ==="
  run_suite build-asan -DASAN=ON
fi

if [[ "${skip_tsan}" == 1 ]]; then
  echo "=== pass 3/3 skipped (--no-tsan) ==="
else
  echo "=== pass 3/3: thread sanitizer build (build-tsan/, -DTSAN=ON) ==="
  cmake -B build-tsan -S . -DTSAN=ON
  cmake --build build-tsan -j
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -R "${TSAN_FILTER}"
fi

echo "all requested checks passed"
