// Heuristic-based query abortion (§3.4).
//
// A query that matched many records costs many communication rounds to
// drain; when most of those records are already in DBlocal the marginal
// harvest per round is tiny. §3.4 describes two heuristics, both
// implemented here:
//
//  1. Count-based: most sources report the total match count on the
//     first page. Knowing the count and the local duplicates, the
//     crawler can bound the harvest rate of the REMAINING pages and
//     abort when it falls below a threshold.
//  2. Duplicate-ratio: without a count, abort when the first few pages
//     return mostly duplicates.
//
// The policy is consulted after every fetched page; returning false
// abandons the query's remaining pages (already-harvested records are
// kept — result extraction is never rolled back).

#ifndef DEEPCRAWL_CRAWLER_ABORT_POLICY_H_
#define DEEPCRAWL_CRAWLER_ABORT_POLICY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

namespace deepcrawl {

// Progress of the currently-draining query, updated after each page.
struct QueryProgress {
  std::optional<uint32_t> total_matches;  // server-reported, if any
  uint32_t retrievable = 0;   // matches actually fetchable (limit-clamped)
  uint32_t page_size = 0;     // k
  uint32_t pages_fetched = 0;
  uint32_t records_returned = 0;
  uint32_t new_records = 0;   // records that were not in DBlocal
  bool has_more = false;
};

class AbortPolicy {
 public:
  virtual ~AbortPolicy() = default;

  // Returns true to fetch the next page, false to abort the query.
  // Only consulted when progress.has_more.
  virtual bool ShouldContinue(const QueryProgress& progress) = 0;

  virtual std::string_view name() const = 0;
};

// Always drains queries completely (the paper's default crawler).
class NeverAbort : public AbortPolicy {
 public:
  bool ShouldContinue(const QueryProgress&) override { return true; }
  std::string_view name() const override { return "never-abort"; }
};

// Count-based heuristic: abort when the best-case harvest rate of the
// remaining pages (all unseen-so-far matches turn out new) is below
// `min_harvest_rate` new records per round.
class CountBasedAbort : public AbortPolicy {
 public:
  explicit CountBasedAbort(double min_harvest_rate);

  bool ShouldContinue(const QueryProgress& progress) override;
  std::string_view name() const override { return "count-abort"; }

 private:
  double min_harvest_rate_;
};

// Duplicate-ratio heuristic: after at least `min_pages` pages, abort when
// the fraction of duplicates among returned records exceeds
// `max_duplicate_fraction`.
class DuplicateRatioAbort : public AbortPolicy {
 public:
  DuplicateRatioAbort(uint32_t min_pages, double max_duplicate_fraction);

  bool ShouldContinue(const QueryProgress& progress) override;
  std::string_view name() const override { return "dup-ratio-abort"; }

 private:
  uint32_t min_pages_;
  double max_duplicate_fraction_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_ABORT_POLICY_H_
