file(REMOVE_RECURSE
  "CMakeFiles/bench_abort.dir/bench_abort.cc.o"
  "CMakeFiles/bench_abort.dir/bench_abort.cc.o.d"
  "bench_abort"
  "bench_abort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
