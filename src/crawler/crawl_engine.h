// CrawlEngine: the single wave-based crawl loop behind both the serial
// and the parallel crawler (DESIGN.md §10).
//
// Earlier releases maintained two engines — a serial drain loop
// (Crawler) and a batched wave loop (ParallelCrawler) — whose
// determinism equivalence (batch == 1 ≡ serial, bit-identically) held
// only by keeping two copies of the retry/requeue, pending-drain,
// budget-slicing, and trace-commit logic in sync. This class collapses
// them into one engine, layered as:
//
//   * the wave planner/committer (this class): selector ranking, slot
//     refill, strict slot-rank commit order, retry/backoff via the
//     shared DegradationTracker, pending-drain parking across budget
//     slices, trace emission, and stop-reason resolution;
//   * a pluggable FetchExecutor underneath: InlineFetchExecutor runs a
//     wave's fetches sequentially on the calling thread (the serial
//     configuration — no thread is ever spawned), ThreadPoolFetchExecutor
//     runs them concurrently. Executors only decide WHERE the fetch
//     closures run; every task writes its own rank-indexed result cell
//     and the commit phase consumes cells strictly by rank, so the
//     executor choice is invisible to the crawl output *by
//     construction* — there is no second loop to keep in sync.
//
// The determinism contract is unchanged (and still proven by
// tests/crawler_parallel_differential_test.cc):
//   * batch == 1 reproduces the historical serial crawl bit-identically
//     at any thread count;
//   * at any batch, output is a pure function of (seed, batch); thread
//     count affects wall-clock only;
//   * batch > 1 is semantic: each wave picks its top-B frontier
//     candidates from the previous wave's knowledge (the round-limited
//     access model of Sheng et al., PAPERS.md).
//
// Checkpoint/resume: SaveState/LoadState serialize the engine's entire
// crawl state — local store, selector, retry queues, parked slots, wave
// cursor, clock, trace, resilience counters — such that checkpoint +
// restore + continue emits the SAME trace CSV byte-for-byte as the
// uninterrupted run. See src/crawler/checkpoint.h for the file format
// and the whole-crawl orchestration (including fault-proxy state).
//
// The old Crawler / ParallelCrawler classes survive as thin
// compatibility shims over this engine (crawler.h, parallel_crawler.h).

#ifndef DEEPCRAWL_CRAWLER_CRAWL_ENGINE_H_
#define DEEPCRAWL_CRAWLER_CRAWL_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/crawler/abort_policy.h"
#include "src/crawler/local_store.h"
#include "src/crawler/metrics.h"
#include "src/crawler/query_selector.h"
#include "src/crawler/retry_policy.h"
#include "src/server/query_interface.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace deepcrawl {

class CheckpointReader;
class CheckpointWriter;
class CrawlEngine;

struct CrawlOptions {
  // Stop after this many communication rounds (0 = unbounded).
  uint64_t max_rounds = 0;
  // Stop once this many distinct records were harvested (0 = crawl until
  // the frontier is exhausted). Figure 3's "reach 90% coverage" runs set
  // this to 0.9 * |DB|.
  uint64_t target_records = 0;
  // Notify the selector of saturation once this many records were
  // harvested (0 = never). Drives the §3.3 GL -> MMMI switch-over.
  uint64_t saturation_records = 0;
  // Issue queries through the site's keyword box instead of typed
  // attribute fields (§2.2 "fading schema"): the selected value's text
  // is matched by the server against every attribute, so e.g. a person
  // name harvests both acting and directing credits in one query.
  bool use_keyword_interface = false;
};

enum class StopReason {
  kFrontierExhausted,
  kRoundBudget,
  kTargetReached,
};

const char* StopReasonToString(StopReason reason);

struct CrawlResult {
  StopReason stop_reason = StopReason::kFrontierExhausted;
  uint64_t rounds = 0;
  uint64_t queries = 0;
  uint64_t records = 0;
  CrawlTrace trace;
  // Copy of trace.resilience(), for reporting convenience.
  ResilienceCounters resilience;
  // Round-trip-time tallies from the query interface the crawl ran
  // against: simulated latency (LockedQueryInterface --latency-us) and
  // measured socket RTT (NetQueryClient) land in these SAME counters,
  // so latency reporting is uniform across in-process and TCP crawls.
  // Wall-clock-derived for network crawls, hence excluded from the
  // determinism contract (never serialized, never traced).
  RttCounters rtt;
  // Per-source degradation reports. Empty for a bare engine crawl; a
  // fleet's merged result carries one entry per source so partial
  // results under chaos are explicit, never silent (DESIGN.md §11).
  std::vector<SourceDegradation> source_reports;
};

// Builds the CrawlResult snapshot every stop path returns — the one
// place stop-reason resolution materializes a result (formerly a lambda
// duplicated between the two engines).
CrawlResult MakeCrawlResult(StopReason reason, uint64_t rounds,
                            uint64_t queries, uint64_t records,
                            const CrawlTrace& trace);

// One planned page fetch of a wave, in selector-rank order. The typed
// form (rather than an opaque closure) is what lets transport-aware
// executors see a whole wave at once: the network executor pipelines
// every request of the wave over its connections before reading any
// response (DESIGN.md §13).
struct FetchRequest {
  ValueId value = kInvalidValueId;
  uint32_t page_number = 0;
  // FetchPageKeywordOf instead of FetchPage (CrawlOptions::
  // use_keyword_interface).
  bool keyword = false;
};

// Issues `request` against `server` through the query form the request
// names — the one fetch dispatch shared by every executor.
StatusOr<ResultPage> ExecuteFetch(QueryInterface& server,
                                  const FetchRequest& request);

// Executes one wave of page fetches, writing results[i] for
// requests[i]. Implementations only choose the transport/execution
// vehicle; each fetch lands in its own rank-indexed result cell, so
// execution (and completion) order is invisible to the commit phase.
class FetchExecutor {
 public:
  virtual ~FetchExecutor() = default;
  virtual void FetchWave(
      QueryInterface& server, std::span<const FetchRequest> requests,
      std::span<std::optional<StatusOr<ResultPage>>> results) = 0;
};

// Fetches sequentially on the calling thread (the serial engine
// configuration; never spawns a thread).
class InlineFetchExecutor : public FetchExecutor {
 public:
  void FetchWave(
      QueryInterface& server, std::span<const FetchRequest> requests,
      std::span<std::optional<StatusOr<ResultPage>>> results) override;
};

// Fetches concurrently on an owned ThreadPool. The server behind the
// engine must be thread-safe (see src/server/locked_interface.h).
class ThreadPoolFetchExecutor : public FetchExecutor {
 public:
  explicit ThreadPoolFetchExecutor(uint32_t threads);
  void FetchWave(
      QueryInterface& server, std::span<const FetchRequest> requests,
      std::span<std::optional<StatusOr<ResultPage>>> results) override;

 private:
  ThreadPool pool_;
  // Wave closures, reused across waves (cleared, never shrunk).
  std::vector<std::function<void()>> tasks_;
};

// Graceful-degradation bookkeeping shared by every engine configuration
// (formerly copy-pasted between the serial and parallel engines): given
// a failed page fetch, decides retry / re-queue / abandon / fail, and
// owns the ResilienceCounters accumulation plus the frontier-tail retry
// queue those decisions feed.
class DegradationTracker {
 public:
  enum class FailureAction {
    kFailCrawl,  // not retryable (or no policy): the crawl must fail
    kRetry,      // backoff charged; re-fetch the same page next wave
    kRequeue,    // drain gave up; value re-queued at the frontier tail
    kAbandon,    // drain gave up; re-queue budget exhausted, value dropped
  };

  // `policy` may be null (every failure fails the crawl). `clock` is
  // advanced by backoff waits and must outlive the tracker.
  DegradationTracker(const RetryPolicy* policy, SimulatedClock& clock)
      : policy_(policy), clock_(clock) {}

  // Handles one failed fetch of `value`: bumps `failures` (the drain's
  // failed-attempt count) and the resilience tallies, charges backoff to
  // the clock, and re-queues the value when its drain gives up.
  FailureAction OnFetchFailure(const Status& failure, ValueId value,
                               uint32_t& failures,
                               ResilienceCounters& resilience);

  // Pops the next re-queued value (frontier tail), or kInvalidValueId.
  ValueId PopRetry();

  void SaveState(CheckpointWriter& writer) const;
  Status LoadState(CheckpointReader& reader);

 private:
  const RetryPolicy* policy_;
  SimulatedClock& clock_;
  // Values whose drain gave up, waiting at the frontier tail, and how
  // often each was already re-queued.
  std::deque<ValueId> retry_queue_;
  std::unordered_map<ValueId, uint32_t> requeue_count_;
};

struct EngineOptions {
  // Worker threads fetching pages (>= 1). threads == 1 uses the inline
  // executor (fully serial, no thread spawned); threads > 1 uses a
  // ThreadPool and requires a thread-safe server. Wall-clock only.
  uint32_t threads = 1;
  // Concurrent drain slots per wave (>= 1). Semantic: batch == 1 is
  // exactly the serial crawl order.
  uint32_t batch = 1;
  // Invoke `checkpoint_sink` after every N completed waves (0 = never).
  // Wave boundaries are the engine's durable points: the sink sees a
  // state from which a restored engine continues bit-identically.
  uint64_t checkpoint_every_waves = 0;
  // Called at checkpoint boundaries (typically SaveCrawlCheckpoint); a
  // non-OK return fails the crawl with that status.
  std::function<Status(const CrawlEngine&)> checkpoint_sink;
  // When set, the engine fetches through this executor instead of
  // constructing its own, and `threads` is ignored. A fleet points every
  // source's engine at one shared pool so N sources never spawn N pools;
  // waves still run one engine at a time, so the shared executor needs
  // no cross-engine synchronization. Must outlive the engine.
  FetchExecutor* shared_executor = nullptr;
};

class CrawlEngine {
 public:
  // All referenced objects must outlive the engine. When engine.threads
  // > 1 the server must be thread-safe (wrap it in a
  // LockedQueryInterface); `abort_policy` may be null (never abort);
  // `retry_policy` may be null (fail the crawl on the first fetch
  // error).
  CrawlEngine(QueryInterface& server, QuerySelector& selector,
              LocalStore& store, CrawlOptions options,
              EngineOptions engine_options = EngineOptions{},
              AbortPolicy* abort_policy = nullptr,
              const RetryPolicy* retry_policy = nullptr);

  CrawlEngine(const CrawlEngine&) = delete;
  CrawlEngine& operator=(const CrawlEngine&) = delete;

  // Plants a seed attribute value; duplicate seeds are ignored.
  void AddSeed(ValueId v);

  // Runs waves until a stop condition fires. May be called again to
  // continue (e.g. with a raised budget): slots interrupted by the
  // round budget stay parked and resume exactly, with no page
  // re-fetched and no record double-counted.
  StatusOr<CrawlResult> Run();

  // Adjusts budgets between Run() calls (0 = unbounded), enabling
  // incremental/staged crawls and resumed runs.
  void set_max_rounds(uint64_t max_rounds) {
    options_.max_rounds = max_rounds;
  }
  void set_target_records(uint64_t target_records) {
    options_.target_records = target_records;
  }

  uint64_t rounds_used() const { return rounds_used_; }
  uint64_t queries_issued() const { return queries_issued_; }
  uint64_t waves_completed() const { return waves_completed_; }
  const LocalStore& store() const { return store_; }
  const SimulatedClock& clock() const { return clock_; }
  const CrawlTrace& trace() const { return trace_; }
  const CrawlOptions& options() const { return options_; }
  const EngineOptions& engine_options() const { return engine_options_; }

  // --- checkpointing ---------------------------------------------------
  // Serializes the engine's full crawl state (config fingerprint, loop
  // state, local store, selector) into `writer`. Fails cleanly when the
  // selector does not support checkpointing (oracle/domain policies).
  Status SaveState(CheckpointWriter& writer) const;
  // Restores state saved by SaveState into a freshly constructed engine
  // whose construction parameters (batch, keyword mode, store options,
  // selector policy) match the checkpointing run; anything else is
  // rejected with a clean error. On error the engine may be partially
  // populated and must be discarded — never continue a crawl on it.
  Status LoadState(CheckpointReader& reader);

 private:
  // One in-flight drain: which value, which page comes next, and the
  // outcome accumulated so far. Parked across Run() calls on budget
  // expiry.
  struct Slot {
    ValueId value = kInvalidValueId;
    uint32_t next_page = 0;
    uint32_t failures = 0;
    QueryOutcome outcome;
  };

  void DiscoverValue(ValueId v);
  ValueId NextValue();
  // Applies one fetched page to the crawl state. Clears `slot_box` when
  // the drain ended; leaves it parked for the next wave otherwise.
  // Returns a non-OK status only when the crawl must fail.
  Status CommitFetch(std::optional<Slot>& slot_box,
                     StatusOr<ResultPage> fetched);
  // Drain-finished bookkeeping shared by the completion paths.
  void FinishDrain(std::optional<Slot>& slot_box);
  void CheckSaturation();
  CrawlResult MakeResult(StopReason reason) const;

  QueryInterface& server_;
  QuerySelector& selector_;
  LocalStore& store_;
  CrawlOptions options_;
  EngineOptions engine_options_;
  AbortPolicy* abort_policy_;
  const RetryPolicy* retry_policy_;
  // Owned when the engine built its own executor; empty when fetching
  // through engine_options_.shared_executor. `executor_` is the one the
  // wave loop uses either way.
  std::unique_ptr<FetchExecutor> owned_executor_;
  FetchExecutor* executor_;

  std::vector<char> seen_;  // value already in Lto-query or Lqueried
  bool saturation_notified_ = false;
  uint64_t rounds_used_ = 0;
  uint64_t queries_issued_ = 0;
  uint64_t waves_completed_ = 0;
  CrawlTrace trace_;
  SimulatedClock clock_;
  DegradationTracker degradation_;

  std::vector<std::optional<Slot>> slots_;
  // The wave currently being executed (slot indices, lowest rank
  // first) and how many of its fetches have been committed. A wave is
  // an atomic unit of the crawl order: when the round budget expires
  // mid-wave, the unfetched suffix survives across Run() calls and is
  // fetched FIRST on resume, before any refill — this is what makes a
  // budget-sliced run bit-identical to a one-shot run at any batch.
  std::vector<size_t> wave_;
  size_t wave_pos_ = 0;
  // Per-wave trace points, flushed through CrawlTrace::AddWave once per
  // wave slice (single buffered append instead of one write per page).
  std::vector<TracePoint> wave_points_;
  // Wave-assembly scratch, reused across waves (cleared, never shrunk)
  // so steady-state waves allocate nothing.
  std::vector<std::optional<StatusOr<ResultPage>>> fetch_results_;
  std::vector<FetchRequest> fetch_requests_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_CRAWL_ENGINE_H_
