#include "src/net/tcp_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>
#include <vector>

namespace deepcrawl {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + strerror(errno));
}

constexpr size_t kReadChunkBytes = 64 * 1024;

}  // namespace

WebDbTcpServer::WebDbTcpServer(EventLoop& loop, QueryInterface& backend,
                               TcpServerOptions options)
    : loop_(loop), backend_(backend), options_(std::move(options)) {}

WebDbTcpServer::~WebDbTcpServer() {
  // Raw closes only: the loop may already be gone. A live loop was
  // already detached by Shutdown() if the caller wanted clean teardown.
  for (auto& [fd, conn] : connections_) close(fd);
  connections_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

Status WebDbTcpServer::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  // SO_REUSEADDR lets a restarted server rebind its old port while
  // TIME_WAIT remnants of the crashed incarnation linger — the
  // kill-the-server resilience pass depends on it.
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    return Errno("bind " + options_.bind_address + ":" +
                 std::to_string(options_.port));
  }
  if (listen(listen_fd_, SOMAXCONN) < 0) return Errno("listen");
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &addr_len) < 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  WireServerInfo info;
  info.options = backend_.options();
  info.num_values = options_.num_values;
  info.queriable_bitmap.assign((options_.num_values + 7) / 8, 0);
  for (uint32_t v = 0; v < options_.num_values; ++v) {
    if (backend_.IsQueriableValue(v)) {
      info.queriable_bitmap[v >> 3] |= static_cast<uint8_t>(1u << (v & 7u));
    }
  }
  server_info_frame_ = EncodeServerInfoFrame(info);
  goaway_frame_ = EncodeGoAwayFrame(
      Status::Unavailable("connection limit reached, retry later")
          .WithRetryAfter(options_.shed_retry_after_rounds));

  return loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) { OnAcceptable(); });
}

void WebDbTcpServer::Shutdown() {
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (int fd : fds) CloseConnection(fd);
}

void WebDbTcpServer::OnAcceptable() {
  for (;;) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // transient accept failure; the loop will retry
    }
    const bool shed = active_connections_ >= options_.max_connections;
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->id = next_connection_id_++;
    conn->fd = fd;
    conn->shedding = shed;
    conn->assembler = FrameAssembler(options_.max_frame_bytes);
    Status added = loop_.Add(
        fd, EPOLLIN, [this, fd](uint32_t events) {
          OnConnectionEvent(fd, events);
        });
    if (!added.ok()) {
      close(fd);
      continue;
    }
    Connection& registered = *conn;
    connections_.emplace(fd, std::move(conn));
    if (shed) {
      // Shed gracefully: one GoAway frame, then LINGER until the client
      // reads it and closes (closing right away would send an RST —
      // the unread bytes the client already pipelined make close()
      // abortive — and the RST would discard the GoAway in flight).
      // Input is discarded meanwhile; a timer reaps rude clients.
      ++connections_shed_;
      uint64_t conn_id = registered.id;
      loop_.ScheduleAt(EventLoop::NowMicros() + 2'000'000,
                       [this, fd, conn_id] {
                         auto it = connections_.find(fd);
                         if (it != connections_.end() &&
                             it->second->id == conn_id) {
                           CloseConnection(fd);
                         }
                       });
      // Result ignored: `registered` is not touched after this, and a
      // failed flush already closed it (the reaper then no-ops).
      QueueFrame(registered, goaway_frame_);
      continue;
    }
    ++active_connections_;
    ++connections_accepted_;
  }
}

void WebDbTcpServer::OnConnectionEvent(int fd, uint32_t events) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConnection(fd);
    return;
  }
  if ((events & EPOLLIN) && !DrainReadable(conn)) return;
  if (events & EPOLLOUT) FlushOutbox(conn);
}

bool WebDbTcpServer::DrainReadable(Connection& conn) {
  char buf[kReadChunkBytes];
  for (;;) {
    ssize_t n = read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      // A shed connection's input is discarded: its only traffic is the
      // GoAway on the way out.
      if (!conn.shedding) {
        conn.assembler.Append(std::string_view(buf, static_cast<size_t>(n)));
      }
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {  // peer closed
      CloseConnection(conn.fd);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn.fd);
    return false;
  }
  if (conn.shedding) return true;
  std::string body;
  for (;;) {
    StatusOr<bool> next = conn.assembler.Next(&body);
    if (!next.ok()) {
      ++protocol_errors_;
      CloseConnection(conn.fd);
      return false;
    }
    if (!*next) return true;
    switch (ServeBody(conn, body)) {
      case ServeResult::kOk:
        break;
      case ServeResult::kProtocolError:
        ++protocol_errors_;
        CloseConnection(conn.fd);
        return false;
      case ServeResult::kConnectionLost:
        // QueueFrame hit a write error and already destroyed the
        // connection; `conn` is freed memory from here on.
        return false;
    }
  }
}

WebDbTcpServer::ServeResult WebDbTcpServer::ServeBody(
    Connection& conn, const std::string& body) {
  StatusOr<WireRequest> request = DecodeRequest(body);
  if (!request.ok()) return ServeResult::kProtocolError;
  if (request->type == WireMessageType::kHello) {
    if (conn.saw_hello) {  // one handshake per connection
      return ServeResult::kProtocolError;
    }
    conn.saw_hello = true;
    return QueueFrame(conn, server_info_frame_)
               ? ServeResult::kOk
               : ServeResult::kConnectionLost;
  }
  if (!conn.saw_hello) {  // fetch before handshake
    return ServeResult::kProtocolError;
  }

  std::string frame = EncodeResponseFrame(request->request_id,
                                          Dispatch(*request));
  ++requests_served_;
  if (options_.latency_us == 0) {
    return QueueFrame(conn, std::move(frame)) ? ServeResult::kOk
                                              : ServeResult::kConnectionLost;
  }
  // Delay the RESPONSE, not the backend call: the backend's fault/meter
  // stream still sees arrival order, and equal delays preserve the
  // per-connection response order (timers with equal deadlines fire in
  // schedule order).
  uint64_t conn_id = conn.id;
  int fd = conn.fd;
  loop_.ScheduleAt(
      EventLoop::NowMicros() + options_.latency_us,
      [this, fd, conn_id, frame = std::move(frame)]() mutable {
        auto it = connections_.find(fd);
        if (it == connections_.end() || it->second->id != conn_id) return;
        // Result ignored: the connection is not touched after this, and
        // a failed flush already closed it.
        QueueFrame(*it->second, std::move(frame));
      });
  return ServeResult::kOk;
}

StatusOr<ResultPage> WebDbTcpServer::Dispatch(const WireRequest& request) {
  switch (request.type) {
    case WireMessageType::kFetchPage:
      return backend_.FetchPage(request.value, request.page_number);
    case WireMessageType::kFetchPageByText:
      return backend_.FetchPageByText(request.attr, request.text,
                                      request.page_number);
    case WireMessageType::kFetchPageByKeyword:
      return backend_.FetchPageByKeyword(request.text, request.page_number);
    case WireMessageType::kFetchPageConjunctive:
      return backend_.FetchPageConjunctive(request.values,
                                           request.page_number);
    case WireMessageType::kFetchPageKeywordOf:
      return backend_.FetchPageKeywordOf(request.value, request.page_number);
    default:
      return Status::Internal("non-fetch request reached Dispatch");
  }
}

bool WebDbTcpServer::QueueFrame(Connection& conn, std::string frame) {
  if (conn.outbox.empty()) {
    conn.outbox = std::move(frame);
    conn.outbox_pos = 0;
  } else {
    conn.outbox.append(frame);
  }
  return FlushOutbox(conn);
}

bool WebDbTcpServer::FlushOutbox(Connection& conn) {
  while (conn.outbox_pos < conn.outbox.size()) {
    ssize_t n = write(conn.fd, conn.outbox.data() + conn.outbox_pos,
                      conn.outbox.size() - conn.outbox_pos);
    if (n > 0) {
      conn.outbox_pos += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!conn.want_writable) {
        conn.want_writable = true;
        loop_.Modify(conn.fd, EPOLLIN | EPOLLOUT);
      }
      return true;
    }
    if (errno == EINTR) continue;
    CloseConnection(conn.fd);
    return false;
  }
  conn.outbox.clear();
  conn.outbox_pos = 0;
  if (conn.want_writable) {
    conn.want_writable = false;
    loop_.Modify(conn.fd, EPOLLIN);
  }
  return true;
}

void WebDbTcpServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (!it->second->shedding) --active_connections_;
  loop_.Remove(fd);
  close(fd);
  connections_.erase(it);
}

}  // namespace deepcrawl
