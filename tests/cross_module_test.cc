// Cross-module consistency: the same quantities computed by independent
// code paths must agree.
//
//   * After an exhaustive crawl, the LocalStore's incremental local
//     graph must equal the offline AttributeValueGraph of the reachable
//     records (degrees, frequencies).
//   * The crawler's harvested set must equal the reachability fixed
//     point, which must equal the connectivity component of the seed.
//   * The server's full-retrieval costs must sum to the cost of an
//     "issue every value once" sweep.

#include <gtest/gtest.h>

#include "src/crawler/crawler.h"
#include "src/crawler/naive_selectors.h"
#include "src/datagen/workload_config.h"
#include "src/graph/attribute_value_graph.h"
#include "src/graph/components.h"
#include "src/graph/reachability.h"
#include "src/server/web_db_server.h"

namespace deepcrawl {
namespace {

Table MakeDb(uint64_t seed) {
  SyntheticDbConfig config;
  config.name = "xmod";
  config.num_records = 300;
  config.seed = seed;
  config.attributes = {
      {.name = "P", .num_distinct = 30, .zipf_exponent = 1.1},
      {.name = "Q",
       .num_distinct = 150,
       .zipf_exponent = 0.6,
       .min_per_record = 1,
       .max_per_record = 3},
  };
  StatusOr<Table> table = GenerateTable(config);
  DEEPCRAWL_CHECK(table.ok());
  return std::move(*table);
}

class CrossModuleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossModuleTest, LocalGraphMatchesOfflineGraphAfterFullCrawl) {
  Table db = MakeDb(GetParam());
  WebDbServer server(db, ServerOptions{});
  LocalStore store;
  BfsSelector selector;
  Crawler crawler(server, selector, store, CrawlOptions{});
  crawler.AddSeed(0);
  StatusOr<CrawlResult> result = crawler.Run();
  ASSERT_TRUE(result.ok());

  // Offline AVG of the reachable sub-database.
  InvertedIndex index(db);
  ReachabilityReport reach =
      ComputeReachability(db, index, std::vector<ValueId>{0});
  ASSERT_EQ(result->records, reach.reachable_records);

  Schema sub_schema;
  for (const AttributeDef& attr : db.schema().attributes()) {
    ASSERT_TRUE(sub_schema.AddAttribute(attr.name, attr.multi_valued).ok());
  }
  Table reachable_db(std::move(sub_schema));
  for (RecordId r = 0; r < db.num_records(); ++r) {
    if (!reach.reachable_record[r]) continue;
    std::vector<Cell> cells;
    for (ValueId v : db.record(r)) {
      cells.push_back(Cell{db.catalog().attribute_of(v),
                           db.catalog().text_of(v)});
    }
    ASSERT_TRUE(reachable_db.AddRecord(cells).ok());
  }
  AttributeValueGraph offline = AttributeValueGraph::Build(reachable_db);

  // Compare per-value: the crawler's incremental statistics vs offline.
  // Value identity is by (attribute, text); iterate the sub-database's
  // catalog and translate back into the crawl-side id space.
  for (ValueId sub_v = 0; sub_v < reachable_db.num_distinct_values();
       ++sub_v) {
    AttributeId attr = reachable_db.catalog().attribute_of(sub_v);
    const std::string& text = reachable_db.catalog().text_of(sub_v);
    ValueId crawl_v = db.catalog().Find(attr, text);
    ASSERT_NE(crawl_v, kInvalidValueId);
    EXPECT_EQ(store.LocalFrequency(crawl_v),
              reachable_db.value_frequency(sub_v))
        << "frequency mismatch for " << text;
    EXPECT_EQ(store.LocalDegree(crawl_v), offline.Degree(sub_v))
        << "degree mismatch for " << text;
  }
}

TEST_P(CrossModuleTest, ReachabilityMatchesConnectivityComponent) {
  Table db = MakeDb(GetParam());
  InvertedIndex index(db);
  ConnectivityReport connectivity = AnalyzeConnectivity(db);

  // For a handful of seeds: the reachable record set is exactly the
  // records of the seed's connected component.
  for (ValueId seed : {ValueId{0}, ValueId{5}, ValueId{17}}) {
    if (seed >= db.num_distinct_values()) continue;
    ReachabilityReport reach =
        ComputeReachability(db, index, std::vector<ValueId>{seed});
    // Find a record containing the seed to learn its component.
    auto postings = index.Postings(seed);
    ASSERT_FALSE(postings.empty());
    uint32_t component = connectivity.record_component[postings[0]];
    size_t component_records = 0;
    for (RecordId r = 0; r < db.num_records(); ++r) {
      bool in_component = connectivity.record_component[r] == component;
      EXPECT_EQ(static_cast<bool>(reach.reachable_record[r]), in_component)
          << "record " << r << " seed " << seed;
      if (in_component) ++component_records;
    }
    EXPECT_EQ(reach.reachable_records, component_records);
  }
}

TEST_P(CrossModuleTest, SweepCostEqualsSumOfFullRetrievalCosts) {
  Table db = MakeDb(GetParam());
  ServerOptions options;
  options.page_size = 4;
  options.result_limit = 9;
  WebDbServer server(db, options);
  uint64_t predicted = 0;
  for (ValueId v = 0; v < db.num_distinct_values(); ++v) {
    predicted += server.FullRetrievalCost(v);
  }
  server.ResetMeters();
  for (ValueId v = 0; v < db.num_distinct_values(); ++v) {
    for (uint32_t page = 0;; ++page) {
      StatusOr<ResultPage> fetched = server.FetchPage(v, page);
      ASSERT_TRUE(fetched.ok());
      if (!fetched->has_more) break;
    }
  }
  EXPECT_EQ(server.communication_rounds(), predicted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossModuleTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace deepcrawl
