// §1/§4 ablation — convergence coverage: what the seeds predetermine.
//
// "The ultimate database coverage (or the coverage convergence) is
// predetermined by the seed values and the target query interfaces,
// [while] the communication costs ... are greatly dependent on the query
// selection method" (§1). This harness separates the two factors:
// for each of several seed values it reports (a) the reachability fixed
// point — the best ANY policy can do — under different result limits,
// and (b) what a greedy-link crawl actually attains.

#include <iostream>

#include "bench/bench_common.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/datagen/movie_domain.h"
#include "src/graph/reachability.h"
#include "src/util/table_printer.h"

int main() {
  using namespace deepcrawl;
  bench::PrintBanner(
      "Ablation (§1/§4): seed choice, result limits, and convergence "
      "coverage",
      "coverage convergence is predetermined by seeds and interface; "
      "costs depend on the selection method",
      "movie-domain target; reachability fixed point vs unbounded "
      "greedy-link crawl, per seed and result limit");

  MovieDomainPairConfig config;
  config.universe_size = 10000;
  config.target_size = 3000;
  config.seed = 5;
  StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
  DEEPCRAWL_CHECK(pair.ok()) << pair.status().ToString();
  const Table& target = pair->target;
  InvertedIndex index(target);
  std::cout << "target records: "
            << TablePrinter::FormatCount(target.num_records()) << "\n\n";

  TablePrinter table({"seed value", "reach (no limit)", "reach (limit 50)",
                      "reach (limit 10)", "greedy-link attains",
                      "rounds spent"});
  for (uint32_t i = 0; i < 5; ++i) {
    ValueId seed = bench::SeedValue(target, i * 7 + 1);
    std::vector<ValueId> seeds = {seed};
    ReachabilityReport unlimited =
        ComputeReachability(target, index, seeds);
    ReachabilityReport limit50 =
        ComputeReachabilityWithLimit(target, index, seeds, 50);
    ReachabilityReport limit10 =
        ComputeReachabilityWithLimit(target, index, seeds, 10);

    WebDbServer server(target, ServerOptions{});
    LocalStore store;
    GreedyLinkSelector selector(store);
    CrawlResult result =
        bench::RunCrawl(server, selector, store, CrawlOptions{}, seed);
    // An exhaustive crawl must land exactly on the fixed point.
    DEEPCRAWL_CHECK_EQ(result.records, unlimited.reachable_records);

    table.AddRow(
        {target.catalog().text_of(seed),
         TablePrinter::FormatPercent(unlimited.record_fraction, 1),
         TablePrinter::FormatPercent(limit50.record_fraction, 1),
         TablePrinter::FormatPercent(limit10.record_fraction, 1),
         TablePrinter::FormatPercent(
             static_cast<double>(result.records) /
                 static_cast<double>(target.num_records()), 1),
         TablePrinter::FormatCount(result.rounds)});
  }
  table.Print(std::cout);
  std::cout << "\nreading: the 'reach' columns bound every policy; "
               "tighter result limits shrink the bound itself (§5.4's "
               "connectivity argument made exact). The crawl column "
               "confirms an unbounded crawl attains the fixed point — "
               "policies only change the rounds column.\n";
  return 0;
}
