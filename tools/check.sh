#!/usr/bin/env bash
# Tier-1 verification, four times over: the plain build, an ASan/UBSan
# build, a ThreadSanitizer build for the concurrency suite, and a
# Release-mode perf pass that guards the committed BENCH_*.json
# baselines.
#
# Usage: tools/check.sh [--no-asan] [--no-tsan] [--no-perf]
#
# The plain pass is the canonical `cmake && ctest` loop from ROADMAP.md;
# the ASan pass rebuilds everything into build-asan/ with -DASAN=ON
# (-fsanitize=address,undefined) and runs the same suite, so memory and
# UB bugs surface before they flake in production runs. The TSan pass
# rebuilds into build-tsan/ with -DTSAN=ON (-fsanitize=thread; the two
# sanitizers cannot be combined) and runs the concurrency tests — the
# thread pool, the locked query interface, the parallel crawl engine's
# differential/stress suites, and the sharded store — under the race
# detector. The perf pass rebuilds into build-perf/ with
# -DCMAKE_BUILD_TYPE=Release, runs the JSON bench suites, and fails on
# >20% regression against the committed baselines via
# tools/bench_compare.py (see README "Benchmarking").
set -euo pipefail
cd "$(dirname "$0")/.."

# Test suites exercising threads; kept in tests/CMakeLists.txt's
# deepcrawl_concurrency_tests binary (plus the property tests that ride
# along with it).
TSAN_FILTER='^(ThreadPoolTest|LockedInterfaceTest|ParallelCrawlerDifferentialTest|ParallelCrawlerStressTest|ShardedStoreTest|AvgInvariantsPropertyTest|TraceWaveTest|HotPathDifferentialTest)'

run_suite() {
  local build_dir="$1"; shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

echo "=== pass 1/4: plain build (build/) ==="
run_suite build

skip_asan=0
skip_tsan=0
skip_perf=0
for arg in "$@"; do
  case "${arg}" in
    --no-asan) skip_asan=1 ;;
    --no-tsan) skip_tsan=1 ;;
    --no-perf) skip_perf=1 ;;
    *) echo "unknown flag: ${arg}" >&2; exit 2 ;;
  esac
done

if [[ "${skip_asan}" == 1 ]]; then
  echo "=== pass 2/4 skipped (--no-asan) ==="
else
  echo "=== pass 2/4: sanitizer build (build-asan/, -DASAN=ON) ==="
  run_suite build-asan -DASAN=ON
fi

if [[ "${skip_tsan}" == 1 ]]; then
  echo "=== pass 3/4 skipped (--no-tsan) ==="
else
  echo "=== pass 3/4: thread sanitizer build (build-tsan/, -DTSAN=ON) ==="
  cmake -B build-tsan -S . -DTSAN=ON
  cmake --build build-tsan -j
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -R "${TSAN_FILTER}"
fi

if [[ "${skip_perf}" == 1 ]]; then
  echo "=== pass 4/4 skipped (--no-perf) ==="
else
  echo "=== pass 4/4: perf regression (build-perf/, Release) ==="
  cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-perf -j \
    --target bench_micro bench_parallel bench_mmmi_ablation
  ./build-perf/bench/bench_micro --json=build-perf/BENCH_micro.json
  ./build-perf/bench/bench_parallel --json=build-perf/BENCH_parallel.json
  ./build-perf/bench/bench_mmmi_ablation \
    --json=build-perf/BENCH_mmmi_ablation.json
  python3 tools/bench_compare.py --max-regress 0.20 \
    --baseline BENCH_micro.json \
    --current build-perf/BENCH_micro.json \
    --baseline BENCH_parallel.json \
    --current build-perf/BENCH_parallel.json \
    --baseline BENCH_mmmi_ablation.json \
    --current build-perf/BENCH_mmmi_ablation.json
fi

echo "all requested checks passed"
