#include "src/domain/coverage_set.h"

#include <algorithm>

#include "src/util/logging.h"

namespace deepcrawl {

void CoverageSet::Union(std::span<const uint32_t> ids) {
  if (ids.empty()) return;
  DEEPCRAWL_DCHECK(std::is_sorted(ids.begin(), ids.end()))
      << "CoverageSet::Union requires sorted input";
  std::vector<uint32_t> merged;
  merged.reserve(covered_.size() + ids.size());
  std::set_union(covered_.begin(), covered_.end(), ids.begin(), ids.end(),
                 std::back_inserter(merged));
  covered_ = std::move(merged);
}

bool CoverageSet::Contains(uint32_t id) const {
  return std::binary_search(covered_.begin(), covered_.end(), id);
}

double CoverageSet::Fraction(size_t universe_size) const {
  if (universe_size == 0) return 0.0;
  return static_cast<double>(covered_.size()) /
         static_cast<double>(universe_size);
}

}  // namespace deepcrawl
