// Tests of the textual-database generator: config validation,
// determinism, the shared title/body vocabulary (what gives the keyword
// box real cross-attribute unions), and the mixed structured+textual
// mode.

#include "src/datagen/textual_workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>
#include <string>

#include "src/server/web_db_server.h"

namespace deepcrawl {
namespace {

TextualDbConfig SmallConfig() {
  TextualDbConfig config;
  config.num_documents = 200;
  config.vocabulary = 120;
  config.num_topics = 4;
  config.seed = 7;
  return config;
}

TEST(TextualWorkloadTest, RejectsNonsensicalConfigs) {
  TextualDbConfig config = SmallConfig();
  config.num_documents = 0;
  EXPECT_FALSE(GenerateTextualTable(config).ok());

  config = SmallConfig();
  config.vocabulary = 0;
  EXPECT_FALSE(GenerateTextualTable(config).ok());

  config = SmallConfig();
  config.num_topics = config.vocabulary + 1;
  EXPECT_FALSE(GenerateTextualTable(config).ok());

  config = SmallConfig();
  config.topic_affinity = 1.5;
  EXPECT_FALSE(GenerateTextualTable(config).ok());

  config = SmallConfig();
  config.title_terms_min = 3;
  config.title_terms_max = 2;
  EXPECT_FALSE(GenerateTextualTable(config).ok());

  config = SmallConfig();
  config.body_terms_min = 0;
  EXPECT_FALSE(GenerateTextualTable(config).ok());

  config = SmallConfig();
  config.mixed = true;
  config.num_categories = 0;
  EXPECT_FALSE(GenerateTextualTable(config).ok());
}

TEST(TextualWorkloadTest, GeneratesRequestedShape) {
  StatusOr<Table> table = GenerateTextualTable(SmallConfig());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_records(), 200u);
  ASSERT_EQ(table->schema().num_attributes(), 2u);
  EXPECT_EQ(table->schema().attribute(0).name, "title");
  EXPECT_EQ(table->schema().attribute(1).name, "body");
  // Every document carries at least title_min + nothing guaranteed
  // beyond dedup, but never an empty record.
  for (RecordId r = 0; r < table->num_records(); ++r) {
    EXPECT_FALSE(table->record(r).empty());
  }
}

TEST(TextualWorkloadTest, SameSeedIsDeterministic) {
  StatusOr<Table> a = GenerateTextualTable(SmallConfig());
  StatusOr<Table> b = GenerateTextualTable(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_records(), b->num_records());
  ASSERT_EQ(a->num_distinct_values(), b->num_distinct_values());
  for (RecordId r = 0; r < a->num_records(); ++r) {
    std::span<const ValueId> ra = a->record(r);
    std::span<const ValueId> rb = b->record(r);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i], rb[i]);
      EXPECT_EQ(a->catalog().text_of(ra[i]), b->catalog().text_of(rb[i]));
    }
  }
  TextualDbConfig other = SmallConfig();
  other.seed = 8;
  StatusOr<Table> c = GenerateTextualTable(other);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->num_distinct_values(), c->num_distinct_values());
}

TEST(TextualWorkloadTest, TitleAndBodyShareVocabulary) {
  // The same raw term texts appear under both attributes, so the
  // keyword token dictionary genuinely merges columns: at least one
  // token must span both title and body.
  StatusOr<Table> table = GenerateTextualTable(SmallConfig());
  ASSERT_TRUE(table.ok());
  WebDbServer server(*table, ServerOptions{});
  EXPECT_LT(server.num_keyword_tokens(), table->num_distinct_values());
  bool any_cross = false;
  for (ValueId v = 0; v < table->num_distinct_values() && !any_cross; ++v) {
    any_cross = server.KeywordAttributeSpan(v) > 1;
  }
  EXPECT_TRUE(any_cross);
}

TEST(TextualWorkloadTest, TermPopularityIsSkewed) {
  // Zipf popularity: the most popular term should match far more
  // documents than the median one.
  StatusOr<Table> table = GenerateTextualTable(SmallConfig());
  ASSERT_TRUE(table.ok());
  uint32_t max_freq = 0;
  uint64_t total = 0;
  uint32_t n = table->num_distinct_values();
  for (ValueId v = 0; v < n; ++v) {
    uint32_t f = table->value_frequency(v);
    max_freq = std::max(max_freq, f);
    total += f;
  }
  double mean = static_cast<double>(total) / n;
  EXPECT_GT(max_freq, 4.0 * mean);
}

TEST(TextualWorkloadTest, MixedModeAddsStructuredColumns) {
  TextualDbConfig config = SmallConfig();
  config.mixed = true;
  config.num_categories = 5;
  StatusOr<Table> table = GenerateTextualTable(config);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->schema().num_attributes(), 4u);
  EXPECT_EQ(table->schema().attribute(2).name, "docid");
  EXPECT_EQ(table->schema().attribute(3).name, "category");
  AttributeId docid = 2, category = 3;
  std::set<std::string> ids, categories;
  for (RecordId r = 0; r < table->num_records(); ++r) {
    for (ValueId v : table->record(r)) {
      AttributeId attr = table->catalog().attribute_of(v);
      if (attr == docid) ids.insert(table->catalog().text_of(v));
      if (attr == category) categories.insert(table->catalog().text_of(v));
    }
  }
  // Doc ids are unique; categories come from the small pool.
  EXPECT_EQ(ids.size(), table->num_records());
  EXPECT_LE(categories.size(), 5u);
  EXPECT_GE(categories.size(), 2u);
}

}  // namespace
}  // namespace deepcrawl
