// Out-of-core paged store bench: what the epoch-file page cache costs
// relative to the in-memory CSR layout, and what it buys — a crawl
// whose resident set is a small fraction of its working set.
//
// Three experiments:
//   1. raw ingest throughput (AddRecord streams) for kCsr, kPaged with
//      the cache sized above the working set (every access hits), and
//      kPaged with the cache far below it (every wave evicts);
//   2. a greedy crawl of the movie target through a thrashing cache —
//      same rounds/records/trace as the in-memory run (the
//      differential suite proves byte-identity; here we meter cost);
//   3. the durable checkpoint: flush + fsync + manifest wall-clock.
//
// The JSON metrics feed tools/bench_compare.py via check.sh pass 4.

#include <sys/stat.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/retry_policy.h"
#include "src/datagen/movie_domain.h"
#include "src/util/page_cache.h"
#include "src/util/random.h"

namespace deepcrawl {
namespace bench {
namespace {

// Fresh scratch directory per store instance; reusing a directory
// across reps would let epoch leftovers from the previous rep distort
// file-creation costs.
std::string FreshDir() {
  static int counter = 0;
  std::string dir = "/tmp/deepcrawl_bench_paged_" + std::to_string(::getpid()) +
                    "_" + std::to_string(counter++);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

LocalStore::Options PagedOptions(int64_t page_bytes, int64_t cache_pages) {
  LocalStore::Options options;
  options.layout = LocalStore::Layout::kPaged;
  options.paged_dir = FreshDir();
  options.page_bytes = page_bytes;
  options.cache_pages = cache_pages;
  return options;
}

// --- experiment 1: ingest throughput ---------------------------------

constexpr uint32_t kIngestRecords = 60000;
// The starved-cache stream pays a file round-trip per miss; run it on
// a tenth of the records so the bench stays CI-sized, and report krps
// (which normalizes the count away).
constexpr uint32_t kThrashIngestRecords = 6000;
constexpr uint32_t kIngestValuesPerRecord = 4;
constexpr uint32_t kIngestValueSpace = 4000;

void IngestStream(LocalStore& store, uint32_t records) {
  Pcg32 rng(99);
  std::vector<ValueId> values(kIngestValuesPerRecord);
  for (uint32_t r = 0; r < records; ++r) {
    for (auto& v : values) v = rng.NextBounded(kIngestValueSpace);
    store.AddRecord(r, values);
  }
}

struct IngestResult {
  double krps = 0.0;
  uint64_t evictions = 0;
  double hit_rate = 0.0;
};

IngestResult MeasureIngest(const char* label, const LocalStore::Options& base,
                           uint32_t records) {
  IngestResult out;
  uint64_t evictions = 0;
  double hit_rate = 0.0;
  double seconds = BestWallSeconds([&] {
    LocalStore::Options options = base;
    if (options.layout == LocalStore::Layout::kPaged) {
      options.paged_dir = FreshDir();
    }
    LocalStore store(options);
    IngestStream(store, records);
    if (options.layout == LocalStore::Layout::kPaged) {
      const PageCacheStats& stats = store.paged_cache_stats();
      evictions = stats.evictions;
      uint64_t accesses = stats.hits + stats.misses;
      hit_rate = accesses == 0
                     ? 0.0
                     : static_cast<double>(stats.hits) /
                           static_cast<double>(accesses);
    }
  });
  out.krps = static_cast<double>(records) / seconds / 1000.0;
  out.evictions = evictions;
  out.hit_rate = hit_rate;
  (void)label;
  return out;
}

void IngestSweep(BenchJson& json) {
  PrintBanner("Paged store: ingest throughput vs layout",
              "n/a (systems bench; the paper counts rounds, not seconds)",
              std::to_string(kIngestRecords) + " records x " +
                  std::to_string(kIngestValuesPerRecord) +
                  " values, value space " +
                  std::to_string(kIngestValueSpace));

  LocalStore::Options csr;  // defaults: kCsr
  // Resident: 4 KiB pages, 16 MiB of frames — the whole working set
  // stays cached. Thrash: 256 KiB of frames over the same stream.
  IngestResult r_csr = MeasureIngest("csr", csr, kIngestRecords);
  IngestResult r_resident =
      MeasureIngest("paged-resident", PagedOptions(4096, 4096),
                    kIngestRecords);
  IngestResult r_thrash = MeasureIngest(
      "paged-thrash", PagedOptions(4096, 64), kThrashIngestRecords);

  TablePrinter table({"layout", "krec/s", "vs csr", "hit rate", "evictions"});
  auto row = [&](const char* name, const IngestResult& r, bool paged) {
    table.AddRow({name, TablePrinter::FormatDouble(r.krps, 1),
                  TablePrinter::FormatDouble(r.krps / r_csr.krps, 2) + "x",
                  paged ? TablePrinter::FormatPercent(r.hit_rate) : "-",
                  paged ? TablePrinter::FormatCount(r.evictions) : "-"});
  };
  row("csr", r_csr, false);
  row("paged resident", r_resident, true);
  row("paged thrash", r_thrash, true);
  table.Print(std::cout);

  json.Add("csr_ingest_krps", r_csr.krps, "krec/s", true);
  json.Add("paged_resident_ingest_krps", r_resident.krps, "krec/s", true);
  json.Add("paged_thrash_ingest_krps", r_thrash.krps, "krec/s", true);
}

// --- experiment 2: crawl through a thrashing cache -------------------

Table MakeTarget() {
  MovieDomainPairConfig config;
  config.universe_size = 4000;
  config.target_size = 1200;
  config.seed = 7;
  StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
  DEEPCRAWL_CHECK(pair.ok()) << pair.status().ToString();
  return std::move(pair->target);
}

struct CrawlCost {
  double wall_ms = 0.0;
  uint64_t records = 0;
  uint64_t rounds = 0;
  double hit_rate = 0.0;
  uint64_t evictions = 0;
};

CrawlCost MeasureCrawl(const Table& target, const LocalStore::Options& base) {
  CrawlCost cost;
  double seconds = BestWallSeconds([&] {
    LocalStore::Options options = base;
    if (options.layout == LocalStore::Layout::kPaged) {
      options.paged_dir = FreshDir();
    }
    WebDbServer backend(target, ServerOptions());
    LocalStore store(options);
    GreedyLinkSelector selector(store);
    RetryPolicy retry((RetryPolicyConfig()));
    CrawlOptions crawl_options;
    crawl_options.saturation_records =
        static_cast<uint64_t>(0.8 * static_cast<double>(target.num_records()));
    CrawlResult result = RunCrawl(backend, selector, store, crawl_options,
                                  SeedValue(target, 0), &retry);
    cost.records = result.records;
    cost.rounds = result.rounds;
    if (options.layout == LocalStore::Layout::kPaged) {
      const PageCacheStats& stats = store.paged_cache_stats();
      cost.evictions = stats.evictions;
      uint64_t accesses = stats.hits + stats.misses;
      cost.hit_rate = accesses == 0
                          ? 0.0
                          : static_cast<double>(stats.hits) /
                                static_cast<double>(accesses);
    }
  });
  cost.wall_ms = seconds * 1000.0;
  return cost;
}

void CrawlSweep(const Table& target, BenchJson& json) {
  PrintBanner("Paged store: greedy crawl, resident set << working set",
              "n/a (systems bench)",
              "greedy-link to 80% of " +
                  std::to_string(target.num_records()) +
                  " records; paged = 512B pages x 64 frames (32 KiB "
                  "resident)");

  LocalStore::Options csr;
  CrawlCost c_csr = MeasureCrawl(target, csr);
  CrawlCost c_paged = MeasureCrawl(target, PagedOptions(512, 64));
  DEEPCRAWL_CHECK_EQ(c_csr.records, c_paged.records)
      << "layouts diverged — run the differential suite";
  DEEPCRAWL_CHECK_GT(c_paged.evictions, 0u) << "cache sized above working set";

  TablePrinter table(
      {"layout", "wall ms", "records", "rounds", "hit rate", "evictions"});
  table.AddRow({"csr", TablePrinter::FormatDouble(c_csr.wall_ms, 1),
                TablePrinter::FormatCount(c_csr.records),
                TablePrinter::FormatCount(c_csr.rounds), "-", "-"});
  table.AddRow({"paged", TablePrinter::FormatDouble(c_paged.wall_ms, 1),
                TablePrinter::FormatCount(c_paged.records),
                TablePrinter::FormatCount(c_paged.rounds),
                TablePrinter::FormatPercent(c_paged.hit_rate),
                TablePrinter::FormatCount(c_paged.evictions)});
  table.Print(std::cout);
  std::cout << "\nnote: identical records/rounds by construction — the paged\n"
               "layout is observationally invisible (DESIGN.md §14); the\n"
               "wall-clock delta is the full price of out-of-core paging.\n";

  // Gate on the paged wall-clock itself, not the csr ratio — the csr
  // crawl finishes in ~2 ms, and dividing by it amplifies scheduler
  // noise past the regression threshold.
  json.Add("paged_crawl_wall_ms", c_paged.wall_ms, "ms", false);
  json.Add("paged_crawl_hit_rate_pct", c_paged.hit_rate * 100.0, "%", true);
}

// --- experiment 3: durable checkpoint --------------------------------

void CheckpointSweep(const Table& target, BenchJson& json) {
  PrintBanner("Paged store: durable checkpoint cost",
              "n/a (systems bench)",
              "flush dirty pages + fsync + manifest after the 80% crawl");

  LocalStore::Options options = PagedOptions(4096, 256);
  WebDbServer backend(target, ServerOptions());
  LocalStore store(options);
  GreedyLinkSelector selector(store);
  RetryPolicy retry((RetryPolicyConfig()));
  CrawlOptions crawl_options;
  crawl_options.saturation_records =
      static_cast<uint64_t>(0.8 * static_cast<double>(target.num_records()));
  (void)RunCrawl(backend, selector, store, crawl_options, SeedValue(target, 0),
                 &retry);

  // First checkpoint pays for every dirty page; the second, taken with
  // nothing dirty, is the protocol floor (fsync + manifest only).
  double first_ms = BestWallSeconds(
                        [&] {
                          StatusOr<uint64_t> stamp = store.CheckpointPaged();
                          DEEPCRAWL_CHECK(stamp.ok())
                              << stamp.status().ToString();
                        },
                        /*min_reps=*/1, /*min_seconds=*/0.0) *
                    1000.0;
  double floor_ms = BestWallSeconds(
                        [&] {
                          StatusOr<uint64_t> stamp = store.CheckpointPaged();
                          DEEPCRAWL_CHECK(stamp.ok())
                              << stamp.status().ToString();
                        },
                        /*min_reps=*/3, /*min_seconds=*/0.2) *
                    1000.0;

  TablePrinter table({"checkpoint", "wall ms"});
  table.AddRow({"first (all pages dirty)",
                TablePrinter::FormatDouble(first_ms, 2)});
  table.AddRow({"steady (nothing dirty)",
                TablePrinter::FormatDouble(floor_ms, 2)});
  table.Print(std::cout);

  json.Add("paged_checkpoint_steady_ms", floor_ms, "ms", false);
}

}  // namespace
}  // namespace bench
}  // namespace deepcrawl

int main(int argc, char** argv) {
  using namespace deepcrawl;
  using namespace deepcrawl::bench;
  std::string json_path = JsonPathFromArgs(argc, argv);
  BenchJson json("paged");
  Table target = MakeTarget();
  IngestSweep(json);
  CrawlSweep(target, json);
  CheckpointSweep(target, json);
  if (!json_path.empty()) json.WriteFile(json_path);
  return 0;
}
