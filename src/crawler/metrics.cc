#include "src/crawler/metrics.h"

#include <algorithm>

#include "src/util/logging.h"

namespace deepcrawl {

void CrawlTrace::Add(uint64_t rounds, uint64_t records) {
  if (!points_.empty()) {
    DEEPCRAWL_CHECK_GE(rounds, points_.back().rounds)
        << "trace rounds must be non-decreasing";
    DEEPCRAWL_CHECK_GE(records, points_.back().records)
        << "trace records must be non-decreasing";
    // Collapse runs at the same round count to the final value.
    if (points_.back().rounds == rounds) {
      points_.back().records = records;
      return;
    }
  }
  points_.push_back(TracePoint{rounds, records});
}

void CrawlTrace::AddWave(std::span<const TracePoint> points) {
  for (const TracePoint& point : points) Add(point.rounds, point.records);
}

std::optional<uint64_t> CrawlTrace::RoundsToRecords(
    uint64_t target_records) const {
  if (target_records == 0) return 0;
  auto it = std::lower_bound(
      points_.begin(), points_.end(), target_records,
      [](const TracePoint& p, uint64_t target) { return p.records < target; });
  if (it == points_.end()) return std::nullopt;
  return it->rounds;
}

uint64_t CrawlTrace::RecordsAtRounds(uint64_t rounds) const {
  auto it = std::upper_bound(
      points_.begin(), points_.end(), rounds,
      [](uint64_t r, const TracePoint& p) { return r < p.rounds; });
  if (it == points_.begin()) return 0;
  return std::prev(it)->records;
}

}  // namespace deepcrawl
