file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_graph_tests.dir/graph_avg_test.cc.o"
  "CMakeFiles/deepcrawl_graph_tests.dir/graph_avg_test.cc.o.d"
  "CMakeFiles/deepcrawl_graph_tests.dir/graph_components_test.cc.o"
  "CMakeFiles/deepcrawl_graph_tests.dir/graph_components_test.cc.o.d"
  "CMakeFiles/deepcrawl_graph_tests.dir/graph_dominating_set_test.cc.o"
  "CMakeFiles/deepcrawl_graph_tests.dir/graph_dominating_set_test.cc.o.d"
  "CMakeFiles/deepcrawl_graph_tests.dir/graph_domset_reference_test.cc.o"
  "CMakeFiles/deepcrawl_graph_tests.dir/graph_domset_reference_test.cc.o.d"
  "CMakeFiles/deepcrawl_graph_tests.dir/graph_power_law_test.cc.o"
  "CMakeFiles/deepcrawl_graph_tests.dir/graph_power_law_test.cc.o.d"
  "CMakeFiles/deepcrawl_graph_tests.dir/graph_reachability_test.cc.o"
  "CMakeFiles/deepcrawl_graph_tests.dir/graph_reachability_test.cc.o.d"
  "CMakeFiles/deepcrawl_graph_tests.dir/graph_set_cover_test.cc.o"
  "CMakeFiles/deepcrawl_graph_tests.dir/graph_set_cover_test.cc.o.d"
  "deepcrawl_graph_tests"
  "deepcrawl_graph_tests.pdb"
  "deepcrawl_graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
