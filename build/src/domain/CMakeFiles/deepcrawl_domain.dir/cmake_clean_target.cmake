file(REMOVE_RECURSE
  "libdeepcrawl_domain.a"
)
