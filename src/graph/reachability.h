// Seed reachability: the "convergence coverage" of a crawl (§1, §4).
//
// The paper observes that "the ultimate database coverage ... is
// predetermined by the seed values and the target query interfaces":
// whatever the query selection policy, a crawler can only ever harvest
// records reachable from its seeds by alternating value -> record ->
// value hops. This module computes that fixed point exactly — the upper
// bound every crawl trace in this repository converges to — via BFS over
// the bipartite value/record incidence, without materializing the AVG.

#ifndef DEEPCRAWL_GRAPH_REACHABILITY_H_
#define DEEPCRAWL_GRAPH_REACHABILITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/index/inverted_index.h"
#include "src/relation/table.h"
#include "src/relation/types.h"

namespace deepcrawl {

struct ReachabilityReport {
  // Records obtainable from the seeds by any query sequence.
  size_t reachable_records = 0;
  double record_fraction = 0.0;
  // Distinct values that can ever enter Lto-query.
  size_t reachable_values = 0;
  // Fewest query waves needed to touch the farthest reachable record
  // (diameter-ish measure of how "deep" the database is from the seeds).
  uint32_t max_depth = 0;
  // reachable_record[r] != 0 iff record r is reachable.
  std::vector<char> reachable_record;
};

// Computes the convergence coverage of `seeds` over `table`, using
// `index` for value -> record expansion. Seed values outside the
// catalog are ignored.
ReachabilityReport ComputeReachability(const Table& table,
                                       const InvertedIndex& index,
                                       std::span<const ValueId> seeds);

// Convenience: reachability when the crawler can only retrieve the
// first `result_limit` records of any query (0 = unlimited). §5.4 notes
// that limits "reduce the connectivity of the target database"; this
// makes the effect exact: a record past every containing value's cutoff
// is unreachable no matter the policy.
ReachabilityReport ComputeReachabilityWithLimit(
    const Table& table, const InvertedIndex& index,
    std::span<const ValueId> seeds, uint32_t result_limit);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_GRAPH_REACHABILITY_H_
