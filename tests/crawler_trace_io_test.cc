#include "src/crawler/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace deepcrawl {
namespace {

TEST(TraceIoTest, SingleTraceCsv) {
  CrawlTrace trace;
  trace.Add(1, 5);
  trace.Add(3, 12);
  std::ostringstream out;
  ASSERT_TRUE(WriteTraceCsv(trace, out).ok());
  EXPECT_EQ(out.str(), "rounds,records\n1,5\n3,12\n");
}

TEST(TraceIoTest, EmptyTraceWritesHeaderOnly) {
  CrawlTrace trace;
  std::ostringstream out;
  ASSERT_TRUE(WriteTraceCsv(trace, out).ok());
  EXPECT_EQ(out.str(), "rounds,records\n");
}

TEST(TraceIoTest, ComparisonAlignsSeries) {
  CrawlTrace a, b;
  a.Add(1, 2);
  a.Add(4, 9);
  b.Add(2, 3);
  std::ostringstream out;
  ASSERT_TRUE(WriteComparisonCsv({{"greedy", &a}, {"bfs", &b}}, out).ok());
  EXPECT_EQ(out.str(),
            "rounds,greedy,bfs\n"
            "1,2,0\n"
            "2,2,3\n"
            "4,9,3\n");
}

TEST(TraceIoTest, ComparisonRejectsEmptyAndNull) {
  std::ostringstream out;
  EXPECT_EQ(WriteComparisonCsv({}, out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WriteComparisonCsv({{"x", nullptr}}, out).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace deepcrawl
