// §4.1 second domain — "if we already have some DBLP data at hand, how
// can the database crawler utilize this piece of prior knowledge when
// crawling the ACM Digital Library?"
//
// The paper evaluates domain-knowledge selection only on the movie
// domain (Figure 5); this companion experiment runs the identical
// protocol on the publications domain the paper's §4.1 motivates,
// checking that the DM > GL shape is not an artifact of one domain.

#include <iostream>

#include "bench/bench_common.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/datagen/publication_domain.h"
#include "src/domain/domain_selector.h"
#include "src/domain/domain_table.h"
#include "src/util/table_printer.h"

int main() {
  using namespace deepcrawl;
  bench::PrintBanner(
      "Generalization (§4.1): crawling ACM-DL with DBLP domain knowledge",
      "the paper motivates the DBLP -> ACM transfer but evaluates only "
      "the movie domain; same protocol, second domain",
      "synthetic publications: DBLP-like sample over 80% of the "
      "universe; ACM-like target = papers in ACM venues");

  PublicationDomainPairConfig config;
  config.universe_size = 30000;
  StatusOr<PublicationDomainPair> pair =
      GeneratePublicationDomainPair(config);
  DEEPCRAWL_CHECK(pair.ok()) << pair.status().ToString();
  Table& target = pair->target;
  std::cout << "ACM-like target: "
            << TablePrinter::FormatCount(target.num_records())
            << " papers; DBLP-like sample: "
            << TablePrinter::FormatCount(pair->sample.num_records())
            << " papers\n\n";

  DomainTable dt = DomainTable::Build(pair->sample, target.schema(),
                                      target.mutable_catalog());

  ServerOptions server_options;
  server_options.page_size = 10;
  WebDbServer server(target, server_options);

  uint64_t budget =
      static_cast<uint64_t>(0.27 * static_cast<double>(target.num_records()));
  CrawlOptions options;
  options.max_rounds = budget;

  CrawlResult result_gl, result_dm;
  {
    LocalStore store;
    GreedyLinkSelector selector(store);
    result_gl = bench::RunCrawl(server, selector, store, options,
                                bench::SeedValue(target, 3));
  }
  {
    LocalStore store;
    DomainSelector selector(store, dt, server_options.page_size);
    result_dm = bench::RunCrawl(server, selector, store, options,
                                bench::SeedValue(target, 3));
  }

  TablePrinter table({"policy", "budget", "records", "coverage"});
  auto add_row = [&](const char* name, const CrawlResult& result) {
    table.AddRow({name, TablePrinter::FormatCount(budget),
                  TablePrinter::FormatCount(result.records),
                  TablePrinter::FormatPercent(
                      static_cast<double>(result.records) /
                          static_cast<double>(target.num_records()), 1)});
  };
  add_row("domain-knowledge (DBLP table)", result_dm);
  add_row("greedy-link", result_gl);
  table.Print(std::cout);

  TablePrinter snapshots({"policy", "@25%", "@50%", "@75%", "@100% budget"});
  auto add_snapshots = [&](const char* name, const CrawlResult& result) {
    std::vector<std::string> row = {name};
    for (int quarter = 1; quarter <= 4; ++quarter) {
      uint64_t rounds = budget * quarter / 4;
      row.push_back(TablePrinter::FormatPercent(
          static_cast<double>(result.trace.RecordsAtRounds(rounds)) /
              static_cast<double>(target.num_records()), 0));
    }
    snapshots.AddRow(row);
  };
  std::cout << "\ncoverage by budget quarter:\n";
  add_snapshots("domain-knowledge", result_dm);
  add_snapshots("greedy-link", result_gl);
  snapshots.Print(std::cout);

  std::cout << "\nreading: the Figure 5 shape (DM ahead of GL throughout "
               "the budget) must transfer to the publications domain.\n";
  return 0;
}
