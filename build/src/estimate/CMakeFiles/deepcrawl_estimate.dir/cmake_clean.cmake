file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_estimate.dir/chao.cc.o"
  "CMakeFiles/deepcrawl_estimate.dir/chao.cc.o.d"
  "CMakeFiles/deepcrawl_estimate.dir/size_estimator.cc.o"
  "CMakeFiles/deepcrawl_estimate.dir/size_estimator.cc.o.d"
  "libdeepcrawl_estimate.a"
  "libdeepcrawl_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
