// Figure 6 — "Effects of Limited Result Size" (Amazon DVD).
//
// Paper setup: same target and DM(I)-style domain table as Figure 5, but
// the server's result-size limit is tightened from Amazon's generous
// 3,200 to 50 and 10 retrievable records per query. Both GL and DM lose
// productivity — about 20% at limit 50 and about 50% at limit 10 —
// because the limit cuts the effective connectivity of the database
// graph and delays hub discovery (§5.4).
//
// This run compares final coverage under scaled limits (unlimited /
// 50 / 10) for both policies within the same round budget.

#include <iostream>

#include "bench/bench_common.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/datagen/movie_domain.h"
#include "src/domain/domain_selector.h"
#include "src/domain/domain_table.h"
#include "src/util/table_printer.h"

namespace {
constexpr uint32_t kUniverseSize = 40000;
constexpr uint32_t kTargetSize = 12000;
constexpr uint64_t kBudget = 3200;
constexpr uint32_t kLimits[] = {0, 50, 10};  // 0 = unlimited (paper: 3200)
}  // namespace

int main() {
  using namespace deepcrawl;
  bench::PrintBanner(
      "Figure 6: crawling under result-size limits (Amazon DVD)",
      "GL and DM on Amazon DVD with result limits 3,200 (original), 50, "
      "10; productivity drops ~20% (limit 50) and ~50% (limit 10)",
      "synthetic movie-domain pair (universe " +
          TablePrinter::FormatCount(kUniverseSize) + ", target ~" +
          TablePrinter::FormatCount(kTargetSize) + "), budget " +
          TablePrinter::FormatCount(kBudget) + " rounds");

  MovieDomainPairConfig config;
  config.universe_size = kUniverseSize;
  config.target_size = kTargetSize;
  StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
  DEEPCRAWL_CHECK(pair.ok()) << pair.status().ToString();
  Table& target = pair->target;
  DomainTable dm = DomainTable::Build(pair->dm1, target.schema(),
                                      target.mutable_catalog());

  TablePrinter table({"policy", "result limit", "coverage@budget",
                      "vs unlimited"});
  for (const char* policy : {"greedy-link", "domain-knowledge"}) {
    double unlimited_coverage = 0.0;
    for (uint32_t limit : kLimits) {
      ServerOptions server_options;
      server_options.page_size = 10;
      server_options.result_limit = limit;
      WebDbServer server(target, server_options);
      CrawlOptions options;
      options.max_rounds = kBudget;

      LocalStore store;
      CrawlResult result;
      if (std::string(policy) == "greedy-link") {
        GreedyLinkSelector selector(store);
        result = bench::RunCrawl(server, selector, store, options,
                                 bench::SeedValue(target, 1));
      } else {
        DomainSelector selector(store, dm);
        result = bench::RunCrawl(server, selector, store, options,
                                 bench::SeedValue(target, 1));
      }
      double coverage = static_cast<double>(result.records) /
                        static_cast<double>(target.num_records());
      if (limit == 0) unlimited_coverage = coverage;
      table.AddRow(
          {policy, limit == 0 ? "unlimited" : std::to_string(limit),
           TablePrinter::FormatPercent(coverage, 1),
           unlimited_coverage > 0
               ? TablePrinter::FormatPercent(coverage / unlimited_coverage,
                                             0)
               : "-"});
    }
  }
  table.Print(std::cout);
  std::cout << "\npaper shape: both policies degrade as the limit "
               "tightens (roughly -20% at 50, -50% at 10): the limit "
               "reduces effective graph connectivity and delays hub "
               "discovery.\n";
  return 0;
}
