#include "src/datagen/publication_domain.h"

#include <gtest/gtest.h>

#include "src/crawler/crawler.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/domain/domain_selector.h"
#include "src/domain/domain_table.h"
#include "src/graph/components.h"
#include "src/server/web_db_server.h"

namespace deepcrawl {
namespace {

PublicationDomainPairConfig SmallConfig() {
  PublicationDomainPairConfig config;
  config.universe_size = 4000;
  config.seed = 33;
  return config;
}

TEST(PublicationDomainTest, SizesFollowTheConfiguredFractions) {
  StatusOr<PublicationDomainPair> pair =
      GeneratePublicationDomainPair(SmallConfig());
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  EXPECT_EQ(pair->universe.num_records(), 4000u);
  // DBLP coverage 0.8 of the universe (Bernoulli, generous tolerance).
  EXPECT_NEAR(static_cast<double>(pair->sample.num_records()), 3200.0,
              250.0);
  // ACM venues ~0.3 of venues; papers land in them per the venue zipf,
  // so the target is a substantial strict subset.
  EXPECT_GT(pair->target.num_records(), 400u);
  EXPECT_LT(pair->target.num_records(), pair->universe.num_records());
}

TEST(PublicationDomainTest, TargetSchemaHasSponsorOnly) {
  StatusOr<PublicationDomainPair> pair =
      GeneratePublicationDomainPair(SmallConfig());
  ASSERT_TRUE(pair.ok());
  EXPECT_TRUE(pair->target.schema().FindAttribute("Sponsor").ok());
  EXPECT_FALSE(pair->sample.schema().FindAttribute("Sponsor").ok());
  EXPECT_FALSE(pair->universe.schema().FindAttribute("Sponsor").ok());
}

TEST(PublicationDomainTest, DomainTableCoversMostTargetValues) {
  StatusOr<PublicationDomainPair> pair =
      GeneratePublicationDomainPair(SmallConfig());
  ASSERT_TRUE(pair.ok());
  Table& target = pair->target;
  size_t values_before = target.num_distinct_values();
  DomainTable dt = DomainTable::Build(pair->sample, target.schema(),
                                      target.mutable_catalog());
  size_t shared = 0;
  for (ValueId v = 0; v < values_before; ++v) {
    if (dt.Contains(v)) ++shared;
  }
  // DBLP indexes 80% of everything: most target values must be known.
  EXPECT_GT(static_cast<double>(shared) /
                static_cast<double>(values_before),
            0.6);
  // And DBLP contributes candidates the target never matches.
  EXPECT_GT(dt.num_entries(), shared);
}

TEST(PublicationDomainTest, DeterministicForFixedSeed) {
  StatusOr<PublicationDomainPair> a =
      GeneratePublicationDomainPair(SmallConfig());
  StatusOr<PublicationDomainPair> b =
      GeneratePublicationDomainPair(SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->target.num_records(), b->target.num_records());
  EXPECT_EQ(a->sample.num_records(), b->sample.num_records());
  EXPECT_EQ(a->universe.num_distinct_values(),
            b->universe.num_distinct_values());
}

TEST(PublicationDomainTest, InvalidConfigsRejected) {
  PublicationDomainPairConfig config = SmallConfig();
  config.universe_size = 0;
  EXPECT_FALSE(GeneratePublicationDomainPair(config).ok());
  config = SmallConfig();
  config.acm_venue_fraction = 0.0;
  EXPECT_FALSE(GeneratePublicationDomainPair(config).ok());
  config = SmallConfig();
  config.dblp_coverage = 1.5;
  EXPECT_FALSE(GeneratePublicationDomainPair(config).ok());
}

TEST(PublicationDomainTest, DomainKnowledgeBeatsGreedyOnThisDomainToo) {
  // The §4.1 transfer claim at test scale: within a tight budget the
  // DBLP-informed crawler covers more of the ACM-like target.
  StatusOr<PublicationDomainPair> pair =
      GeneratePublicationDomainPair(SmallConfig());
  ASSERT_TRUE(pair.ok());
  Table& target = pair->target;
  DomainTable dt = DomainTable::Build(pair->sample, target.schema(),
                                      target.mutable_catalog());
  ServerOptions server_options;
  WebDbServer server(target, server_options);
  CrawlOptions options;
  options.max_rounds = target.num_records() / 5;

  uint64_t records_dm, records_gl;
  {
    LocalStore store;
    DomainSelector selector(store, dt);
    server.ResetMeters();
    Crawler crawler(server, selector, store, options);
    records_dm = crawler.Run()->records;
  }
  {
    LocalStore store;
    GreedyLinkSelector selector(store);
    server.ResetMeters();
    Crawler crawler(server, selector, store, options);
    ValueId seed = 0;
    while (target.value_frequency(seed) == 0) ++seed;
    crawler.AddSeed(seed);
    records_gl = crawler.Run()->records;
  }
  EXPECT_GT(records_dm, records_gl);
}

}  // namespace
}  // namespace deepcrawl
