#include "src/estimate/size_estimator.h"

#include <algorithm>

#include "src/crawler/crawler.h"
#include "src/util/logging.h"
#include "src/util/random.h"

namespace deepcrawl {

StatusOr<double> CaptureRecaptureEstimate(std::span<const RecordId> a,
                                          std::span<const RecordId> b) {
  DEEPCRAWL_DCHECK(std::is_sorted(a.begin(), a.end()));
  DEEPCRAWL_DCHECK(std::is_sorted(b.begin(), b.end()));
  size_t overlap = 0;
  size_t j = 0;
  for (RecordId r : a) {
    while (j < b.size() && b[j] < r) ++j;
    if (j < b.size() && b[j] == r) {
      ++overlap;
      ++j;
    }
  }
  if (overlap == 0) {
    return Status::FailedPrecondition(
        "samples are disjoint; capture-recapture estimate undefined");
  }
  return static_cast<double>(a.size()) * static_cast<double>(b.size()) /
         static_cast<double>(overlap);
}

StatusOr<SizeEstimationReport> EstimateDatabaseSize(
    WebDbServer& server, const SelectorFactory& selector_factory,
    const SizeEstimationOptions& options) {
  if (options.num_crawls < 2) {
    return Status::InvalidArgument("need at least two crawls to overlap");
  }
  size_t num_values = server.table().num_distinct_values();
  if (num_values == 0) {
    return Status::FailedPrecondition("target database has no values");
  }

  Pcg32 rng(options.seed);
  SizeEstimationReport report;
  std::vector<std::vector<RecordId>> samples;
  samples.reserve(options.num_crawls);

  for (uint32_t i = 0; i < options.num_crawls; ++i) {
    LocalStore store;
    std::unique_ptr<QuerySelector> selector = selector_factory(store);
    DEEPCRAWL_CHECK(selector != nullptr) << "selector factory returned null";
    CrawlOptions crawl_options;
    crawl_options.max_rounds = options.rounds_per_crawl;
    server.ResetMeters();
    Crawler crawler(server, *selector, store, crawl_options);
    crawler.AddSeed(rng.NextBounded(static_cast<uint32_t>(num_values)));
    StatusOr<CrawlResult> result = crawler.Run();
    if (!result.ok()) return result.status();

    std::vector<RecordId> ids;
    ids.reserve(store.num_records());
    for (uint32_t slot = 0; slot < store.num_records(); ++slot) {
      ids.push_back(store.OriginalRecordId(slot));
    }
    std::sort(ids.begin(), ids.end());
    report.crawl_sizes.push_back(ids.size());
    samples.push_back(std::move(ids));
  }

  for (size_t i = 0; i < samples.size(); ++i) {
    for (size_t j = i + 1; j < samples.size(); ++j) {
      StatusOr<double> estimate =
          CaptureRecaptureEstimate(samples[i], samples[j]);
      if (estimate.ok()) {
        report.pairwise_estimates.push_back(*estimate);
      } else {
        ++report.disjoint_pairs;
      }
    }
  }
  if (report.pairwise_estimates.size() >= 2) {
    report.t_test =
        OneSampleTTest(report.pairwise_estimates, options.confidence);
  }
  return report;
}

}  // namespace deepcrawl
