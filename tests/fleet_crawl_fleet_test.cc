// CrawlFleet contract tests (src/fleet/crawl_fleet.h):
//
//   * a single-source fleet is the bare CrawlEngine, bit-identically —
//     same trace, same records, with and without faults;
//   * scheduler policies allocate turns as documented;
//   * the circuit breaker's transition accounting is exact under a
//     scripted chaos schedule, and retry-after hints floor the source's
//     next turn;
//   * the 8-source hostile-chaos acceptance scenario: every healthy
//     source reaches its coverage target, the permanently dead source is
//     reported quarantined;
//   * fleet checkpoints restore bit-identically from any turn boundary,
//     and EVERY mangled checkpoint byte is rejected with a clean Status
//     (same adversarial sweep as crawler_checkpoint_test.cc).
//
// Runs inside deepcrawl_concurrency_tests so the whole file also
// executes under ASan and TSan via tools/check.sh.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/crawler/checkpoint.h"
#include "src/crawler/crawl_engine.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/local_store.h"
#include "src/crawler/retry_policy.h"
#include "src/crawler/trace_io.h"
#include "src/datagen/canned_workloads.h"
#include "src/fleet/chaos.h"
#include "src/fleet/circuit_breaker.h"
#include "src/fleet/crawl_fleet.h"
#include "src/server/faulty_server.h"
#include "src/server/web_db_server.h"
#include "src/util/checkpoint_io.h"

namespace deepcrawl {
namespace {

// Tables are move-only, so spec sets are regenerated per fleet; the
// synthetic generator is seeded, so every call yields identical tables.
// The tiny scale keeps per-construction cost (generation + index build)
// negligible even inside the corruption sweeps.
std::vector<FleetSourceSpec> TinySpecs() {
  StatusOr<std::vector<FleetSourceSpec>> made =
      MakeFleetSourceSpecs(2, /*scale=*/0.003, /*target_coverage=*/0.0);
  DEEPCRAWL_CHECK(made.ok()) << made.status().ToString();
  return std::move(*made);
}

std::string FleetTraceCsv(const FleetResult& result) {
  std::ostringstream out;
  DEEPCRAWL_CHECK(WriteFleetTraceCsv(result, out).ok());
  return out.str();
}

// Replicates CrawlFleet::PlantSeeds for one source, so the bare-engine
// reference stacks plant the identical seed values.
ValueId FleetSeedValue(const Table& table, uint64_t fleet_seed,
                       uint32_t source_id, uint32_t j) {
  uint64_t derived = FaultyServer::DeriveSourceSeed(fleet_seed, source_id);
  uint32_t distinct = static_cast<uint32_t>(table.num_distinct_values());
  ValueId v = static_cast<ValueId>(FaultyServer::DeriveSourceSeed(derived, j) %
                                   distinct);
  while (table.value_frequency(v) == 0) {
    v = static_cast<ValueId>((v + 1) % distinct);
  }
  return v;
}

// --- single-source ≡ bare engine -------------------------------------

void ExpectSingleSourceMatchesBareEngine(FaultProfile faults) {
  const uint64_t kFleetSeed = 7;
  StatusOr<std::vector<FleetSourceSpec>> specs =
      MakeFleetSourceSpecs(1, /*scale=*/0.003, /*target_coverage=*/0.0);
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  (*specs)[0].faults = faults;

  FleetOptions options;
  options.seed = kFleetSeed;
  options.turn_rounds = 16;  // slices the crawl into many turns
  CrawlFleet fleet(std::move(*specs), options);
  StatusOr<FleetResult> fleet_result = fleet.Run();
  ASSERT_TRUE(fleet_result.ok()) << fleet_result.status().ToString();

  // The bare reference: the same table (the generator is seeded — the
  // fleet builder uses gen_seed + source_id = 1), same derived
  // fault/retry seeds, same planted seed, run in one uninterrupted shot.
  StatusOr<Table> regenerated = GenerateTable(EbayConfig(0.003, 1));
  ASSERT_TRUE(regenerated.ok());
  const Table& table = *regenerated;
  uint64_t derived = FaultyServer::DeriveSourceSeed(kFleetSeed, 0);
  WebDbServer backend(table, ServerOptions{});
  FaultyServer faulty(backend, faults, derived);
  faulty.set_keyed_faults(true);
  LocalStore store;
  GreedyLinkSelector selector(store);
  RetryPolicyConfig retry_config;
  retry_config.seed = derived;
  RetryPolicy retry(retry_config);
  CrawlOptions crawl_options;
  crawl_options.saturation_records = static_cast<uint64_t>(
      0.85 * static_cast<double>(table.num_records()));
  CrawlEngine engine(faulty, selector, store, crawl_options, EngineOptions{},
                     nullptr, &retry);
  engine.AddSeed(FleetSeedValue(table, kFleetSeed, 0, 0));
  StatusOr<CrawlResult> bare = engine.Run();
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();

  const CrawlResult& fleet_side = fleet_result->sources[0].result;
  EXPECT_EQ(fleet_side.stop_reason, bare->stop_reason);
  EXPECT_EQ(fleet_side.rounds, bare->rounds);
  EXPECT_EQ(fleet_side.queries, bare->queries);
  EXPECT_EQ(fleet_side.records, bare->records);
  EXPECT_EQ(fleet_side.resilience, bare->resilience);
  ASSERT_EQ(fleet_side.trace.points(), bare->trace.points());

  std::ostringstream fleet_csv;
  std::ostringstream bare_csv;
  ASSERT_TRUE(WriteTraceCsv(fleet_side.trace, fleet_csv).ok());
  ASSERT_TRUE(WriteTraceCsv(bare->trace, bare_csv).ok());
  EXPECT_EQ(fleet_csv.str(), bare_csv.str());
}

TEST(CrawlFleetTest, SingleSourceFleetIsBareEngineBitIdentical) {
  ExpectSingleSourceMatchesBareEngine(FaultProfile{});
}

TEST(CrawlFleetTest, SingleSourceIdentityHoldsUnderFaults) {
  FaultProfile faults;
  faults.unavailable_rate = 0.08;
  faults.timeout_rate = 0.04;
  faults.rate_limit_rate = 0.04;
  ExpectSingleSourceMatchesBareEngine(faults);
}

// --- scheduler policies ----------------------------------------------

TEST(CrawlFleetTest, SequentialDrainsSourcesInIdOrder) {
  FleetOptions options;
  options.scheduler = SchedulerPolicy::kSequential;
  options.turn_rounds = 8;
  CrawlFleet fleet(TinySpecs(), options);
  StatusOr<FleetResult> result = fleet.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Source 1 starts only after source 0 finished, so in the merged
  // trace, all of source 0's rows precede all of source 1's.
  const std::string csv = FleetTraceCsv(*result);
  size_t first_of_1 = csv.find("\n1,");
  size_t last_of_0 = csv.rfind("\n0,");
  ASSERT_NE(first_of_1, std::string::npos);
  ASSERT_NE(last_of_0, std::string::npos);
  EXPECT_LT(last_of_0, first_of_1);
  EXPECT_TRUE(result->sources[0].degradation.finished);
  EXPECT_TRUE(result->sources[1].degradation.finished);
}

TEST(CrawlFleetTest, RoundRobinAlternatesWhileBothEligible) {
  FleetOptions options;
  options.scheduler = SchedulerPolicy::kRoundRobin;
  options.turn_rounds = 8;
  options.max_total_rounds = 64;  // stop while both still have frontier
  CrawlFleet fleet(TinySpecs(), options);
  StatusOr<FleetResult> result = fleet.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(fleet.engine(0).rounds_used(), 32u);
  EXPECT_EQ(fleet.engine(1).rounds_used(), 32u);
}

TEST(CrawlFleetTest, MarginalHarvestOutrunsSequentialToFirstCoverage) {
  // With a coverage target per source, marginal-HR reaches BOTH targets
  // in no more total rounds than the naive sequential drain (it skips
  // saturated tails; equality is possible on tiny tables).
  auto run = [](SchedulerPolicy scheduler) {
    std::vector<FleetSourceSpec> specs = TinySpecs();
    for (FleetSourceSpec& spec : specs) spec.target_coverage = 0.6;
    FleetOptions options;
    options.scheduler = scheduler;
    options.turn_rounds = 8;
    CrawlFleet fleet(std::move(specs), options);
    StatusOr<FleetResult> result = fleet.Run();
    DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
    return result->merged.rounds;
  };
  EXPECT_LE(run(SchedulerPolicy::kMarginalHarvest),
            run(SchedulerPolicy::kSequential));
}

TEST(CrawlFleetTest, SchedulerPolicyNamesRoundTrip) {
  for (SchedulerPolicy policy :
       {SchedulerPolicy::kMarginalHarvest, SchedulerPolicy::kRoundRobin,
        SchedulerPolicy::kSequential}) {
    StatusOr<SchedulerPolicy> parsed =
        ParseSchedulerPolicy(SchedulerPolicyToString(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseSchedulerPolicy("lifo").ok());
}

// --- breaker accounting & adaptive politeness ------------------------

TEST(CrawlFleetTest, BreakerTransitionAccountingIsExactUnderChaos) {
  // Source 1 goes permanently dark from fleet turn 0; source 0 stays
  // healthy. With sequential scheduling... source 1 would be starved, so
  // use round-robin and watch the breaker trip, probe, and re-open with
  // exact tallies.
  std::vector<FleetSourceSpec> specs = TinySpecs();
  specs[1].num_seeds = 24;  // enough frontier to outlast the breaker
  FleetOptions options;
  options.scheduler = SchedulerPolicy::kRoundRobin;
  options.turn_rounds = 8;
  options.breaker.consecutive_failed_turns = 2;
  options.breaker.cooldown_ticks = 8;
  options.breaker.cooldown_multiplier = 2.0;
  options.breaker.max_cooldown_ticks = 64;
  options.breaker.quarantine_after_trips = 3;
  options.breaker.abandon_after_trips = 5;
  options.chaos = {{1, 0, 0, FaultAction::kUnavailable}};
  CrawlFleet fleet(std::move(specs), options);
  StatusOr<FleetResult> result = fleet.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const CircuitBreaker& breaker = fleet.breaker(1);
  const BreakerTransitions& t = breaker.transitions();
  // Exactly one closed->open trip (it never successfully closes again),
  // then probes that all fail: every probe re-opens, none closes.
  EXPECT_EQ(t.opens, 1u);
  EXPECT_EQ(t.closes, 0u);
  EXPECT_EQ(t.probes, t.reopens);
  // Abandoned at exactly the trip cap.
  EXPECT_TRUE(breaker.exhausted());
  EXPECT_EQ(t.opens + t.reopens, 5u);
  EXPECT_TRUE(breaker.quarantined());

  const SourceDegradation& dead = result->sources[1].degradation;
  EXPECT_TRUE(dead.quarantined);
  EXPECT_TRUE(dead.abandoned);
  EXPECT_FALSE(dead.finished);
  EXPECT_EQ(dead.breaker, t);
  EXPECT_EQ(dead.records_harvested, 0u);
  EXPECT_GT(dead.ticks_quarantined, 0u);
  // The healthy source was never slowed down to zero: it finished.
  EXPECT_TRUE(result->sources[0].degradation.finished);
  // The dead source's outcome is isolation, not a fleet error.
  EXPECT_TRUE(result->sources[1].error.ok());
}

TEST(CrawlFleetTest, RetryAfterHintFloorsNextTurn) {
  // A rate-limit storm on the only source: after a turn that saw 429s,
  // the source's next turn waits for the advertised hint, visible as
  // fleet idle ticks (the bucket alone would have admitted immediately).
  StatusOr<std::vector<FleetSourceSpec>> made =
      MakeFleetSourceSpecs(1, /*scale=*/0.003, /*target_coverage=*/0.0);
  ASSERT_TRUE(made.ok());
  std::vector<FleetSourceSpec> specs = std::move(*made);
  specs[0].faults.retry_after_rounds = 12;
  FleetOptions options;
  options.turn_rounds = 8;
  options.chaos = {{0, 1, 3, FaultAction::kRateLimit}};
  CrawlFleet fleet(std::move(specs), options);
  StatusOr<FleetResult> result = fleet.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ResilienceCounters& res = result->sources[0].result.resilience;
  EXPECT_GT(res.rate_limit_rejections, 0u);
  EXPECT_EQ(res.max_retry_after_hint, 12u);
  EXPECT_GE(result->idle_ticks, 12u);
  EXPECT_TRUE(result->sources[0].degradation.finished);
}

// --- the hostile-chaos acceptance scenario ---------------------------

TEST(CrawlFleetTest, HostileChaosFleetDegradesGracefully) {
  StatusOr<std::vector<FleetSourceSpec>> specs =
      MakeFleetSourceSpecs(8, /*scale=*/0.002, /*target_coverage=*/0.9);
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  for (FleetSourceSpec& spec : *specs) spec.num_seeds = 12;

  FleetOptions options;
  options.seed = 42;
  options.turn_rounds = 16;
  options.chaos = HostileChaosSchedule(8);
  // Generous requeue budget: flappers park values at the frontier tail
  // during dark windows instead of abandoning them for good.
  options.retry.max_requeues = 16;
  CrawlFleet fleet(std::move(*specs), options);
  StatusOr<FleetResult> result = fleet.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(result->sources.size(), 8u);
  ASSERT_EQ(result->merged.source_reports.size(), 8u);
  for (uint32_t i = 0; i < 8; ++i) {
    const SourceDegradation& d = result->sources[i].degradation;
    EXPECT_EQ(d.source_id, i);
    EXPECT_EQ(d, result->merged.source_reports[i]);
    if (i == 1) continue;  // the permanently dead source
    // Every healthy (or recovering) source reaches its 90% target.
    EXPECT_TRUE(d.finished) << "source " << i << " (" << d.name << ")";
    EXPECT_GE(d.records_harvested,
              static_cast<uint64_t>(
                  0.9 * static_cast<double>(fleet.spec(i).table.num_records())))
        << "source " << i;
    EXPECT_EQ(d.records_missing, 0u) << "source " << i;
  }

  // The dead source is reported quarantined, with its breaker history.
  const SourceDegradation& dead = result->sources[1].degradation;
  EXPECT_TRUE(dead.quarantined);
  EXPECT_FALSE(dead.finished);
  EXPECT_GT(dead.breaker.opens + dead.breaker.reopens, 2u);
  EXPECT_GT(dead.ticks_quarantined, 0u);
  EXPECT_GT(dead.records_missing, 0u);

  // Merged bookkeeping is consistent.
  uint64_t records = 0;
  uint64_t rounds = 0;
  for (const FleetSourceOutcome& outcome : result->sources) {
    records += outcome.result.records;
    rounds += outcome.result.rounds;
  }
  EXPECT_EQ(result->merged.records, records);
  EXPECT_EQ(result->merged.rounds, rounds);
}

// --- checkpoint/resume ------------------------------------------------

FleetOptions CheckpointFleetOptions() {
  FleetOptions options;
  options.seed = 5;
  options.turn_rounds = 8;
  options.chaos = {{1, 2, 6, FaultAction::kUnavailable},
                   {0, 4, 5, FaultAction::kRateLimit}};
  return options;
}

std::vector<FleetSourceSpec> CheckpointFleetSpecs() {
  std::vector<FleetSourceSpec> specs = TinySpecs();
  for (FleetSourceSpec& spec : specs) {
    spec.faults.unavailable_rate = 0.05;
    spec.faults.timeout_rate = 0.03;
  }
  return specs;
}

// Captures a checkpoint image at every turn boundary of a bounded run.
std::vector<std::string> ImagesAtEveryTurn(uint64_t max_rounds) {
  FleetOptions options = CheckpointFleetOptions();
  options.max_total_rounds = max_rounds;
  options.checkpoint_every_turns = 1;
  auto images = std::make_shared<std::vector<std::string>>();
  options.checkpoint_sink = [images](const CrawlFleet& fleet) -> Status {
    StatusOr<std::string> image = EncodeFleetCheckpoint(fleet);
    DEEPCRAWL_RETURN_IF_ERROR(image.status());
    images->push_back(std::move(*image));
    return Status::OK();
  };
  CrawlFleet fleet(CheckpointFleetSpecs(), options);
  StatusOr<FleetResult> result = fleet.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  return *images;
}

TEST(CrawlFleetTest, ResumeFromAnyTurnBoundaryIsBitIdentical) {
  // Reference: uninterrupted bounded run.
  CrawlFleet reference(CheckpointFleetSpecs(), CheckpointFleetOptions());
  reference.set_max_total_rounds(160);
  StatusOr<FleetResult> uninterrupted = reference.Run();
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().ToString();
  const std::string want = FleetTraceCsv(*uninterrupted);

  std::vector<std::string> images = ImagesAtEveryTurn(160);
  ASSERT_GT(images.size(), 4u);
  for (size_t i = 0; i < images.size(); ++i) {
    CrawlFleet resumed(CheckpointFleetSpecs(), CheckpointFleetOptions());
    Status loaded = DecodeFleetCheckpoint(images[i], resumed);
    ASSERT_TRUE(loaded.ok()) << "image " << i << ": " << loaded.ToString();
    resumed.set_max_total_rounds(160);
    StatusOr<FleetResult> cont = resumed.Run();
    ASSERT_TRUE(cont.ok()) << cont.status().ToString();
    EXPECT_EQ(FleetTraceCsv(*cont), want) << "resumed from image " << i;
    EXPECT_EQ(cont->merged.records, uninterrupted->merged.records);
    EXPECT_EQ(cont->turns, uninterrupted->turns);
    EXPECT_EQ(cont->idle_ticks, uninterrupted->idle_ticks);
    for (uint32_t s = 0; s < resumed.num_sources(); ++s) {
      EXPECT_EQ(resumed.breaker(s).transitions(),
                reference.breaker(s).transitions())
          << "image " << i << " source " << s;
    }
  }
}

TEST(CrawlFleetTest, SaveLoadFileRoundTrip) {
  std::vector<std::string> images = ImagesAtEveryTurn(80);
  ASSERT_FALSE(images.empty());
  std::string path = testing::TempDir() + "/deepcrawl_fleet_ckpt.bin";

  CrawlFleet saved(CheckpointFleetSpecs(), CheckpointFleetOptions());
  saved.set_max_total_rounds(80);
  StatusOr<FleetResult> partial = saved.Run();
  ASSERT_TRUE(partial.ok());
  ASSERT_TRUE(SaveFleetCheckpoint(saved, path).ok());

  CrawlFleet resumed(CheckpointFleetSpecs(), CheckpointFleetOptions());
  ASSERT_TRUE(LoadFleetCheckpoint(path, resumed).ok());
  EXPECT_EQ(resumed.total_rounds(), saved.total_rounds());
  EXPECT_EQ(resumed.total_records(), saved.total_records());
  EXPECT_EQ(resumed.turns_completed(), saved.turns_completed());
  EXPECT_EQ(resumed.clock(), saved.clock());
  std::remove(path.c_str());
}

TEST(CrawlFleetTest, RestoreRequiresFreshFleet) {
  std::vector<std::string> images = ImagesAtEveryTurn(80);
  ASSERT_FALSE(images.empty());
  CrawlFleet used(CheckpointFleetSpecs(), CheckpointFleetOptions());
  used.set_max_total_rounds(24);
  ASSERT_TRUE(used.Run().ok());
  Status status = DecodeFleetCheckpoint(images.back(), used);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(CrawlFleetTest, ConfigMismatchIsCleanError) {
  std::vector<std::string> images = ImagesAtEveryTurn(80);
  ASSERT_FALSE(images.empty());
  const std::string& image = images.back();

  {  // different scheduler
    FleetOptions options = CheckpointFleetOptions();
    options.scheduler = SchedulerPolicy::kRoundRobin;
    CrawlFleet fleet(CheckpointFleetSpecs(), options);
    EXPECT_FALSE(DecodeFleetCheckpoint(image, fleet).ok());
  }
  {  // different chaos schedule
    FleetOptions options = CheckpointFleetOptions();
    options.chaos[0].end_turn += 1;
    CrawlFleet fleet(CheckpointFleetSpecs(), options);
    EXPECT_FALSE(DecodeFleetCheckpoint(image, fleet).ok());
  }
  {  // different source count
    FleetOptions options = CheckpointFleetOptions();
    std::vector<FleetSourceSpec> specs = CheckpointFleetSpecs();
    specs.pop_back();
    CrawlFleet fleet(std::move(specs), options);
    EXPECT_FALSE(DecodeFleetCheckpoint(image, fleet).ok());
  }
  {  // different source name (order is part of the contract)
    FleetOptions options = CheckpointFleetOptions();
    std::vector<FleetSourceSpec> specs = CheckpointFleetSpecs();
    std::swap(specs[0], specs[1]);
    CrawlFleet fleet(std::move(specs), options);
    Status status = DecodeFleetCheckpoint(image, fleet);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("source"), std::string::npos);
  }
}

// --- adversarial-input sweeps (crawler_checkpoint_test.cc idiom) -----

std::string SmallFleetImage() {
  static const std::string* image = [] {
    FleetOptions options = CheckpointFleetOptions();
    options.max_total_rounds = 48;
    CrawlFleet fleet(CheckpointFleetSpecs(), options);
    StatusOr<FleetResult> partial = fleet.Run();
    DEEPCRAWL_CHECK(partial.ok()) << partial.status().ToString();
    StatusOr<std::string> encoded = EncodeFleetCheckpoint(fleet);
    DEEPCRAWL_CHECK(encoded.ok()) << encoded.status().ToString();
    return new std::string(std::move(*encoded));
  }();
  return *image;
}

Status TryDecodeFleet(const std::string& image) {
  // Framing rejects (bad magic/version/size/checksum) need no fleet;
  // constructing one per probe would dominate the sweeps below.
  StatusOr<std::string_view> payload =
      UnframeCheckpoint(image, kFleetCheckpointVersion);
  if (!payload.ok()) return payload.status();
  CrawlFleet fleet(CheckpointFleetSpecs(), CheckpointFleetOptions());
  return DecodeFleetCheckpoint(image, fleet);
}

TEST(CrawlFleetTest, EveryCheckpointByteFlipIsRejected) {
  std::string image = SmallFleetImage();
  ASSERT_GT(image.size(), 24u);
  for (size_t i = 0; i < image.size(); ++i) {
    std::string mangled = image;
    mangled[i] = static_cast<char>(mangled[i] ^ 0xFF);
    Status status = TryDecodeFleet(mangled);
    ASSERT_FALSE(status.ok()) << "flip at byte " << i << " was accepted";
  }
}

TEST(CrawlFleetTest, CheckpointTruncationsAndTrailersAreRejected) {
  std::string image = SmallFleetImage();
  for (size_t len = 0; len < image.size(); ++len) {
    ASSERT_FALSE(TryDecodeFleet(image.substr(0, len)).ok())
        << "truncation to " << len << " was accepted";
  }
  EXPECT_FALSE(TryDecodeFleet(image + "junk").ok());
}

TEST(CrawlFleetTest, ForgedChecksumPayloadFlipsNeverCrash) {
  std::string image = SmallFleetImage();
  StatusOr<std::string_view> payload =
      UnframeCheckpoint(image, kFleetCheckpointVersion);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  size_t step = payload->size() / 4096 + 1;
  size_t probed = 0;
  size_t rejected = 0;
  for (size_t i = 0; i < payload->size(); i += step) {
    std::string mutated(*payload);
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    std::string reframed = FrameCheckpoint(mutated, kFleetCheckpointVersion);
    ++probed;
    if (!TryDecodeFleet(reframed).ok()) ++rejected;
  }
  // Flips in a fingerprint field, marker, count, or range-checked value
  // are caught; flips in bulk engine payload (record ids, frequencies)
  // decode as different-but-valid data — that residue is exactly what
  // the frame checksum covers. The contract here is no crash plus a
  // still-substantial structural-rejection rate.
  EXPECT_GT(rejected, probed / 3);

  for (size_t len = 0; len < payload->size(); len += step * 7) {
    std::string reframed =
        FrameCheckpoint(payload->substr(0, len), kFleetCheckpointVersion);
    ASSERT_FALSE(TryDecodeFleet(reframed).ok())
        << "reframed truncation to " << len << " was accepted";
  }
}

TEST(CrawlFleetTest, VersionMismatchIsRejected) {
  std::string image = SmallFleetImage();
  uint32_t bogus = kFleetCheckpointVersion + 1;
  for (int b = 0; b < 4; ++b) {
    image[4 + b] = static_cast<char>((bogus >> (8 * b)) & 0xFF);
  }
  Status status = TryDecodeFleet(image);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version"), std::string::npos)
      << status.ToString();
}

// An engine checkpoint is never accepted as a fleet checkpoint: the two
// live in different version namespaces.
TEST(CrawlFleetTest, EngineCheckpointVersionIsRejected) {
  std::string image = SmallFleetImage();
  for (int b = 0; b < 4; ++b) {
    image[4 + b] =
        static_cast<char>((kCrawlCheckpointVersion >> (8 * b)) & 0xFF);
  }
  EXPECT_FALSE(TryDecodeFleet(image).ok());
}

// --- chaos schedule parsing ------------------------------------------

TEST(CrawlFleetTest, ChaosSpecParses) {
  StatusOr<ChaosSchedule> parsed =
      ParseChaosSchedule("dead:1@6;ratelimit:2,3@10-20", 4);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0],
            (ChaosEvent{1, 6, 0, FaultAction::kUnavailable}));
  EXPECT_EQ((*parsed)[1], (ChaosEvent{2, 10, 20, FaultAction::kRateLimit}));
  EXPECT_EQ((*parsed)[2], (ChaosEvent{3, 10, 20, FaultAction::kRateLimit}));

  EXPECT_TRUE(ParseChaosSchedule("", 1)->empty());
  EXPECT_FALSE(ParseChaosSchedule("dead:9@0", 4).ok());   // bad source
  EXPECT_FALSE(ParseChaosSchedule("dead:0@9-3", 4).ok());  // bad window
  EXPECT_FALSE(ParseChaosSchedule("meteor:0@0", 4).ok());  // bad kind
  EXPECT_FALSE(ParseChaosSchedule("dead:0", 4).ok());      // no window
}

TEST(CrawlFleetTest, ForcedActionLaterEventsOverride) {
  ChaosSchedule schedule = {{0, 0, 10, FaultAction::kUnavailable},
                            {0, 5, 8, FaultAction::kRateLimit}};
  EXPECT_EQ(ForcedActionAt(schedule, 0, 4), FaultAction::kUnavailable);
  EXPECT_EQ(ForcedActionAt(schedule, 0, 6), FaultAction::kRateLimit);
  EXPECT_EQ(ForcedActionAt(schedule, 0, 9), FaultAction::kUnavailable);
  EXPECT_EQ(ForcedActionAt(schedule, 0, 10), std::nullopt);
  EXPECT_EQ(ForcedActionAt(schedule, 1, 4), std::nullopt);
}

}  // namespace
}  // namespace deepcrawl
