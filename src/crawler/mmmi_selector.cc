#include "src/crawler/mmmi_selector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "src/util/logging.h"

namespace deepcrawl {

MmmiSelector::MmmiSelector(const LocalStore& store, MmmiOptions options)
    : GreedyLinkSelector(store), options_(options) {
  DEEPCRAWL_CHECK_GT(options_.batch_size, 0u);
}

void MmmiSelector::OnQueryCompleted(const QueryOutcome& outcome) {
  ValueId v = outcome.value;
  if (v >= queried_bitmap_.size()) {
    queried_bitmap_.resize(static_cast<size_t>(v) + 1, 0);
  }
  queried_bitmap_[v] = 1;
}

MmmiSelector::Dependency MmmiSelector::ComputeDependency(ValueId q) const {
  const LocalStore& db = store();
  Dependency result{-std::numeric_limits<double>::infinity(), 0,
                    -std::numeric_limits<double>::infinity()};
  double n = static_cast<double>(db.num_records());
  if (n == 0) return result;
  double freq_q = static_cast<double>(db.LocalFrequency(q));
  if (freq_q == 0) return result;

  // Count co-occurrences with issued queries by scanning q's local
  // postings once.
  std::unordered_map<ValueId, uint32_t> co_counts;
  for (uint32_t slot : db.LocalPostings(q)) {
    for (ValueId u : db.RecordValues(slot)) {
      if (u != q && u < queried_bitmap_.size() && queried_bitmap_[u]) {
        ++co_counts[u];
      }
    }
  }
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (const auto& [u, co] : co_counts) {
    double freq_u = static_cast<double>(db.LocalFrequency(u));
    // ln( P(q,u) / (P(q) P(u)) ) = ln( co * n / (freq_q * freq_u) ).
    double pmi = std::log(static_cast<double>(co) * n / (freq_q * freq_u));
    result.max_pmi = std::max(result.max_pmi, pmi);
    result.max_co = std::max(result.max_co, co);
    weighted_sum += static_cast<double>(co) * pmi;
    weight_total += static_cast<double>(co);
  }
  if (weight_total > 0.0) {
    result.weighted_pmi = weighted_sum / weight_total;
  }
  return result;
}

double MmmiSelector::DependencyScore(ValueId q) const {
  return ComputeDependency(q).max_pmi;
}

void MmmiSelector::RecomputeBatch() {
  std::vector<ValueId> candidates = PendingValues();
  if (candidates.empty()) return;

  struct Scored {
    double dependency;
    uint64_t degree;
    double combined;  // degree * exp(-dependency), for kDegreeDiscount
    ValueId value;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (ValueId v : candidates) {
    Dependency dep = ComputeDependency(v);
    double s = dep.max_pmi;
    uint64_t degree = store().LocalDegree(v);
    double combined;
    if (options_.ranking == MmmiRanking::kResidualFrequency) {
      // Local records not explained by the strongest single dependency,
      // i.e. the predicted undrained mass behind this candidate.
      combined = static_cast<double>(store().LocalFrequency(v)) -
                 static_cast<double>(dep.max_co) +
                 1e-6 * static_cast<double>(degree);
    } else if (options_.ranking == MmmiRanking::kWeightedDependency) {
      double discount =
          std::exp(std::clamp(-dep.weighted_pmi, -60.0, 60.0));
      combined =
          (static_cast<double>(store().LocalFrequency(v)) + 1.0) * discount;
    } else {
      // exp(-s) with s = -inf (no co-occurrence with any issued query)
      // gives +inf: an uncorrelated candidate outranks everything of
      // similar degree. Clamp to keep the arithmetic finite.
      double discount = std::exp(std::clamp(-s, -60.0, 60.0));
      double magnitude =
          static_cast<double>(store().LocalFrequency(v)) + 1.0;
      combined = magnitude * discount;
    }
    scored.push_back(Scored{s, degree, combined, v});
  }
  if (options_.ranking == MmmiRanking::kPureDependency) {
    // Ascending dependency (least-correlated first); among equals prefer
    // the better-connected value (the greedy-link signal), then smaller
    // id for determinism.
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                if (a.dependency != b.dependency) {
                  return a.dependency < b.dependency;
                }
                if (a.degree != b.degree) return a.degree > b.degree;
                return a.value < b.value;
              });
  } else {
    // Dependency-discounted popularity, best first.
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                if (a.combined != b.combined) return a.combined > b.combined;
                return a.value < b.value;
              });
  }
  size_t take = std::min<size_t>(options_.batch_size, scored.size());
  batch_queue_.clear();
  for (size_t i = 0; i < take; ++i) {
    batch_queue_.push_back(scored[i].value);
  }
}

ValueId MmmiSelector::SelectNext() {
  if (!saturated_) return GreedyLinkSelector::SelectNext();
  for (;;) {
    if (batch_queue_.empty()) {
      RecomputeBatch();
      if (batch_queue_.empty()) return kInvalidValueId;
    }
    ValueId v = batch_queue_.front();
    batch_queue_.pop_front();
    if (!IsPending(v)) continue;  // consumed by an earlier pop
    MarkNotPending(v);
    return v;
  }
}

}  // namespace deepcrawl
