#include "src/datagen/canned_workloads.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace deepcrawl {

namespace {

uint32_t Scaled(double scale, uint32_t paper_value, uint32_t floor_value) {
  double scaled = std::round(scale * static_cast<double>(paper_value));
  return std::max(floor_value, static_cast<uint32_t>(scaled));
}

void CheckScale(double scale) {
  DEEPCRAWL_CHECK_GT(scale, 0.0) << "scale must be positive";
  DEEPCRAWL_CHECK_LE(scale, 1.0) << "scale must not exceed 1";
}

}  // namespace

SyntheticDbConfig EbayConfig(double scale, uint64_t seed) {
  CheckScale(scale);
  SyntheticDbConfig config;
  config.name = "ebay";
  config.num_records = Scaled(scale, 20000, 200);
  config.seed = seed;
  // Pool sizes are calibrated so the distinct-value count matches the
  // paper's Table 2 ratio (eBay: 22,950 distinct values over 20,000
  // records — most values are rare, average frequency ~3.5), which is
  // what makes the §3.3 marginal phase dependency-dominated.
  config.attributes = {
      // Categories form a shallow hub layer: few values, heavy reuse.
      // Sellers list inside their niche of categories (shared record
      // community), producing the §3.3 cross-attribute dependency.
      {.name = "Category",
       .num_distinct = Scaled(scale, 1200, 24),
       .zipf_exponent = 1.05,
       .presence = 0.85,
       .community_bias = 0.75,
       .num_communities = Scaled(scale, 60, 4)},
      {.name = "Seller",
       .num_distinct = Scaled(scale, 12000, 120),
       .zipf_exponent = 0.75,
       .presence = 1.0,
       .community_bias = 0.75,
       .num_communities = Scaled(scale, 300, 6)},
      {.name = "Location",
       .num_distinct = Scaled(scale, 400, 12),
       .zipf_exponent = 0.95,
       .presence = 0.35,
       .community_bias = 0.5,
       .num_communities = Scaled(scale, 40, 4)},
      {.name = "Price",
       .num_distinct = Scaled(scale, 8000, 80),
       .zipf_exponent = 0.45,
       .presence = 0.55},
      // Store names are a near-duplicate of sellers (a seller has one
      // storefront; a few sellers share one): the paper's canonical
      // "strongly dependent value" whose high degree fools plain greedy
      // selection after its seller was already queried (§3.3).
      {.name = "Store", .presence = 0.8, .derived_from = 1, .derive_group = 2},
  };
  return config;
}

SyntheticDbConfig AcmDlConfig(double scale, uint64_t seed) {
  CheckScale(scale);
  SyntheticDbConfig config;
  config.name = "acm-dl";
  config.num_records = Scaled(scale, 150000, 300);
  config.seed = seed;
  config.attributes = {
      {.name = "Title", .unique_per_record = true},
      {.name = "Venue",
       .num_distinct = Scaled(scale, 800, 16),
       .zipf_exponent = 1.0,
       .presence = 0.95,
       .community_bias = 0.6,
       .num_communities = Scaled(scale, 100, 4)},
      {.name = "Author",
       .num_distinct = Scaled(scale, 120000, 240),
       .zipf_exponent = 0.85,
       .min_per_record = 1,
       .max_per_record = 4,
       .community_bias = 0.8,
       .num_communities = Scaled(scale, 8000, 16)},
      {.name = "Keyword",
       .num_distinct = Scaled(scale, 6000, 60),
       .zipf_exponent = 1.1,
       .min_per_record = 1,
       .max_per_record = 3,
       .presence = 0.7},
  };
  return config;
}

SyntheticDbConfig DblpConfig(double scale, uint64_t seed) {
  CheckScale(scale);
  SyntheticDbConfig config;
  config.name = "dblp";
  config.num_records = Scaled(scale, 500000, 500);
  config.seed = seed;
  config.attributes = {
      {.name = "Title", .unique_per_record = true},
      {.name = "Venue",
       .num_distinct = Scaled(scale, 1500, 30),
       .zipf_exponent = 1.0,
       .presence = 0.9,
       .community_bias = 0.6,
       .num_communities = Scaled(scale, 180, 4)},
      {.name = "Author",
       .num_distinct = Scaled(scale, 400000, 800),
       .zipf_exponent = 0.9,
       .min_per_record = 1,
       .max_per_record = 5,
       .community_bias = 0.8,
       .num_communities = Scaled(scale, 25000, 50)},
      {.name = "Volume",
       .num_distinct = Scaled(scale, 120, 10),
       .zipf_exponent = 0.5,
       .presence = 0.5},
  };
  return config;
}

SyntheticDbConfig ImdbConfig(double scale, uint64_t seed) {
  CheckScale(scale);
  SyntheticDbConfig config;
  config.name = "imdb";
  config.num_records = Scaled(scale, 400000, 400);
  config.seed = seed;
  config.attributes = {
      {.name = "Title", .unique_per_record = true},
      // Casts cluster strongly: actors work within national/genre
      // communities, the paper's canonical dependency example.
      {.name = "Actor",
       .num_distinct = Scaled(scale, 500000, 1000),
       .zipf_exponent = 0.9,
       .min_per_record = 2,
       .max_per_record = 6,
       .community_bias = 0.75,
       .num_communities = Scaled(scale, 20000, 40)},
      {.name = "Director",
       .num_distinct = Scaled(scale, 60000, 120),
       .zipf_exponent = 0.9,
       .presence = 0.9,
       .community_bias = 0.7,
       .num_communities = Scaled(scale, 8000, 24)},
      {.name = "Language",
       .num_distinct = Scaled(scale, 150, 8),
       .zipf_exponent = 1.2,
       .presence = 0.6},
      {.name = "Company",
       .num_distinct = Scaled(scale, 30000, 60),
       .zipf_exponent = 1.0,
       .presence = 0.7,
       .community_bias = 0.5,
       .num_communities = Scaled(scale, 2000, 12)},
  };
  return config;
}

std::vector<SyntheticDbConfig> AllControlledConfigs(double scale) {
  return {EbayConfig(scale), AcmDlConfig(scale), DblpConfig(scale),
          ImdbConfig(scale)};
}

}  // namespace deepcrawl
