// Corruption and contract tests for the crawl checkpoint layer
// (src/crawler/checkpoint.h): a checkpoint file round-trips exactly,
// and EVERY mangled input — any flipped byte, any truncation, a wrong
// version, a mismatched stack — is rejected with a clean Status, never
// a crash, CHECK-abort, or silent partial load. This suite runs inside
// deepcrawl_concurrency_tests so the sweep also executes under ASan and
// TSan via tools/check.sh.
//
// Bit-identity of checkpoint + resume (across selectors, fault
// profiles, and executors) is proven by the sweep in
// tests/crawler_parallel_differential_test.cc; this file owns the
// adversarial-input side.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/crawler/checkpoint.h"
#include "src/crawler/crawl_engine.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/local_store.h"
#include "src/crawler/mmmi_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/crawler/oracle_selector.h"
#include "src/crawler/retry_policy.h"
#include "src/datagen/movie_domain.h"
#include "src/server/faulty_server.h"
#include "src/server/web_db_server.h"
#include "src/util/checkpoint_io.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

constexpr uint64_t kFaultSeed = 17;

// A small target keeps checkpoint images to a few KB, so the
// every-byte-flip sweep below stays fast.
const Table& CheckpointTarget() {
  static const Table* table = [] {
    MovieDomainPairConfig config;
    config.universe_size = 500;
    config.target_size = 120;
    config.seed = 11;
    StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
    DEEPCRAWL_CHECK(pair.ok()) << pair.status().ToString();
    return new Table(std::move(pair->target));
  }();
  return *table;
}

ValueId FirstQueriableSeed(const Table& table) {
  for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
    if (table.value_frequency(v) > 0) return v;
  }
  ADD_FAILURE() << "table has no queriable value";
  return kInvalidValueId;
}

// One shared backend for the whole suite: WebDbServer construction
// builds the full inverted index, far too slow to repeat per byte flip
// in the corruption sweeps. The server is stateless apart from its
// meters (which nothing here compares), so sharing never perturbs a
// crawl's output; every stack below still gets its own fault proxy,
// store, selector, and engine.
WebDbServer& SharedBackend() {
  static WebDbServer* server =
      new WebDbServer(CheckpointTarget(), ServerOptions());
  return *server;
}

// One complete crawl stack whose pieces live long enough to restore a
// checkpoint into and run to completion.
struct Stack {
  explicit Stack(const std::string& policy, bool with_faults = false,
                 uint32_t batch = 1)
      : backend(SharedBackend()) {
    QueryInterface* server_ptr = &backend;
    if (with_faults) {
      FaultProfile profile;
      profile.unavailable_rate = 0.05;
      profile.timeout_rate = 0.03;
      faulty.emplace(backend, profile, kFaultSeed);
      faulty->set_keyed_faults(true);
      server_ptr = &*faulty;
    }
    if (policy == "greedy") {
      selector = std::make_unique<GreedyLinkSelector>(store);
    } else if (policy == "bfs") {
      selector = std::make_unique<BfsSelector>();
    } else if (policy == "mmmi") {
      selector = std::make_unique<MmmiSelector>(store);
    } else if (policy == "oracle") {
      selector = std::make_unique<OracleSelector>(store, backend.index(),
                                                  ServerOptions().page_size,
                                                  ServerOptions().result_limit);
    } else {
      ADD_FAILURE() << "unknown policy " << policy;
    }
    retry.emplace(RetryPolicyConfig());
    EngineOptions engine_options;
    engine_options.batch = batch;
    engine.emplace(*server_ptr, *selector, store, CrawlOptions{},
                   engine_options, nullptr,
                   with_faults ? &*retry : nullptr);
  }

  FaultyServer* faulty_ptr() { return faulty ? &*faulty : nullptr; }

  WebDbServer& backend;
  std::optional<FaultyServer> faulty;
  LocalStore store;
  std::unique_ptr<QuerySelector> selector;
  std::optional<RetryPolicy> retry;
  std::optional<CrawlEngine> engine;
};

// Crawls `rounds` rounds and returns a checkpoint image of the
// mid-crawl state (non-trivial store, frontier, heap, clock, trace).
std::string MidCrawlImage(const std::string& policy, bool with_faults) {
  Stack stack(policy, with_faults);
  stack.engine->AddSeed(FirstQueriableSeed(CheckpointTarget()));
  stack.engine->set_max_rounds(40);
  StatusOr<CrawlResult> partial = stack.engine->Run();
  DEEPCRAWL_CHECK(partial.ok()) << partial.status().ToString();
  StatusOr<std::string> image =
      EncodeCrawlCheckpoint(*stack.engine, stack.faulty_ptr());
  DEEPCRAWL_CHECK(image.ok()) << image.status().ToString();
  return *image;
}

// Decodes `image` into a fresh stack; returns the decode status. Never
// crashes regardless of input (the property under test).
Status TryDecode(const std::string& image, const std::string& policy,
                 bool with_faults) {
  Stack stack(policy, with_faults);
  return DecodeCrawlCheckpoint(image, *stack.engine, stack.faulty_ptr());
}

TEST(CrawlCheckpointTest, RoundTripContinuesToSameResult) {
  // Reference: one uninterrupted crawl to frontier exhaustion.
  Stack reference("greedy", /*with_faults=*/true);
  reference.engine->AddSeed(FirstQueriableSeed(CheckpointTarget()));
  StatusOr<CrawlResult> full = reference.engine->Run();
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  // Interrupted: crawl 40 rounds, checkpoint, restore, continue.
  std::string image = MidCrawlImage("greedy", /*with_faults=*/true);
  Stack resumed("greedy", /*with_faults=*/true);
  ASSERT_TRUE(DecodeCrawlCheckpoint(image, *resumed.engine,
                                    resumed.faulty_ptr())
                  .ok());
  resumed.engine->set_max_rounds(0);
  StatusOr<CrawlResult> cont = resumed.engine->Run();
  ASSERT_TRUE(cont.ok()) << cont.status().ToString();

  EXPECT_EQ(full->stop_reason, cont->stop_reason);
  EXPECT_EQ(full->rounds, cont->rounds);
  EXPECT_EQ(full->queries, cont->queries);
  EXPECT_EQ(full->records, cont->records);
  EXPECT_EQ(full->trace.points(), cont->trace.points());
  EXPECT_EQ(full->resilience, cont->resilience);
  ASSERT_EQ(reference.store.num_records(), resumed.store.num_records());
  for (uint32_t slot = 0; slot < reference.store.num_records(); ++slot) {
    ASSERT_EQ(reference.store.OriginalRecordId(slot),
              resumed.store.OriginalRecordId(slot));
  }
}

TEST(CrawlCheckpointTest, SaveLoadFileRoundTrip) {
  std::string image = MidCrawlImage("greedy", /*with_faults=*/false);
  std::string path = testing::TempDir() + "/deepcrawl_ckpt_roundtrip.bin";

  Stack source("greedy");
  source.engine->AddSeed(FirstQueriableSeed(CheckpointTarget()));
  source.engine->set_max_rounds(40);
  ASSERT_TRUE(source.engine->Run().ok());
  ASSERT_TRUE(
      SaveCrawlCheckpoint(*source.engine, nullptr, path).ok());

  Stack resumed("greedy");
  EXPECT_TRUE(
      LoadCrawlCheckpoint(path, *resumed.engine, nullptr).ok());
  EXPECT_EQ(resumed.engine->rounds_used(), source.engine->rounds_used());
  EXPECT_EQ(resumed.store.num_records(), source.store.num_records());
  std::remove(path.c_str());
}

TEST(CrawlCheckpointTest, MissingFileIsCleanError) {
  Stack stack("greedy");
  Status status = LoadCrawlCheckpoint(
      testing::TempDir() + "/deepcrawl_ckpt_does_not_exist.bin",
      *stack.engine, nullptr);
  EXPECT_FALSE(status.ok());
}

// Every single-byte flip anywhere in the image — header, payload, or
// checksum — must be rejected: header flips break the magic/version/
// size checks, payload flips break the checksum, checksum flips break
// the comparison. None may crash or load.
TEST(CrawlCheckpointTest, EveryByteFlipIsRejected) {
  std::string image = MidCrawlImage("greedy", /*with_faults=*/true);
  ASSERT_GT(image.size(), 24u);
  for (size_t i = 0; i < image.size(); ++i) {
    std::string mangled = image;
    mangled[i] = static_cast<char>(mangled[i] ^ 0xFF);
    Status status = TryDecode(mangled, "greedy", /*with_faults=*/true);
    ASSERT_FALSE(status.ok()) << "flip at byte " << i << " was accepted";
  }
}

// Every truncation must be rejected (the frame records the payload
// size), as must appended trailing garbage.
TEST(CrawlCheckpointTest, TruncationsAndTrailersAreRejected) {
  std::string image = MidCrawlImage("greedy", /*with_faults=*/false);
  for (size_t len = 0; len < image.size(); ++len) {
    Status status =
        TryDecode(image.substr(0, len), "greedy", /*with_faults=*/false);
    ASSERT_FALSE(status.ok()) << "truncation to " << len << " was accepted";
  }
  Status extended =
      TryDecode(image + "junk", "greedy", /*with_faults=*/false);
  EXPECT_FALSE(extended.ok());
}

// An attacker (or disk corruption) that also fixes up the checksum can
// still only produce a clean error or a valid load — never a crash,
// oversized allocation, or CHECK-abort. Reframes every single-byte flip
// of the payload with a correct checksum and decodes it; ASan/TSan keep
// this honest.
TEST(CrawlCheckpointTest, ForgedChecksumPayloadFlipsNeverCrash) {
  std::string image = MidCrawlImage("mmmi", /*with_faults=*/true);
  StatusOr<std::string_view> payload =
      UnframeCheckpoint(image, kCrawlCheckpointVersion);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  // Each probe reframes (checksums) the whole payload, so a full
  // every-byte sweep is quadratic; cap the probe count instead. The
  // stride is coprime-ish with the section layout, so probes land in
  // every section.
  size_t step = payload->size() / 4096 + 1;
  size_t probed = 0;
  size_t rejected = 0;
  for (size_t i = 0; i < payload->size(); i += step) {
    std::string mutated(*payload);
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    std::string reframed =
        FrameCheckpoint(mutated, kCrawlCheckpointVersion);
    ++probed;
    if (!TryDecode(reframed, "mmmi", /*with_faults=*/true).ok()) ++rejected;
  }
  // Most flips hit a marker, count, or range check. (A few may land in
  // redundant counters and decode "successfully"; that is acceptable —
  // the contract is no crash, not perfect forgery detection.)
  EXPECT_GT(rejected, probed / 2);

  // Truncated-but-reframed payloads always lose the END marker.
  for (size_t len = 0; len < payload->size(); len += step * 7) {
    std::string reframed = FrameCheckpoint(payload->substr(0, len),
                                           kCrawlCheckpointVersion);
    ASSERT_FALSE(TryDecode(reframed, "mmmi", /*with_faults=*/true).ok())
        << "reframed truncation to " << len << " was accepted";
  }
}

TEST(CrawlCheckpointTest, VersionMismatchNamesBothVersions) {
  std::string image = MidCrawlImage("greedy", /*with_faults=*/false);
  // Patch the u32 version field at offset 4 (little-endian).
  uint32_t bogus = kCrawlCheckpointVersion + 1;
  for (int b = 0; b < 4; ++b) {
    image[4 + b] = static_cast<char>((bogus >> (8 * b)) & 0xFF);
  }
  Status status = TryDecode(image, "greedy", /*with_faults=*/false);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version"), std::string::npos)
      << status.ToString();
}

TEST(CrawlCheckpointTest, SelectorPolicyMismatchIsCleanError) {
  std::string image = MidCrawlImage("greedy", /*with_faults=*/false);
  Status status = TryDecode(image, "bfs", /*with_faults=*/false);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("greedy"), std::string::npos)
      << status.ToString();
}

TEST(CrawlCheckpointTest, BatchMismatchIsCleanError) {
  std::string image = MidCrawlImage("greedy", /*with_faults=*/false);
  Stack stack("greedy", /*with_faults=*/false, /*batch=*/4);
  Status status = DecodeCrawlCheckpoint(image, *stack.engine, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("batch"), std::string::npos)
      << status.ToString();
}

TEST(CrawlCheckpointTest, FaultProxyPresenceMustMatch) {
  std::string with = MidCrawlImage("greedy", /*with_faults=*/true);
  std::string without = MidCrawlImage("greedy", /*with_faults=*/false);
  EXPECT_FALSE(TryDecode(with, "greedy", /*with_faults=*/false).ok());
  EXPECT_FALSE(TryDecode(without, "greedy", /*with_faults=*/true).ok());
}

TEST(CrawlCheckpointTest, RestoreRequiresFreshEngine) {
  std::string image = MidCrawlImage("greedy", /*with_faults=*/false);
  Stack stack("greedy");
  stack.engine->AddSeed(FirstQueriableSeed(CheckpointTarget()));
  stack.engine->set_max_rounds(5);
  ASSERT_TRUE(stack.engine->Run().ok());
  Status status = DecodeCrawlCheckpoint(image, *stack.engine, nullptr);
  ASSERT_FALSE(status.ok());
}

// Selectors outside the checkpointable set (oracle, domain) must reject
// encoding with a clean error, not a crash or a silent partial file.
TEST(CrawlCheckpointTest, OracleSelectorRejectsCheckpointing) {
  Stack stack("oracle");
  stack.engine->AddSeed(FirstQueriableSeed(CheckpointTarget()));
  stack.engine->set_max_rounds(10);
  ASSERT_TRUE(stack.engine->Run().ok());
  StatusOr<std::string> image =
      EncodeCrawlCheckpoint(*stack.engine, nullptr);
  ASSERT_FALSE(image.ok());
  EXPECT_NE(image.status().message().find("checkpoint"), std::string::npos);
}

}  // namespace
}  // namespace deepcrawl
