// Tests of the §5 overlap-analysis size estimation pipeline.

#include "src/estimate/size_estimator.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/datagen/workload_config.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

TEST(CaptureRecaptureTest, ClassicFormula) {
  std::vector<RecordId> a = {1, 2, 3, 4, 5};
  std::vector<RecordId> b = {4, 5, 6, 7};
  // overlap = 2 -> estimate = 5*4/2 = 10.
  StatusOr<double> estimate = CaptureRecaptureEstimate(a, b);
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, 10.0);
}

TEST(CaptureRecaptureTest, IdenticalSamplesEstimateTheirSize) {
  std::vector<RecordId> a = {10, 20, 30};
  StatusOr<double> estimate = CaptureRecaptureEstimate(a, a);
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, 3.0);
}

TEST(CaptureRecaptureTest, DisjointSamplesFail) {
  std::vector<RecordId> a = {1, 2};
  std::vector<RecordId> b = {3, 4};
  EXPECT_EQ(CaptureRecaptureEstimate(a, b).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SizeEstimationTest, EstimatesWithinReasonOnSyntheticDb) {
  SyntheticDbConfig config;
  config.name = "estimation-target";
  config.num_records = 2000;
  config.seed = 5;
  config.attributes = {
      {.name = "Brand", .num_distinct = 60, .zipf_exponent = 1.0},
      {.name = "Model", .num_distinct = 700, .zipf_exponent = 0.8},
  };
  StatusOr<Table> table = GenerateTable(config);
  ASSERT_TRUE(table.ok());
  WebDbServer server(*table, ServerOptions{});

  SizeEstimationOptions options;
  options.num_crawls = 6;
  options.rounds_per_crawl = 120;
  options.seed = 3;
  StatusOr<SizeEstimationReport> report = EstimateDatabaseSize(
      server,
      [](const LocalStore& store) {
        return std::make_unique<GreedyLinkSelector>(store);
      },
      options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->crawl_sizes.size(), 6u);
  EXPECT_EQ(report->pairwise_estimates.size() + report->disjoint_pairs, 15u);
  ASSERT_GE(report->pairwise_estimates.size(), 2u);
  // Capture-recapture over non-uniform samples biases low (hubs are
  // recaptured first); the point is the right order of magnitude.
  EXPECT_GT(report->t_test.mean, 200.0);
  EXPECT_LT(report->t_test.mean, 4000.0);
  EXPECT_GT(report->t_test.one_sided_upper, report->t_test.mean);
}

TEST(SizeEstimationTest, FullCrawlsEstimateExactly) {
  // With budgets large enough to drain the database, every sample is the
  // full record set and every estimate equals |DB| exactly.
  Table table = testing_util::MakeFigure1Table();
  WebDbServer server(table, ServerOptions{});
  SizeEstimationOptions options;
  options.num_crawls = 3;
  options.rounds_per_crawl = 100000;
  StatusOr<SizeEstimationReport> report = EstimateDatabaseSize(
      server,
      [](const LocalStore& store) {
        return std::make_unique<GreedyLinkSelector>(store);
      },
      options);
  ASSERT_TRUE(report.ok());
  for (double estimate : report->pairwise_estimates) {
    EXPECT_DOUBLE_EQ(estimate, 5.0);
  }
}

TEST(SizeEstimationTest, RejectsSingleCrawl) {
  Table table = testing_util::MakeFigure1Table();
  WebDbServer server(table, ServerOptions{});
  SizeEstimationOptions options;
  options.num_crawls = 1;
  StatusOr<SizeEstimationReport> report = EstimateDatabaseSize(
      server,
      [](const LocalStore&) {
        return std::make_unique<BfsSelector>();
      },
      options);
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace deepcrawl
