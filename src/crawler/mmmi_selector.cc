#include "src/crawler/mmmi_selector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "src/util/checkpoint_io.h"
#include "src/util/logging.h"

namespace deepcrawl {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

MmmiSelector::MmmiSelector(const LocalStore& store, MmmiOptions options)
    : GreedyLinkSelector(store), options_(options) {
  DEEPCRAWL_CHECK_GT(options_.batch_size, 0u);
}

void MmmiSelector::Bump(ValueId v, ValueId u) {
  partners_.EnsureRows(static_cast<size_t>(v) + 1);
  std::span<std::pair<ValueId, uint32_t>> row = partners_.MutableRow(v);
  auto it = std::lower_bound(
      row.begin(), row.end(), u,
      [](const std::pair<ValueId, uint32_t>& entry, ValueId key) {
        return entry.first < key;
      });
  if (it != row.end() && it->first == u) {
    ++it->second;
  } else {
    // New partner: append, then rotate it back into sorted position so
    // CachedDependency can aggregate the row without a per-call sort.
    size_t pos = static_cast<size_t>(it - row.begin());
    partners_.Append(v, {u, 1u});
    row = partners_.MutableRow(v);  // Append may have relocated the row
    std::rotate(row.begin() + static_cast<ptrdiff_t>(pos), row.end() - 1,
                row.end());
  }
  ++co_bumps_;
}

void MmmiSelector::OnRecordHarvested(uint32_t slot) {
  GreedyLinkSelector::OnRecordHarvested(slot);
  if (options_.reference_scoring) return;
  // Live path: credit this record to co(v, u) for every (pending v,
  // issued u) occurrence pair. Occurrence (not distinct-value) pairing
  // mirrors the reference scan's multiplicity semantics exactly.
  std::span<const ValueId> values = store().RecordValues(slot);
  issued_in_record_.clear();
  for (ValueId u : values) {
    if (IsIssued(u)) issued_in_record_.push_back(u);
  }
  if (issued_in_record_.empty()) return;
  for (ValueId v : values) {
    if (!IsPending(v)) continue;
    for (ValueId u : issued_in_record_) {
      if (u != v) Bump(v, u);
    }
  }
}

void MmmiSelector::OnQueryCompleted(const QueryOutcome& outcome) {
  ValueId v = outcome.value;
  if (v >= queried_bitmap_.size()) {
    queried_bitmap_.resize(static_cast<size_t>(v) + 1, 0);
  }
  if (queried_bitmap_[v]) return;  // guard: backfill exactly once
  queried_bitmap_[v] = 1;
  if (options_.reference_scoring) return;
  // Backfill path: records containing v harvested *before* v completed
  // predate the live path's bitmap check; credit them now.
  for (uint32_t slot : store().LocalPostings(v)) {
    for (ValueId u : store().RecordValues(slot)) {
      if (u != v && IsPending(u)) Bump(u, v);
    }
  }
}

MmmiSelector::Dependency MmmiSelector::AggregateSorted(
    ValueId q, std::span<const std::pair<ValueId, uint32_t>> cos) const {
  const LocalStore& db = store();
  Dependency result{kNegInf, 0, kNegInf};
  double n = static_cast<double>(db.num_records());
  if (n == 0) return result;
  double freq_q = static_cast<double>(db.LocalFrequency(q));
  if (freq_q == 0) return result;
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (const auto& [u, co] : cos) {
    double freq_u = static_cast<double>(db.LocalFrequency(u));
    // ln( P(q,u) / (P(q) P(u)) ) = ln( co * n / (freq_q * freq_u) ).
    double pmi = std::log(static_cast<double>(co) * n / (freq_q * freq_u));
    result.max_pmi = std::max(result.max_pmi, pmi);
    result.max_co = std::max(result.max_co, co);
    weighted_sum += static_cast<double>(co) * pmi;
    weight_total += static_cast<double>(co);
  }
  if (weight_total > 0.0) {
    result.weighted_pmi = weighted_sum / weight_total;
  }
  return result;
}

MmmiSelector::Dependency MmmiSelector::ComputeDependency(ValueId q) const {
  const LocalStore& db = store();
  // Count co-occurrences with issued queries by scanning q's local
  // postings once, then aggregate in ascending-partner order (the
  // canonical order shared with the incremental path, so both produce
  // bit-identical floating-point sums).
  std::unordered_map<ValueId, uint32_t> co_counts;
  for (uint32_t slot : db.LocalPostings(q)) {
    for (ValueId u : db.RecordValues(slot)) {
      if (u != q && IsIssued(u)) ++co_counts[u];
    }
  }
  std::vector<std::pair<ValueId, uint32_t>> cos(co_counts.begin(),
                                                co_counts.end());
  std::sort(cos.begin(), cos.end());
  return AggregateSorted(q, cos);
}

double MmmiSelector::DependencyScore(ValueId q) const {
  return ComputeDependency(q).max_pmi;
}

void MmmiSelector::RecomputeBatch() {
  std::span<const ValueId> candidates = PendingValues();
  if (candidates.empty()) return;

  scored_.clear();
  scored_.reserve(candidates.size());
  for (ValueId v : candidates) {
    Dependency dep = options_.reference_scoring ? ComputeDependency(v)
                                                : CachedDependency(v);
    double s = dep.max_pmi;
    uint64_t degree = store().LocalDegree(v);
    double combined;
    if (options_.ranking == MmmiRanking::kResidualFrequency) {
      // Local records not explained by the strongest single dependency,
      // i.e. the predicted undrained mass behind this candidate.
      combined = static_cast<double>(store().LocalFrequency(v)) -
                 static_cast<double>(dep.max_co) +
                 1e-6 * static_cast<double>(degree);
    } else if (options_.ranking == MmmiRanking::kWeightedDependency) {
      double discount =
          std::exp(std::clamp(-dep.weighted_pmi, -60.0, 60.0));
      combined =
          (static_cast<double>(store().LocalFrequency(v)) + 1.0) * discount;
    } else {
      // exp(-s) with s = -inf (no co-occurrence with any issued query)
      // gives +inf: an uncorrelated candidate outranks everything of
      // similar degree. Clamp to keep the arithmetic finite.
      double discount = std::exp(std::clamp(-s, -60.0, 60.0));
      double magnitude =
          static_cast<double>(store().LocalFrequency(v)) + 1.0;
      combined = magnitude * discount;
    }
    scored_.push_back(Scored{s, degree, combined, v});
  }
  // Only the top batch_size entries are consumed, and both comparators
  // are total orders (they end in the value-id tie-break), so a partial
  // sort selects exactly the prefix a full sort would — at O(N log B)
  // per batch instead of O(N log N), which dominates the marginal phase
  // where every batch re-ranks thousands of pending values.
  size_t take = std::min<size_t>(options_.batch_size, scored_.size());
  auto middle = scored_.begin() + static_cast<ptrdiff_t>(take);
  if (options_.ranking == MmmiRanking::kPureDependency) {
    // Ascending dependency (least-correlated first); among equals prefer
    // the better-connected value (the greedy-link signal), then smaller
    // id for determinism. Comparators end in the id tie-break, so the
    // ranking is independent of frontier enumeration order.
    std::partial_sort(scored_.begin(), middle, scored_.end(),
                      [](const Scored& a, const Scored& b) {
                        if (a.dependency != b.dependency) {
                          return a.dependency < b.dependency;
                        }
                        if (a.degree != b.degree) return a.degree > b.degree;
                        return a.value < b.value;
                      });
  } else {
    // Dependency-discounted popularity, best first.
    std::partial_sort(scored_.begin(), middle, scored_.end(),
                      [](const Scored& a, const Scored& b) {
                        if (a.combined != b.combined) {
                          return a.combined > b.combined;
                        }
                        return a.value < b.value;
                      });
  }
  batch_queue_.clear();
  for (size_t i = 0; i < take; ++i) {
    batch_queue_.push_back(scored_[i].value);
  }
}

Status MmmiSelector::SaveState(CheckpointWriter& writer) const {
  DEEPCRAWL_RETURN_IF_ERROR(GreedyLinkSelector::SaveState(writer));
  // Options fingerprint: the ranking mode changes selection, so a
  // checkpoint must not silently resume under a different one.
  writer.WriteU32(options_.batch_size);
  writer.WriteU8(static_cast<uint8_t>(options_.ranking));
  writer.WriteU8(options_.reference_scoring ? 1 : 0);
  writer.WriteU8(saturated_ ? 1 : 0);
  writer.WriteString(
      std::string_view(queried_bitmap_.data(), queried_bitmap_.size()));
  writer.WriteU64(batch_queue_.size());
  for (ValueId v : batch_queue_) writer.WriteU32(v);
  writer.WriteU64(partners_.num_rows());
  for (size_t row = 0; row < partners_.num_rows(); ++row) {
    std::span<const std::pair<ValueId, uint32_t>> entries =
        partners_.Row(row);
    writer.WriteU64(entries.size());
    for (const auto& [partner, co] : entries) {
      writer.WriteU32(partner);
      writer.WriteU32(co);
    }
  }
  writer.WriteU64(co_bumps_);
  return Status::OK();
}

Status MmmiSelector::LoadState(CheckpointReader& reader,
                               ValueId value_bound) {
  DEEPCRAWL_RETURN_IF_ERROR(
      GreedyLinkSelector::LoadState(reader, value_bound));
  uint32_t batch_size = reader.ReadU32();
  uint8_t ranking = reader.ReadU8();
  bool reference_scoring = reader.ReadU8() != 0;
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());
  if (batch_size != options_.batch_size ||
      ranking != static_cast<uint8_t>(options_.ranking) ||
      reference_scoring != options_.reference_scoring) {
    return Status::InvalidArgument(
        "checkpoint MMMI-options mismatch: batch size, ranking mode, or "
        "scoring path differs from the checkpointing run");
  }
  saturated_ = reader.ReadU8() != 0;
  std::string bitmap = reader.ReadString();
  queried_bitmap_.assign(bitmap.begin(), bitmap.end());
  batch_queue_.clear();
  uint64_t queued = reader.ReadCount(4);
  for (uint64_t i = 0; i < queued && reader.ok(); ++i) {
    ValueId v = reader.ReadU32();
    if (v >= value_bound) {
      reader.MarkCorrupt("batch-queue value id out of range");
      break;
    }
    batch_queue_.push_back(v);
  }
  partners_ = ChunkedArena<std::pair<ValueId, uint32_t>>();
  uint64_t num_rows = reader.ReadCount(8);
  if (reader.ok() && num_rows > value_bound) {
    reader.MarkCorrupt("co-occurrence row count out of range");
  }
  if (reader.ok()) partners_.EnsureRows(static_cast<size_t>(num_rows));
  for (uint64_t row = 0; row < num_rows && reader.ok(); ++row) {
    uint64_t entries = reader.ReadCount(8);
    ValueId last_partner = 0;
    for (uint64_t i = 0; i < entries && reader.ok(); ++i) {
      ValueId partner = reader.ReadU32();
      uint32_t co = reader.ReadU32();
      // Rows must come back sorted ascending by partner id — the
      // invariant CachedDependency's aggregation order relies on.
      if (partner >= value_bound || co == 0 ||
          (i > 0 && partner <= last_partner)) {
        reader.MarkCorrupt("co-occurrence row invalid");
        break;
      }
      last_partner = partner;
      partners_.Append(static_cast<size_t>(row), {partner, co});
    }
  }
  co_bumps_ = reader.ReadU64();
  return reader.status();
}

ValueId MmmiSelector::SelectNext() {
  if (!saturated_) return GreedyLinkSelector::SelectNext();
  for (;;) {
    if (batch_queue_.empty()) {
      RecomputeBatch();
      if (batch_queue_.empty()) return kInvalidValueId;
    }
    ValueId v = batch_queue_.front();
    batch_queue_.pop_front();
    if (!IsPending(v)) continue;  // consumed by an earlier pop
    MarkNotPending(v);
    return v;
  }
}

}  // namespace deepcrawl
