#include "src/graph/reachability.h"

#include <algorithm>
#include <deque>

#include "src/util/logging.h"

namespace deepcrawl {

namespace {

// Shared BFS: expands value -> (first `limit` records, or all when
// limit == 0) -> values, counting waves of value expansion.
ReachabilityReport Bfs(const Table& table, const InvertedIndex& index,
                       std::span<const ValueId> seeds, uint32_t limit) {
  ReachabilityReport report;
  report.reachable_record.assign(table.num_records(), 0);
  std::vector<char> value_seen(table.num_distinct_values(), 0);

  // Queue of (value, depth); depth counts query waves from the seeds.
  std::deque<std::pair<ValueId, uint32_t>> frontier;
  for (ValueId seed : seeds) {
    if (seed >= table.num_distinct_values()) continue;
    if (value_seen[seed]) continue;
    value_seen[seed] = 1;
    ++report.reachable_values;
    frontier.emplace_back(seed, 0);
  }

  while (!frontier.empty()) {
    auto [value, depth] = frontier.front();
    frontier.pop_front();
    std::span<const RecordId> postings = index.Postings(value);
    size_t retrievable = postings.size();
    if (limit > 0) retrievable = std::min<size_t>(retrievable, limit);
    for (size_t i = 0; i < retrievable; ++i) {
      RecordId r = postings[i];
      if (!report.reachable_record[r]) {
        report.reachable_record[r] = 1;
        ++report.reachable_records;
        report.max_depth = std::max(report.max_depth, depth + 1);
      }
      for (ValueId v : table.record(r)) {
        if (value_seen[v]) continue;
        value_seen[v] = 1;
        ++report.reachable_values;
        frontier.emplace_back(v, depth + 1);
      }
    }
  }

  if (table.num_records() > 0) {
    report.record_fraction =
        static_cast<double>(report.reachable_records) /
        static_cast<double>(table.num_records());
  }
  return report;
}

}  // namespace

ReachabilityReport ComputeReachability(const Table& table,
                                       const InvertedIndex& index,
                                       std::span<const ValueId> seeds) {
  return Bfs(table, index, seeds, /*limit=*/0);
}

ReachabilityReport ComputeReachabilityWithLimit(
    const Table& table, const InvertedIndex& index,
    std::span<const ValueId> seeds, uint32_t result_limit) {
  return Bfs(table, index, seeds, result_limit);
}

}  // namespace deepcrawl
