#include "src/util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepcrawl {
namespace {

// Helper turning an initializer list into argc/argv with a program name.
Status ParseArgs(FlagParser& parser, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return parser.Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, EqualsSyntax) {
  std::string name = "default";
  int64_t count = 5;
  double rate = 1.0;
  bool verbose = false;
  FlagParser parser;
  parser.AddString("name", &name, "");
  parser.AddInt64("count", &count, "");
  parser.AddDouble("rate", &rate, "");
  parser.AddBool("verbose", &verbose, "");
  ASSERT_TRUE(ParseArgs(parser, {"--name=abc", "--count=42",
                                 "--rate=0.25", "--verbose=true"})
                  .ok());
  EXPECT_EQ(name, "abc");
  EXPECT_EQ(count, 42);
  EXPECT_DOUBLE_EQ(rate, 0.25);
  EXPECT_TRUE(verbose);
}

TEST(FlagParserTest, SpaceSeparatedValues) {
  int64_t count = 0;
  std::string name;
  FlagParser parser;
  parser.AddInt64("count", &count, "");
  parser.AddString("name", &name, "");
  ASSERT_TRUE(ParseArgs(parser, {"--count", "7", "--name", "xyz"}).ok());
  EXPECT_EQ(count, 7);
  EXPECT_EQ(name, "xyz");
}

TEST(FlagParserTest, BareAndNegatedBooleans) {
  bool a = false, b = true;
  FlagParser parser;
  parser.AddBool("alpha", &a, "");
  parser.AddBool("beta", &b, "");
  ASSERT_TRUE(ParseArgs(parser, {"--alpha", "--no-beta"}).ok());
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
}

TEST(FlagParserTest, DefaultsSurviveWhenUnset) {
  std::string name = "kept";
  int64_t count = 9;
  FlagParser parser;
  parser.AddString("name", &name, "");
  parser.AddInt64("count", &count, "");
  ASSERT_TRUE(ParseArgs(parser, {}).ok());
  EXPECT_EQ(name, "kept");
  EXPECT_EQ(count, 9);
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  bool flag = false;
  FlagParser parser;
  parser.AddBool("flag", &flag, "");
  ASSERT_TRUE(ParseArgs(parser, {"one", "--flag", "two"}).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"one", "two"}));
}

TEST(FlagParserTest, UnknownFlagRejected) {
  FlagParser parser;
  Status status = ParseArgs(parser, {"--nope=1"});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, BadValuesRejected) {
  int64_t count = 0;
  double rate = 0;
  bool flag = false;
  FlagParser parser;
  parser.AddInt64("count", &count, "");
  parser.AddDouble("rate", &rate, "");
  parser.AddBool("flag", &flag, "");
  EXPECT_FALSE(ParseArgs(parser, {"--count=abc"}).ok());
  EXPECT_FALSE(ParseArgs(parser, {"--rate=1.2.3"}).ok());
  EXPECT_FALSE(ParseArgs(parser, {"--flag=maybe"}).ok());
}

TEST(FlagParserTest, MissingValueRejected) {
  int64_t count = 0;
  FlagParser parser;
  parser.AddInt64("count", &count, "");
  EXPECT_FALSE(ParseArgs(parser, {"--count"}).ok());
}

TEST(FlagParserTest, HelpTextListsFlagsWithDefaults) {
  std::string name = "dflt";
  bool flag = true;
  FlagParser parser;
  parser.AddString("name", &name, "the name");
  parser.AddBool("flag", &flag, "a switch");
  std::string help = parser.HelpText();
  EXPECT_NE(help.find("--name (default: \"dflt\")"), std::string::npos);
  EXPECT_NE(help.find("--flag (default: true)"), std::string::npos);
  EXPECT_NE(help.find("the name"), std::string::npos);
}

TEST(FlagParserDeathTest, DuplicateRegistrationAborts) {
  int64_t a = 0, b = 0;
  FlagParser parser;
  parser.AddInt64("x", &a, "");
  EXPECT_DEATH(parser.AddInt64("x", &b, ""), "duplicate");
}

}  // namespace
}  // namespace deepcrawl
