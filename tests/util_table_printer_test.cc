#include "src/util/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace deepcrawl {
namespace {

TEST(TablePrinterTest, RendersAlignedColumns) {
  TablePrinter table({"policy", "rounds"});
  table.AddRow({"bfs", "120"});
  table.AddRow({"greedy-link", "45"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| policy      | rounds |"), std::string::npos) << out;
  EXPECT_NE(out.find("| greedy-link | 45     |"), std::string::npos) << out;
  EXPECT_NE(out.find("|-------------|--------|"), std::string::npos) << out;
}

TEST(TablePrinterTest, NumRowsCountsAddedRows) {
  TablePrinter table({"a"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, FormatDoubleRespectsPrecision) {
  EXPECT_EQ(TablePrinter::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::FormatDouble(-1.5, 1), "-1.5");
}

TEST(TablePrinterTest, FormatPercent) {
  EXPECT_EQ(TablePrinter::FormatPercent(0.85), "85.0%");
  EXPECT_EQ(TablePrinter::FormatPercent(0.333, 0), "33%");
  EXPECT_EQ(TablePrinter::FormatPercent(1.0, 0), "100%");
}

TEST(TablePrinterTest, FormatCountGroupsDigits) {
  EXPECT_EQ(TablePrinter::FormatCount(0), "0");
  EXPECT_EQ(TablePrinter::FormatCount(999), "999");
  EXPECT_EQ(TablePrinter::FormatCount(1000), "1,000");
  EXPECT_EQ(TablePrinter::FormatCount(1234567), "1,234,567");
}

TEST(TablePrinterDeathTest, RowWidthMismatchAborts) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width");
}

}  // namespace
}  // namespace deepcrawl
