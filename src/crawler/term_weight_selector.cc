#include "src/crawler/term_weight_selector.h"

#include <algorithm>
#include <cmath>

#include "src/util/checkpoint_io.h"
#include "src/util/logging.h"

namespace deepcrawl {

TermWeightSelector::TermWeightSelector(const LocalStore& store,
                                       TermWeightOptions options)
    : FrontierSelector(store), options_(options) {
  DEEPCRAWL_CHECK_GT(options_.batch_size, 0u);
}

double TermWeightSelector::Weight(ValueId v) const {
  double df = static_cast<double>(store().LocalFrequency(v));
  if (df <= 0.0) return 0.0;
  double n = static_cast<double>(store().num_records());
  return df * std::log((n + 1.0) / df);
}

void TermWeightSelector::RecomputeBatch() {
  std::span<const ValueId> candidates = PendingValues();
  if (candidates.empty()) return;
  scored_.clear();
  scored_.reserve(candidates.size());
  for (ValueId v : candidates) {
    scored_.push_back(Scored{Weight(v), store().LocalFrequency(v), v});
  }
  // Top batch_size only; the comparator is a total order (it ends in the
  // value-id tie-break), so a partial sort selects exactly the prefix a
  // full sort would. Among equal weights prefer the larger result set,
  // then the smaller id for determinism.
  size_t take = std::min<size_t>(options_.batch_size, scored_.size());
  auto middle = scored_.begin() + static_cast<ptrdiff_t>(take);
  std::partial_sort(scored_.begin(), middle, scored_.end(),
                    [](const Scored& a, const Scored& b) {
                      if (a.weight != b.weight) return a.weight > b.weight;
                      if (a.df != b.df) return a.df > b.df;
                      return a.value < b.value;
                    });
  batch_queue_.clear();
  for (size_t i = 0; i < take; ++i) {
    batch_queue_.push_back(scored_[i].value);
  }
}

ValueId TermWeightSelector::SelectNext() {
  for (;;) {
    if (batch_queue_.empty()) {
      RecomputeBatch();
      if (batch_queue_.empty()) return kInvalidValueId;
    }
    ValueId v = batch_queue_.front();
    batch_queue_.pop_front();
    if (!IsPending(v)) continue;  // consumed by an earlier pop or taken
    MarkNotPending(v);
    return v;
  }
}

Status TermWeightSelector::SaveState(CheckpointWriter& writer) const {
  SaveFrontier(writer);
  writer.WriteU32(options_.batch_size);
  writer.WriteU64(batch_queue_.size());
  for (ValueId v : batch_queue_) writer.WriteU32(v);
  return Status::OK();
}

Status TermWeightSelector::LoadState(CheckpointReader& reader,
                                     ValueId value_bound) {
  LoadFrontier(reader, value_bound);
  uint32_t batch_size = reader.ReadU32();
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());
  if (batch_size != options_.batch_size) {
    return Status::InvalidArgument(
        "checkpoint term-weight batch size differs from the "
        "checkpointing run");
  }
  batch_queue_.clear();
  uint64_t queued = reader.ReadCount(4);
  for (uint64_t i = 0; i < queued && reader.ok(); ++i) {
    ValueId v = reader.ReadU32();
    if (v >= value_bound) {
      reader.MarkCorrupt("batch-queue value id out of range");
      break;
    }
    batch_queue_.push_back(v);
  }
  return reader.status();
}

}  // namespace deepcrawl
