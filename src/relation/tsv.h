// Tab-separated import/export of Tables.
//
// Lets users bring their own database dumps to the crawler simulation
// (and persist generated workloads for external analysis). Format:
//
//   line 1: attribute names, tab-separated
//   lines:  one record per line; each cell is "attr_index:value_text"?
//
// No — simpler and lossless for multi-valued attributes: every line is a
// record of tab-separated cells, each cell "<attribute name>=<text>".
// A record may repeat an attribute (multi-valued) and omit attributes
// (sparse records). Example:
//
//   Title=Alien	Actor=Weaver	Actor=Holm	Director=Scott
//
// Tabs and newlines are not allowed inside names or values ('=' is
// allowed in values; the first '=' splits the cell).

#ifndef DEEPCRAWL_RELATION_TSV_H_
#define DEEPCRAWL_RELATION_TSV_H_

#include <iosfwd>
#include <string>

#include "src/relation/table.h"
#include "src/util/status.h"

namespace deepcrawl {

// Reads records from `input` (one per line, format above). Attribute
// names are added to the schema in first-appearance order. Empty lines
// are skipped. Fails on malformed cells (no '=', empty name or value).
StatusOr<Table> ReadTableTsv(std::istream& input);

// Writes every record of `table` in the same format. Returns a Status
// for symmetry / future IO failure mapping.
Status WriteTableTsv(const Table& table, std::ostream& output);

// File-path convenience wrappers.
StatusOr<Table> ReadTableTsvFile(const std::string& path);
Status WriteTableTsvFile(const Table& table, const std::string& path);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_RELATION_TSV_H_
