#include "src/util/checkpoint_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace deepcrawl {

namespace {

constexpr char kMagic[4] = {'D', 'C', 'P', 'K'};
constexpr size_t kHeaderSize = 4 + 4 + 8;  // magic + version + payload size
constexpr size_t kFooterSize = 8;          // checksum

}  // namespace

void CheckpointWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void CheckpointWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void CheckpointWriter::WriteDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void CheckpointWriter::WriteString(std::string_view text) {
  WriteU32(static_cast<uint32_t>(text.size()));
  buffer_.append(text.data(), text.size());
}

bool CheckpointReader::Require(size_t bytes) {
  if (!ok()) return false;
  if (remaining() < bytes) {
    MarkCorrupt("unexpected end of checkpoint data");
    return false;
  }
  return true;
}

uint8_t CheckpointReader::ReadU8() {
  if (!Require(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t CheckpointReader::ReadU32() {
  if (!Require(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t CheckpointReader::ReadU64() {
  if (!Require(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double CheckpointReader::ReadDouble() {
  uint64_t bits = ReadU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string CheckpointReader::ReadString() {
  uint32_t size = ReadU32();
  if (!Require(size)) return std::string();
  std::string text(data_.substr(pos_, size));
  pos_ += size;
  return text;
}

uint64_t CheckpointReader::ReadCount(size_t elem_size) {
  uint64_t count = ReadU64();
  if (!ok()) return 0;
  if (elem_size == 0 || count > remaining() / elem_size) {
    MarkCorrupt("element count exceeds remaining checkpoint data");
    return 0;
  }
  return count;
}

void CheckpointReader::MarkCorrupt(std::string reason) {
  if (error_.empty()) error_ = std::move(reason);
}

Status CheckpointReader::status() const {
  if (ok()) return Status::OK();
  return Status::InvalidArgument("corrupt checkpoint: " + error_);
}

uint64_t CheckpointChecksum(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string FrameCheckpoint(std::string_view payload, uint32_t version) {
  CheckpointWriter w;
  std::string framed;
  framed.reserve(kHeaderSize + payload.size() + kFooterSize);
  framed.append(kMagic, sizeof(kMagic));
  w.WriteU32(version);
  w.WriteU64(payload.size());
  framed.append(w.buffer());
  framed.append(payload.data(), payload.size());
  CheckpointWriter footer;
  footer.WriteU64(CheckpointChecksum(payload));
  framed.append(footer.buffer());
  return framed;
}

StatusOr<std::string_view> UnframeCheckpoint(std::string_view image,
                                             uint32_t expected_version) {
  if (image.size() < kHeaderSize + kFooterSize) {
    return Status::InvalidArgument(
        "corrupt checkpoint: file too short to hold a checkpoint header");
  }
  if (std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "corrupt checkpoint: bad magic (not a crawl checkpoint file)");
  }
  CheckpointReader header(image.substr(4, kHeaderSize - 4));
  uint32_t version = header.ReadU32();
  uint64_t payload_size = header.ReadU64();
  if (version != expected_version) {
    return Status::InvalidArgument(
        "checkpoint format version mismatch: file has version " +
        std::to_string(version) + ", this build reads version " +
        std::to_string(expected_version));
  }
  if (payload_size != image.size() - kHeaderSize - kFooterSize) {
    return Status::InvalidArgument(
        "corrupt checkpoint: payload size field does not match file size "
        "(truncated or padded file)");
  }
  std::string_view payload = image.substr(kHeaderSize, payload_size);
  CheckpointReader footer(image.substr(kHeaderSize + payload_size));
  uint64_t stored = footer.ReadU64();
  if (stored != CheckpointChecksum(payload)) {
    return Status::InvalidArgument(
        "corrupt checkpoint: payload checksum mismatch");
  }
  return payload;
}

namespace {

// Directory component of `path`, or "." when it has none; what must be
// fsynced for a rename in that directory to be durable.
std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("cannot open directory '" + dir +
                            "' for fsync: " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal("fsync failed for directory '" + dir +
                            "': " + std::strerror(err));
  }
  ::close(fd);
  return Status::OK();
}

// Unique per-writer temp name: pid distinguishes processes, the
// counter distinguishes threads/calls within one process, so two
// checkpointers targeting the same path never open the same temp file.
std::string UniqueTempName(const std::string& path) {
  static std::atomic<uint64_t> counter{0};
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

// Shared temp+rename body; `durable` adds the fsync-before-rename and
// fsync-parent-dir-after steps that make the write crash-safe.
Status WriteFileAtomicImpl(const std::string& path, std::string_view bytes,
                           bool durable) {
  std::string tmp = UniqueTempName(path);
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::NotFound("cannot create '" + tmp + "'");
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      std::remove(tmp.c_str());
      return Status::Internal("write failed for '" + tmp +
                              "': " + std::strerror(err));
    }
    written += static_cast<size_t>(n);
  }
  if (durable && ::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    std::remove(tmp.c_str());
    return Status::Internal("fsync failed for '" + tmp +
                            "': " + std::strerror(err));
  }
  if (::close(fd) != 0) {
    int err = errno;
    std::remove(tmp.c_str());
    return Status::Internal("close failed for '" + tmp +
                            "': " + std::strerror(err));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename '" + tmp + "' to '" + path + "'");
  }
  if (durable) {
    // Without this the rename itself may be lost in a crash, leaving
    // the directory entry pointing at the old (or no) file.
    Status dir_status = SyncDir(ParentDir(path));
    if (!dir_status.ok()) return dir_status;
  }
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  return WriteFileAtomicImpl(path, bytes, /*durable=*/true);
}

Status WriteFileAtomicDeferredSync(const std::string& path,
                                   std::string_view bytes) {
  return WriteFileAtomicImpl(path, bytes, /*durable=*/false);
}

Status SyncFileDurable(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("cannot open '" + path +
                            "' for fsync: " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal("fsync failed for '" + path +
                            "': " + std::strerror(err));
  }
  ::close(fd);
  return SyncDir(ParentDir(path));
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  if (file.bad()) return Status::Internal("read failed for '" + path + "'");
  return bytes;
}

}  // namespace deepcrawl
