#include "src/graph/attribute_value_graph.h"

#include <algorithm>

#include "src/util/logging.h"

namespace deepcrawl {

AttributeValueGraph AttributeValueGraph::Build(const Table& table) {
  size_t n = table.num_distinct_values();
  // Counting pass: raw (with multiplicity) neighbor slots per vertex.
  std::vector<size_t> raw_counts(n, 0);
  for (RecordId r = 0; r < table.num_records(); ++r) {
    size_t record_size = table.record(r).size();
    if (record_size < 2) continue;
    for (ValueId v : table.record(r)) raw_counts[v] += record_size - 1;
  }
  std::vector<size_t> raw_offsets(n + 1, 0);
  for (size_t v = 0; v < n; ++v) raw_offsets[v + 1] = raw_offsets[v] + raw_counts[v];

  // Fill pass: append every co-occurring value (cliques per record).
  std::vector<ValueId> raw(raw_offsets.back());
  std::vector<size_t> cursor(raw_offsets.begin(), raw_offsets.end() - 1);
  for (RecordId r = 0; r < table.num_records(); ++r) {
    std::span<const ValueId> values = table.record(r);
    if (values.size() < 2) continue;
    for (ValueId a : values) {
      for (ValueId b : values) {
        if (a == b) continue;
        raw[cursor[a]++] = b;
      }
    }
  }

  // Deduplicate each adjacency list in place and compact.
  AttributeValueGraph graph;
  graph.offsets_.assign(n + 1, 0);
  size_t write = 0;
  for (size_t v = 0; v < n; ++v) {
    auto begin = raw.begin() + static_cast<ptrdiff_t>(raw_offsets[v]);
    auto end = raw.begin() + static_cast<ptrdiff_t>(raw_offsets[v + 1]);
    std::sort(begin, end);
    auto unique_end = std::unique(begin, end);
    for (auto it = begin; it != unique_end; ++it) raw[write++] = *it;
    graph.offsets_[v + 1] = write;
  }
  raw.resize(write);
  raw.shrink_to_fit();
  graph.adjacency_ = std::move(raw);
  return graph;
}

std::span<const ValueId> AttributeValueGraph::Neighbors(ValueId v) const {
  DEEPCRAWL_CHECK_LT(static_cast<size_t>(v) + 1, offsets_.size())
      << "vertex id out of range";
  size_t begin = offsets_[v];
  size_t end = offsets_[v + 1];
  return std::span<const ValueId>(adjacency_.data() + begin, end - begin);
}

bool AttributeValueGraph::HasEdge(ValueId a, ValueId b) const {
  std::span<const ValueId> nbrs = Neighbors(a);
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

std::vector<uint64_t> AttributeValueGraph::DegreeHistogram() const {
  uint32_t max_degree = 0;
  for (ValueId v = 0; v < num_vertices(); ++v) {
    max_degree = std::max(max_degree, Degree(v));
  }
  std::vector<uint64_t> histogram(static_cast<size_t>(max_degree) + 1, 0);
  for (ValueId v = 0; v < num_vertices(); ++v) ++histogram[Degree(v)];
  return histogram;
}

}  // namespace deepcrawl
