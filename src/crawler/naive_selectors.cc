#include "src/crawler/naive_selectors.h"

#include <algorithm>

#include "src/util/checkpoint_io.h"

namespace deepcrawl {

namespace {

// Shared frontier-container codec: all three naive selectors keep
// Lto-query as a flat sequence of value ids.
template <typename Container>
void SaveFrontier(CheckpointWriter& writer, const Container& frontier) {
  writer.WriteU64(frontier.size());
  for (ValueId v : frontier) writer.WriteU32(v);
}

template <typename Container>
Status LoadFrontier(CheckpointReader& reader, ValueId value_bound,
                    const char* what, Container& frontier) {
  frontier.clear();
  uint64_t count = reader.ReadCount(4);
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    ValueId v = reader.ReadU32();
    if (v >= value_bound) {
      reader.MarkCorrupt(std::string(what) + " frontier value out of range");
      break;
    }
    frontier.push_back(v);
  }
  return reader.status();
}

// Removes the first occurrence of `v`, preserving the relative order of
// the remaining entries (so the take is deterministic and the container
// semantics — queue/stack/pool — stay intact). O(n), fine for the
// baselines these selectors are.
template <typename Container>
void EraseTaken(Container& frontier, ValueId v) {
  auto it = std::find(frontier.begin(), frontier.end(), v);
  if (it != frontier.end()) frontier.erase(it);
}

}  // namespace

void BfsSelector::OnValueTaken(ValueId v) { EraseTaken(queue_, v); }
void DfsSelector::OnValueTaken(ValueId v) { EraseTaken(stack_, v); }
void RandomSelector::OnValueTaken(ValueId v) { EraseTaken(pool_, v); }

ValueId BfsSelector::SelectNext() {
  if (queue_.empty()) return kInvalidValueId;
  ValueId v = queue_.front();
  queue_.pop_front();
  return v;
}

ValueId DfsSelector::SelectNext() {
  if (stack_.empty()) return kInvalidValueId;
  ValueId v = stack_.back();
  stack_.pop_back();
  return v;
}

ValueId RandomSelector::SelectNext() {
  if (pool_.empty()) return kInvalidValueId;
  uint32_t i = rng_.NextBounded(static_cast<uint32_t>(pool_.size()));
  ValueId v = pool_[i];
  pool_[i] = pool_.back();
  pool_.pop_back();
  return v;
}

Status BfsSelector::SaveState(CheckpointWriter& writer) const {
  SaveFrontier(writer, queue_);
  return Status::OK();
}

Status BfsSelector::LoadState(CheckpointReader& reader, ValueId value_bound) {
  return LoadFrontier(reader, value_bound, "bfs", queue_);
}

Status DfsSelector::SaveState(CheckpointWriter& writer) const {
  SaveFrontier(writer, stack_);
  return Status::OK();
}

Status DfsSelector::LoadState(CheckpointReader& reader, ValueId value_bound) {
  return LoadFrontier(reader, value_bound, "dfs", stack_);
}

Status RandomSelector::SaveState(CheckpointWriter& writer) const {
  writer.WriteU64(rng_.state());
  writer.WriteU64(rng_.inc());
  SaveFrontier(writer, pool_);
  return Status::OK();
}

Status RandomSelector::LoadState(CheckpointReader& reader,
                                 ValueId value_bound) {
  uint64_t state = reader.ReadU64();
  uint64_t inc = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  rng_.RestoreRaw(state, inc);
  return LoadFrontier(reader, value_bound, "random", pool_);
}

}  // namespace deepcrawl
