file(REMOVE_RECURSE
  "CMakeFiles/bench_keyword.dir/bench_keyword.cc.o"
  "CMakeFiles/bench_keyword.dir/bench_keyword.cc.o.d"
  "bench_keyword"
  "bench_keyword.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_keyword.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
