// CircuitBreaker: per-source fault isolation for the crawl fleet
// (DESIGN.md §11).
//
// A fleet source that stalls, rate-limits, or dies must not keep eating
// scheduler turns: every round granted to a dead source is a round a
// healthy source did not get. The breaker is the classic three-state
// machine, evaluated at scheduler-turn granularity over the engine's
// own resilience deltas (no extra instrumentation in the hot fetch
// path):
//
//   closed ──(consecutive fully-failed turns >= threshold, or failure
//             EWMA >= threshold after a minimum of observed turns)──▶ open
//   open   ──(cooldown elapsed; the next Admit grants a probe)──▶ half-open
//   half-open ──(probe turn harvested records / saw no failures)──▶ closed
//   half-open ──(probe turn fully failed)──▶ open, cooldown grows
//              (capped exponential re-probe backoff)
//
// Flapping sources — ones that keep re-tripping — cross the quarantine
// threshold (opens + reopens): they stay schedulable through probes but
// keep their grown cooldown even after a successful close, so a flapper
// cannot reset its own backoff by one lucky turn. Past the abandon
// threshold the breaker is exhausted: the fleet stops probing for good
// and the degradation report says so explicitly.
//
// Everything is integer/double arithmetic over the fleet's simulated
// clock — no wall time — so breaker behaviour is a pure function of the
// turn history and checkpoints bit-identically.

#ifndef DEEPCRAWL_FLEET_CIRCUIT_BREAKER_H_
#define DEEPCRAWL_FLEET_CIRCUIT_BREAKER_H_

#include <cstdint>

#include "src/crawler/metrics.h"
#include "src/util/status.h"

namespace deepcrawl {

class CheckpointReader;
class CheckpointWriter;

struct CircuitBreakerConfig {
  // Trip after this many consecutive fully-failed turns (a turn that
  // consumed rounds, saw failures, and harvested nothing).
  uint32_t consecutive_failed_turns = 3;
  // ... or once the per-turn failure-rate EWMA reaches this level after
  // at least `min_turns_for_rate` observed turns.
  double error_rate_to_open = 0.9;
  uint32_t min_turns_for_rate = 4;
  double ewma_alpha = 0.3;
  // Open duration (fleet clock ticks) before the first half-open probe.
  uint64_t cooldown_ticks = 16;
  // Re-probe backoff: cooldown growth per failed probe, capped.
  double cooldown_multiplier = 2.0;
  uint64_t max_cooldown_ticks = 256;
  // Total trips (opens + reopens) after which the source counts as
  // quarantined in the degradation report.
  uint32_t quarantine_after_trips = 3;
  // Total trips after which the breaker is exhausted and the fleet stops
  // probing the source for good (0 = keep probing forever).
  uint32_t abandon_after_trips = 8;
};

enum class BreakerState : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* BreakerStateToString(BreakerState state);

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config);

  BreakerState state() const { return state_; }
  // Trips so far crossed the quarantine threshold.
  bool quarantined() const {
    return trips() >= config_.quarantine_after_trips;
  }
  // Trips crossed the abandon threshold: never admit again.
  bool exhausted() const {
    return config_.abandon_after_trips > 0 &&
           trips() >= config_.abandon_after_trips;
  }
  uint32_t trips() const {
    return transitions_.opens + transitions_.reopens;
  }

  // Whether a turn could be granted at fleet time `now` (const: safe to
  // evaluate for every source when picking). An open breaker admits once
  // its cooldown elapsed (the turn would be a probe).
  bool CanAdmit(uint64_t now) const;
  // Earliest fleet time CanAdmit turns true (now when it already is);
  // meaningless for an exhausted breaker (callers skip those).
  uint64_t EligibleAt(uint64_t now) const;
  // Commits the admission decided by CanAdmit for the source actually
  // granted the turn: an open breaker transitions to half-open and the
  // probe is counted. Call exactly once per granted turn, before it runs.
  void Admit(uint64_t now);

  // Reports the granted turn's outcome: rounds consumed, transient
  // failures observed, records newly harvested (deltas over the turn).
  void OnTurn(uint64_t now, uint64_t rounds, uint64_t failures,
              uint64_t new_records);

  // Cumulative fleet-clock ticks spent in the open state, including the
  // currently running open period.
  uint64_t TicksOpen(uint64_t now) const;

  const BreakerTransitions& transitions() const { return transitions_; }
  double error_ewma() const { return error_ewma_; }
  const CircuitBreakerConfig& config() const { return config_; }

  void SaveState(CheckpointWriter& writer) const;
  Status LoadState(CheckpointReader& reader);

 private:
  void TripOpen(uint64_t now);

  CircuitBreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  uint32_t consecutive_failed_ = 0;
  double error_ewma_ = 0.0;
  uint64_t turns_observed_ = 0;
  // Current cooldown (grows on failed probes, capped) and when the open
  // state next admits a probe.
  uint64_t cooldown_ = 0;
  uint64_t admit_at_ = 0;
  // Start of the current open period and ticks accumulated by closed
  // ones.
  uint64_t open_since_ = 0;
  uint64_t ticks_open_ = 0;
  BreakerTransitions transitions_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_FLEET_CIRCUIT_BREAKER_H_
