# Empty compiler generated dependencies file for deepcrawl_datagen.
# This may be replaced when dependencies are built.
