#include "src/crawler/scripted_selector.h"

#include <utility>

namespace deepcrawl {

ScriptedSelector::ScriptedSelector(std::vector<ValueId> script)
    : script_(std::move(script)) {}

ValueId ScriptedSelector::SelectNext() {
  if (cursor_ >= script_.size()) return kInvalidValueId;
  return script_[cursor_++];
}

}  // namespace deepcrawl
