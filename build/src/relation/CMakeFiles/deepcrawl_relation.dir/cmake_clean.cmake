file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_relation.dir/schema.cc.o"
  "CMakeFiles/deepcrawl_relation.dir/schema.cc.o.d"
  "CMakeFiles/deepcrawl_relation.dir/table.cc.o"
  "CMakeFiles/deepcrawl_relation.dir/table.cc.o.d"
  "CMakeFiles/deepcrawl_relation.dir/tsv.cc.o"
  "CMakeFiles/deepcrawl_relation.dir/tsv.cc.o.d"
  "CMakeFiles/deepcrawl_relation.dir/value_catalog.cc.o"
  "CMakeFiles/deepcrawl_relation.dir/value_catalog.cc.o.d"
  "libdeepcrawl_relation.a"
  "libdeepcrawl_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
