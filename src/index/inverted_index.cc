#include "src/index/inverted_index.h"

#include <algorithm>

#include "src/util/logging.h"

namespace deepcrawl {

InvertedIndex::InvertedIndex(const Table& table) {
  size_t num_values = table.num_distinct_values();
  // Counting pass: value frequencies are already tracked by the table.
  offsets_.assign(num_values + 1, 0);
  for (ValueId v = 0; v < num_values; ++v) {
    offsets_[v + 1] = offsets_[v] + table.value_frequency(v);
  }
  postings_.resize(offsets_.back());
  // Fill pass: records are scanned in ascending id order, so every
  // posting list comes out sorted.
  std::vector<size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (RecordId r = 0; r < table.num_records(); ++r) {
    for (ValueId v : table.record(r)) {
      postings_[cursor[v]++] = r;
    }
  }
}

std::span<const RecordId> InvertedIndex::Postings(ValueId value) const {
  if (value + 1 >= offsets_.size()) return {};
  size_t begin = offsets_[value];
  size_t end = offsets_[value + 1];
  return std::span<const RecordId>(postings_.data() + begin, end - begin);
}

uint32_t InvertedIndex::CooccurrenceCount(ValueId a, ValueId b) const {
  std::span<const RecordId> pa = Postings(a);
  std::span<const RecordId> pb = Postings(b);
  if (pa.size() > pb.size()) std::swap(pa, pb);
  uint32_t count = 0;
  size_t j = 0;
  for (RecordId r : pa) {
    // Galloping would help for very skewed sizes; linear merge is plenty
    // for the scales used here.
    while (j < pb.size() && pb[j] < r) ++j;
    if (j < pb.size() && pb[j] == r) {
      ++count;
      ++j;
    }
  }
  return count;
}

}  // namespace deepcrawl
