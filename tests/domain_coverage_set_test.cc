#include "src/domain/coverage_set.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/random.h"

namespace deepcrawl {
namespace {

TEST(CoverageSetTest, StartsEmpty) {
  CoverageSet set;
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.Contains(0));
  EXPECT_EQ(set.Fraction(10), 0.0);
  EXPECT_EQ(set.Fraction(0), 0.0);  // degenerate universe
}

TEST(CoverageSetTest, UnionMergesWithDeduplication) {
  CoverageSet set;
  std::vector<uint32_t> a = {1, 3, 5};
  std::vector<uint32_t> b = {2, 3, 6};
  set.Union(a);
  EXPECT_EQ(set.size(), 3u);
  set.Union(b);
  EXPECT_EQ(set.size(), 5u);
  for (uint32_t id : {1, 2, 3, 5, 6}) EXPECT_TRUE(set.Contains(id));
  EXPECT_FALSE(set.Contains(4));
}

TEST(CoverageSetTest, UnionWithEmptyIsNoop) {
  CoverageSet set;
  set.Union(std::vector<uint32_t>{7});
  set.Union(std::vector<uint32_t>{});
  EXPECT_EQ(set.size(), 1u);
}

TEST(CoverageSetTest, ResultStaysSorted) {
  CoverageSet set;
  set.Union(std::vector<uint32_t>{10, 20});
  set.Union(std::vector<uint32_t>{5, 15, 25});
  const auto& covered = set.covered();
  EXPECT_TRUE(std::is_sorted(covered.begin(), covered.end()));
}

TEST(CoverageSetTest, FractionAgainstUniverse) {
  CoverageSet set;
  set.Union(std::vector<uint32_t>{0, 1, 2});
  EXPECT_DOUBLE_EQ(set.Fraction(12), 0.25);
}

TEST(CoverageSetTest, RandomizedAgainstReferenceSet) {
  Pcg32 rng(33);
  CoverageSet set;
  std::set<uint32_t> reference;
  for (int round = 0; round < 50; ++round) {
    std::vector<uint32_t> batch;
    uint32_t n = rng.NextBounded(20);
    for (uint32_t i = 0; i < n; ++i) batch.push_back(rng.NextBounded(200));
    std::sort(batch.begin(), batch.end());
    batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
    set.Union(batch);
    reference.insert(batch.begin(), batch.end());
    ASSERT_EQ(set.size(), reference.size());
  }
  for (uint32_t id = 0; id < 200; ++id) {
    EXPECT_EQ(set.Contains(id), reference.count(id) != 0) << id;
  }
}

}  // namespace
}  // namespace deepcrawl
