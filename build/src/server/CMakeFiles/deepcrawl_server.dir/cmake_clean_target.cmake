file(REMOVE_RECURSE
  "libdeepcrawl_server.a"
)
