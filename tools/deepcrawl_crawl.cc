// deepcrawl_crawl — a command-line hidden-Web crawl driver.
//
// The paper's conclusion names "the implementation and deployment of a
// real world product database crawler" as future work; this tool is that
// front end for the simulated substrate: load (or generate) a target
// database, put it behind the query-interface simulator, crawl it with
// any of the library's selection policies, and export the harvest and
// the coverage trace.
//
// Examples:
//   # Crawl a TSV dump with greedy-link selection, write the harvest.
//   deepcrawl_crawl --input=cars.tsv --policy=greedy ...
//       --output-tsv=harvest.tsv --trace-csv=trace.csv
//
//   # Generate the paper's eBay workload and crawl to 90% coverage.
//   deepcrawl_crawl --workload=ebay --scale=0.1 --policy=mmmi ...
//       --target-coverage=0.9
//
//   # Domain-knowledge crawl: the DT comes from a second TSV.
//   deepcrawl_crawl --input=amazon.tsv --policy=domain ...
//       --domain-input=imdb.tsv
//
//   # Crawl a source that fails 10% of the time, with retries.
//   deepcrawl_crawl --workload=ebay --scale=0.1 --policy=greedy ...
//       --fault-profile=flaky --fault-seed=7
//
//   # Checkpoint every 64 waves; later resume from the last checkpoint
//   # (same flags!) and continue bit-identically.
//   deepcrawl_crawl --workload=ebay --policy=greedy ...
//       --checkpoint=crawl.ckpt --checkpoint-every=64
//   deepcrawl_crawl --workload=ebay --policy=greedy ...
//       --resume-from=crawl.ckpt --checkpoint=crawl.ckpt --checkpoint-every=64
//
//   # Crawl a remote WebDB served by deepcrawl_serve, pipelining each
//   # wave over 8 TCP connections. The workload flags must match the
//   # server's so selector bookkeeping (catalog, hierarchy, coverage
//   # accounting) lines up with the pages coming off the wire; fault
//   # flags describe what the SERVER injects (they size the client's
//   # retry budget and jitter seed — faults themselves live
//   # server-side).
//   deepcrawl_crawl --workload=ebay --policy=greedy ...
//       --connect=127.0.0.1:9317 --connections=8 --batch=32

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "src/crawler/checkpoint.h"
#include "src/crawler/crawl_engine.h"
#include "src/util/page_cache.h"
#include "src/crawler/retry_policy.h"
#include "src/crawler/trace_io.h"
#include "src/domain/domain_table.h"
#include "src/estimate/chao.h"
#include "src/net/net_client.h"
#include "src/relation/tsv.h"
#include "src/server/faulty_server.h"
#include "src/server/locked_interface.h"
#include "src/server/web_db_server.h"
#include "src/util/flags.h"
#include "src/util/random.h"
#include "src/util/table_printer.h"
#include "tools/selector_factory.h"
#include "tools/workload_setup.h"

namespace deepcrawl {
namespace {

struct Options {
  WorkloadFlagOptions workload;
  FaultFlagOptions fault;

  std::string policy = "greedy";
  bool mmmi_reference = false;
  std::string rank_attribute = "range";
  std::string domain_input;
  int64_t page_size = 10;
  int64_t result_limit = 0;
  bool counts = true;
  bool keyword = false;
  int64_t max_rounds = 0;
  double target_coverage = 0.0;
  double saturation = 0.85;
  int64_t num_seeds = 1;
  int64_t seed = 1;
  std::string trace_csv;
  std::string output_tsv;

  int64_t retry_attempts = 4;
  int64_t retry_requeues = 2;

  // Parallel batched engine (src/crawler/parallel_crawler.h). Engaged
  // whenever threads > 1 or batch > 1; threads=1 batch=1 keeps the
  // serial crawler, byte-for-byte compatible with earlier releases.
  int64_t threads = 1;
  int64_t batch = 1;
  int64_t latency_us = 0;

  // Network crawl (src/net/net_client.h): fetch pages from a
  // deepcrawl_serve process instead of an in-process simulator.
  std::string connect;
  int64_t connections = 4;
  int64_t connect_retry_ms = 15000;

  // Checkpoint/resume (src/crawler/checkpoint.h).
  std::string checkpoint;
  int64_t checkpoint_every = 0;
  std::string resume_from;

  // Store layout (src/crawler/local_store.h). "paged" spills the
  // statistics table to disk through a bounded page cache.
  std::string layout = "csr";
  std::string store_dir;
  int64_t page_bytes = 4096;
  int64_t cache_pages = 1024;

  bool help = false;
  bool list_selectors = false;
};

// Splits host:port; host may be omitted ("9317" = 127.0.0.1:9317).
Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port) {
  std::string port_text = spec;
  *host = "127.0.0.1";
  size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) *host = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
  }
  int value = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') value = -1;
    if (value >= 0) value = value * 10 + (c - '0');
    if (value > 65535) value = -1;
  }
  if (port_text.empty() || value <= 0) {
    return Status::InvalidArgument("bad --connect '" + spec +
                                   "' (want host:port)");
  }
  *port = static_cast<uint16_t>(value);
  return Status::OK();
}

// Writes the harvested records back out as a TSV, reconstructing cells
// through the target's catalog.
Status WriteHarvest(const Table& target, const LocalStore& store,
                    const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::NotFound("cannot create '" + path + "'");
  for (uint32_t slot = 0; slot < store.num_records(); ++slot) {
    bool first = true;
    for (ValueId v : store.RecordValues(slot)) {
      if (!first) file << '\t';
      first = false;
      AttributeId attr = target.catalog().attribute_of(v);
      file << target.schema().attribute(attr).name << '='
           << target.catalog().text_of(v);
    }
    file << '\n';
  }
  if (!file) return Status::Internal("write failed");
  return Status::OK();
}

Status Run(const Options& options) {
  std::optional<AdversarialGroundTruth> adv;
  DEEPCRAWL_ASSIGN_OR_RETURN(Table target,
                             LoadTargetTable(options.workload, adv));
  std::cout << "target: " << target.num_records() << " records, "
            << target.num_distinct_values() << " distinct values, "
            << target.schema().num_attributes() << " attributes\n";
  if (adv.has_value()) {
    std::cout << "adversarial: family=" << options.workload.adv_family
              << " opt=" << adv->opt_queries << " queries (result limit "
              << adv->result_limit << ")\n";
  }

  // Optional domain table (required by --policy=domain).
  std::optional<DomainTable> dt;
  std::optional<Table> domain_sample;
  if (!options.domain_input.empty()) {
    DEEPCRAWL_ASSIGN_OR_RETURN(Table sample,
                               ReadTableTsvFile(options.domain_input));
    domain_sample = std::move(sample);
    dt = DomainTable::Build(*domain_sample, target.schema(),
                            target.mutable_catalog());
    std::cout << "domain table: " << dt->num_entries()
              << " candidate queries from " << dt->num_domain_records()
              << " sample records\n";
  }

  ServerOptions server_options;
  server_options.page_size = static_cast<uint32_t>(options.page_size);
  server_options.result_limit =
      static_cast<uint32_t>(options.result_limit);
  if (adv.has_value() && options.result_limit == 0) {
    // The OPT bookkeeping assumes the generated per-bucket limit.
    server_options.result_limit = adv->result_limit;
  }
  server_options.reports_total_count = options.counts;
  WebDbServer backend(target, server_options);

  const bool network = !options.connect.empty();

  // With faults configured, the crawler talks to the fault proxy and
  // survives the failures through its retry policy. Over --connect the
  // proxy lives in the SERVER process; the flags here only size the
  // client's retry machinery identically to the in-process run.
  DEEPCRAWL_ASSIGN_OR_RETURN(FaultProfile profile,
                             BuildFaultProfile(options.fault));
  bool faults_enabled = !profile.IsAllZero();
  std::optional<FaultyServer> faulty;
  if (faults_enabled && !network) {
    faulty.emplace(backend, profile,
                   static_cast<uint64_t>(options.fault.fault_seed));
    std::cout << "faults: unavailable=" << profile.unavailable_rate
              << " timeout=" << profile.timeout_rate
              << " rate-limit=" << profile.rate_limit_rate
              << " truncate=" << profile.truncate_rate
              << " duplicate=" << profile.duplicate_rate << "\n";
  }
  if (options.threads < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  if (options.batch < 1) {
    return Status::InvalidArgument("--batch must be >= 1");
  }
  if (network && options.threads > 1) {
    return Status::InvalidArgument(
        "--connect pipelines over --connections, not threads; drop "
        "--threads");
  }
  if (network && options.latency_us > 0) {
    return Status::InvalidArgument(
        "--latency-us simulates a network in-process; with --connect the "
        "latency is real (pass --latency-us to deepcrawl_serve to add "
        "artificial delay)");
  }
  if (network && options.connections < 1) {
    return Status::InvalidArgument("--connections must be >= 1");
  }
  bool parallel = !network && (options.threads > 1 || options.batch > 1);
  if (faulty.has_value() && (options.fault.fault_keyed || parallel)) {
    // Parallel crawls force keyed faults: the sequential fault RNG
    // depends on fetch arrival order, which thread scheduling would
    // make irreproducible.
    faulty->set_keyed_faults(true);
    std::cout << "faults: keyed mode (decisions independent of fetch "
                 "arrival order)\n";
  }

  // Assemble the query stack: either the in-process simulator (behind
  // the optional fault proxy and thread-safety adapter) or a network
  // client talking to a deepcrawl_serve process.
  std::unique_ptr<NetQueryClient> net_client;
  std::optional<NetFetchExecutor> net_executor;
  std::optional<LockedQueryInterface> locked;
  QueryInterface* server = nullptr;
  if (network) {
    NetClientOptions net_options;
    DEEPCRAWL_RETURN_IF_ERROR(
        ParseHostPort(options.connect, &net_options.host, &net_options.port));
    net_options.connections = static_cast<uint32_t>(options.connections);
    net_options.reconnect_window_ms =
        static_cast<uint64_t>(options.connect_retry_ms);
    DEEPCRAWL_ASSIGN_OR_RETURN(net_client,
                               NetQueryClient::Connect(net_options));
    net_executor.emplace(*net_client);
    server = net_client.get();
    const ServerOptions& remote = net_client->options();
    std::cout << "connected: " << net_options.host << ":" << net_options.port
              << " (" << options.connections << " connections, page size "
              << remote.page_size << ", result limit " << remote.result_limit
              << ", " << net_client->server_info().num_values
              << " values)\n";
    // The selector plans against the locally built catalog; a server
    // with a different schema would silently desynchronize the crawl,
    // so mismatches are errors, not warnings.
    if (remote.page_size != server_options.page_size ||
        remote.result_limit != server_options.result_limit ||
        remote.reports_total_count != server_options.reports_total_count ||
        net_client->server_info().num_values != target.num_distinct_values()) {
      return Status::FailedPrecondition(
          "server interface mismatch: the deepcrawl_serve process was "
          "started with different workload/interface flags than this crawl");
    }
  } else {
    QueryInterface& direct_server =
        faulty.has_value() ? static_cast<QueryInterface&>(*faulty) : backend;
    if (parallel) {
      locked.emplace(direct_server,
                     static_cast<uint64_t>(options.latency_us));
      server = &*locked;
    } else {
      server = &direct_server;
    }
  }

  if (options.retry_attempts < 1) {
    return Status::InvalidArgument("--retry-attempts must be >= 1");
  }
  if (options.retry_requeues < 0) {
    return Status::InvalidArgument("--retry-requeues must be >= 0");
  }
  RetryPolicyConfig retry_config;
  retry_config.max_attempts = static_cast<uint32_t>(options.retry_attempts);
  retry_config.max_requeues = static_cast<uint32_t>(options.retry_requeues);
  retry_config.seed = static_cast<uint64_t>(options.fault.fault_seed);
  RetryPolicy retry_policy(retry_config);

  LocalStore::Options store_options;
  if (options.layout == "csr") {
    store_options.layout = LocalStore::Layout::kCsr;
  } else if (options.layout == "reference") {
    store_options.layout = LocalStore::Layout::kReference;
  } else if (options.layout == "paged") {
    store_options.layout = LocalStore::Layout::kPaged;
  } else {
    return Status::InvalidArgument("bad --layout '" + options.layout +
                                   "' (want csr, reference, or paged)");
  }
  if (store_options.layout == LocalStore::Layout::kPaged) {
    if (options.store_dir.empty()) {
      return Status::InvalidArgument("--layout=paged needs --store-dir");
    }
    if (options.page_bytes < 64 ||
        (options.page_bytes & (options.page_bytes - 1)) != 0) {
      return Status::InvalidArgument(
          "--page-bytes must be a power of two >= 64");
    }
    if (options.cache_pages < 1) {
      return Status::InvalidArgument("--cache-pages must be >= 1");
    }
    store_options.paged_dir = options.store_dir;
    store_options.page_bytes = static_cast<uint32_t>(options.page_bytes);
    store_options.cache_pages = static_cast<uint32_t>(options.cache_pages);
    // A resume must find the pages the checkpoint's manifest references;
    // a fresh crawl instead starts from a swept directory.
    store_options.paged_resume = !options.resume_from.empty();
  } else if (!options.store_dir.empty()) {
    return Status::InvalidArgument("--store-dir needs --layout=paged");
  }
  LocalStore store(store_options);
  SelectorContext selector_context;
  selector_context.store = &store;
  selector_context.seed = static_cast<uint64_t>(options.seed);
  selector_context.page_size = server_options.page_size;
  selector_context.result_limit = server_options.result_limit;
  selector_context.mmmi.reference_scoring = options.mmmi_reference;
  selector_context.target = &target;
  selector_context.rank_attribute = options.rank_attribute;
  selector_context.oracle_index = &backend.index();
  if (dt.has_value()) selector_context.domain = &*dt;
  DEEPCRAWL_ASSIGN_OR_RETURN(
      std::unique_ptr<QuerySelector> selector,
      MakeSelectorByName(options.policy, selector_context));

  CrawlOptions crawl_options;
  crawl_options.max_rounds = static_cast<uint64_t>(options.max_rounds);
  crawl_options.use_keyword_interface = options.keyword;
  if (options.target_coverage > 0.0) {
    crawl_options.target_records = static_cast<uint64_t>(
        options.target_coverage *
        static_cast<double>(target.num_records()));
  }
  if (options.saturation > 0.0) {
    crawl_options.saturation_records = static_cast<uint64_t>(
        options.saturation * static_cast<double>(target.num_records()));
  }

  if (options.checkpoint_every < 0) {
    return Status::InvalidArgument("--checkpoint-every must be >= 0");
  }
  if (options.checkpoint_every > 0 && options.checkpoint.empty()) {
    return Status::InvalidArgument(
        "--checkpoint-every needs --checkpoint=<path>");
  }
  FaultyServer* faulty_ptr = faulty.has_value() ? &*faulty : nullptr;
  EngineOptions engine_options;
  engine_options.threads = static_cast<uint32_t>(options.threads);
  engine_options.batch = static_cast<uint32_t>(options.batch);
  engine_options.checkpoint_every_waves =
      static_cast<uint64_t>(options.checkpoint_every);
  if (net_executor.has_value()) {
    engine_options.shared_executor = &*net_executor;
  }
  if (options.checkpoint_every > 0) {
    engine_options.checkpoint_sink =
        [faulty_ptr, path = options.checkpoint](const CrawlEngine& engine) {
          return SaveCrawlCheckpoint(engine, faulty_ptr, path);
        };
  }
  // A network crawl keeps the retry policy even without local fault
  // flags: transient socket-level kUnavailable must be paced, not fatal.
  bool use_retry = faults_enabled || network;
  CrawlEngine engine(*server, *selector, store, crawl_options, engine_options,
                     /*abort_policy=*/nullptr,
                     use_retry ? &retry_policy : nullptr);
  if (parallel) {
    std::cout << "parallel engine: " << options.threads << " threads, batch "
              << options.batch << ", simulated latency "
              << options.latency_us << "us/fetch\n";
  }
  if (!options.resume_from.empty()) {
    // Restores the full crawl state (store, selector, retry queues,
    // parked slots, clock, trace, fault-proxy RNG). The command line
    // must rebuild the same stack the checkpoint was taken from; the
    // budgets below are then re-applied so a resume can raise them.
    DEEPCRAWL_RETURN_IF_ERROR(
        LoadCrawlCheckpoint(options.resume_from, engine, faulty_ptr));
    engine.set_max_rounds(crawl_options.max_rounds);
    engine.set_target_records(crawl_options.target_records);
    std::cout << "resumed from " << options.resume_from << ": "
              << engine.store().num_records() << " records, "
              << engine.rounds_used() << " rounds, "
              << engine.waves_completed() << " waves\n";
  } else if (adv.has_value()) {
    // Every policy starts from the hierarchy root: it matches every
    // record, so the comparison is fair and no policy luckily seeds
    // inside a decoy cluster.
    engine.AddSeed(adv->root_value);
  } else {
    Pcg32 rng(static_cast<uint64_t>(options.seed));
    for (int64_t i = 0; i < options.num_seeds; ++i) {
      ValueId seed_value = rng.NextBounded(
          static_cast<uint32_t>(target.num_distinct_values()));
      while (target.value_frequency(seed_value) == 0) {
        seed_value = static_cast<ValueId>(
            (seed_value + 1) % target.num_distinct_values());
      }
      engine.AddSeed(seed_value);
    }
  }

  DEEPCRAWL_ASSIGN_OR_RETURN(CrawlResult result, engine.Run());
  if (options.checkpoint_every > 0) {
    std::cout << "checkpoints: every " << options.checkpoint_every
              << " waves to " << options.checkpoint << " ("
              << engine.waves_completed() << " waves completed)\n";
  }

  double coverage = target.num_records() == 0
                        ? 0.0
                        : static_cast<double>(result.records) /
                              static_cast<double>(target.num_records());
  ChaoEstimate chao = Chao1Estimate(store);
  std::cout << "\npolicy " << selector->name() << " ("
            << StopReasonToString(result.stop_reason) << ")\n"
            << "  records harvested:  " << result.records << " ("
            << TablePrinter::FormatPercent(coverage, 1) << " coverage)\n"
            << "  communication:      " << result.rounds << " rounds, "
            << result.queries << " queries\n"
            << "  online size est.:   "
            << TablePrinter::FormatDouble(chao.estimated_total, 0)
            << " records (Chao1)\n";
  if (result.rtt.fetches > 0) {
    // Simulated (--latency-us) and measured (--connect) round trips
    // report through the same counters (see RttCounters).
    std::cout << "  round-trip time:    mean "
              << TablePrinter::FormatDouble(result.rtt.MeanUs(), 1)
              << "us (min " << result.rtt.min_rtt_us << "us, max "
              << result.rtt.max_rtt_us << "us, over " << result.rtt.fetches
              << " fetches)\n";
  }
  if (net_client) {
    std::cout << "  network:            " << options.connections
              << " connections, " << net_client->reconnects()
              << " reconnects\n";
  }
  if (adv.has_value() && adv->opt_queries > 0) {
    double ratio = static_cast<double>(result.queries) /
                   static_cast<double>(adv->opt_queries);
    std::cout << "  competitive: queries=" << result.queries
              << " opt=" << adv->opt_queries
              << " ratio=" << TablePrinter::FormatDouble(ratio, 3) << "\n";
  }
  if (store_options.layout == LocalStore::Layout::kPaged) {
    const PageCacheStats& cache = store.paged_cache_stats();
    uint64_t accesses = cache.hits + cache.misses;
    double hit_rate = accesses == 0 ? 0.0
                                    : static_cast<double>(cache.hits) /
                                          static_cast<double>(accesses);
    std::cout << "  page cache:         " << cache.hits << " hits, "
              << cache.misses << " misses ("
              << TablePrinter::FormatPercent(hit_rate, 1) << " hit rate), "
              << cache.evictions << " evictions, " << cache.writebacks
              << " writebacks\n";
  }
  if (use_retry) {
    const ResilienceCounters& res = result.resilience;
    std::cout << "  resilience:         " << res.transient_failures
              << " failures, " << res.retries << " retries ("
              << res.backoff_ticks << " backoff ticks), " << res.requeues
              << " re-queues, " << res.abandoned_values << " abandoned\n";
  }

  if (!options.trace_csv.empty()) {
    std::ofstream file(options.trace_csv);
    if (!file) {
      return Status::NotFound("cannot create '" + options.trace_csv + "'");
    }
    DEEPCRAWL_RETURN_IF_ERROR(WriteTraceCsv(result.trace, file));
    std::cout << "  trace written to:   " << options.trace_csv << "\n";
  }
  if (!options.output_tsv.empty()) {
    DEEPCRAWL_RETURN_IF_ERROR(
        WriteHarvest(target, store, options.output_tsv));
    std::cout << "  harvest written to: " << options.output_tsv << "\n";
  }
  return Status::OK();
}

}  // namespace
}  // namespace deepcrawl

int main(int argc, char** argv) {
  using namespace deepcrawl;
  Options options;
  FlagParser parser;
  RegisterWorkloadFlags(parser, &options.workload);
  parser.AddString("policy", &options.policy, kKnownPolicies);
  parser.AddString("rank-attribute", &options.rank_attribute,
                   "attribute carrying r<lo>-<hi> interval values for "
                   "--policy=opt-rank/opt-threshold");
  parser.AddBool("mmmi-reference", &options.mmmi_reference,
                 "score MMMI batches with the pre-optimization postings "
                 "rescan instead of the incremental counters (identical "
                 "output, slower; for differential checks / A-B timing)");
  parser.AddString("domain-input", &options.domain_input,
                   "TSV with a same-domain sample database (builds the "
                   "domain statistics table)");
  parser.AddInt64("page-size", &options.page_size,
                  "records per result page (k)");
  parser.AddInt64("result-limit", &options.result_limit,
                  "max retrievable records per query (0 = unlimited)");
  parser.AddBool("counts", &options.counts,
                 "server reports total match counts (--no-counts to "
                 "disable)");
  parser.AddBool("keyword", &options.keyword,
                 "crawl through the keyword box instead of typed fields");
  parser.AddInt64("max-rounds", &options.max_rounds,
                  "communication-round budget (0 = unbounded)");
  parser.AddDouble("target-coverage", &options.target_coverage,
                   "stop at this fraction of the target's records "
                   "(0 = crawl to exhaustion)");
  parser.AddDouble("saturation", &options.saturation,
                   "coverage at which MMMI switches on");
  parser.AddInt64("seeds", &options.num_seeds,
                  "number of random seed values");
  parser.AddInt64("seed", &options.seed, "RNG seed for seed-value choice");
  parser.AddString("trace-csv", &options.trace_csv,
                   "write the rounds/records trace to this CSV");
  parser.AddString("output-tsv", &options.output_tsv,
                   "write the harvested records to this TSV");
  RegisterFaultFlags(parser, &options.fault);
  parser.AddInt64("retry-attempts", &options.retry_attempts,
                  "max fetch attempts per value drain under faults");
  parser.AddInt64("retry-requeues", &options.retry_requeues,
                  "times a failed value is re-queued before abandonment");
  parser.AddInt64("threads", &options.threads,
                  "fetch worker threads (>1 engages the parallel batched "
                  "engine; wall-clock only, never changes results)");
  parser.AddInt64("batch", &options.batch,
                  "concurrent drain slots per wave (>1 engages the "
                  "parallel engine; batch=1 reproduces the serial crawl "
                  "order exactly)");
  parser.AddInt64("latency-us", &options.latency_us,
                  "simulated per-fetch network latency in microseconds "
                  "(parallel engine only; overlapped across threads)");
  parser.AddString("connect", &options.connect,
                   "crawl a remote WebDB at host:port (deepcrawl_serve) "
                   "instead of simulating in-process; workload flags must "
                   "match the server's");
  parser.AddInt64("connections", &options.connections,
                  "TCP connections the network executor pipelines each "
                  "wave over (with --connect)");
  parser.AddInt64("connect-retry-ms", &options.connect_retry_ms,
                  "total budget for re-reaching a dead server before a "
                  "fetch fails with unavailable (with --connect)");
  parser.AddString("checkpoint", &options.checkpoint,
                   "write a resumable crawl checkpoint to this path "
                   "(atomically replaced at every boundary)");
  parser.AddInt64("checkpoint-every", &options.checkpoint_every,
                  "checkpoint after every N completed waves "
                  "(0 = never; needs --checkpoint)");
  parser.AddString("resume-from", &options.resume_from,
                   "resume a crawl from this checkpoint file; the other "
                   "flags must rebuild the stack it was taken from "
                   "(--max-rounds/--target-coverage may be raised)");
  parser.AddString("layout", &options.layout,
                   "statistics-table layout: csr (in-memory default), "
                   "reference (pre-optimization containers), or paged "
                   "(out-of-core page cache; needs --store-dir)");
  parser.AddString("store-dir", &options.store_dir,
                   "directory for the paged store's page and manifest "
                   "files (with --layout=paged)");
  parser.AddInt64("page-bytes", &options.page_bytes,
                  "paged-store page size in bytes (power of two >= 64)");
  parser.AddInt64("cache-pages", &options.cache_pages,
                  "paged-store page-cache capacity in frames; the crawl's "
                  "resident set is about page-bytes * cache-pages");
  parser.AddBool("list-selectors", &options.list_selectors,
                 "print every registered selection policy and exit");
  parser.AddBool("help", &options.help, "print this help");

  Status parsed = parser.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.ToString() << "\n\nflags:\n"
              << parser.HelpText();
    return 2;
  }
  if (options.help) {
    std::cout << "deepcrawl_crawl — query-selection crawling of a "
                 "(simulated) hidden-Web database\n\nflags:\n"
              << parser.HelpText();
    return 0;
  }
  if (options.list_selectors) {
    std::cout << FormatSelectorList();
    return 0;
  }
  Status status = Run(options);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
