// OracleSelector: greedy selection on the TRUE harvest rate.
//
// §2.5 defines the locally optimal strategy: always issue the candidate
// with the maximum true harvest rate
//
//   HR(q) = (num(q, DB) - num(q, DBlocal)) / cost(q, DB).
//
// A real crawler cannot compute this (num(q, DB) is unknown before
// querying), so this selector CHEATS: it is handed the ground-truth
// inverted index and serves as the offline near-optimal baseline that
// the online policies are measured against in the ablation benches.
//
// num(q, DBlocal) only grows, so the true HR of a fixed candidate only
// shrinks; the selector therefore uses the same lazy max-heap pattern as
// GreedyLinkSelector with guaranteed-fresh pops.

#ifndef DEEPCRAWL_CRAWLER_ORACLE_SELECTOR_H_
#define DEEPCRAWL_CRAWLER_ORACLE_SELECTOR_H_

#include <cstdint>
#include <queue>
#include <string_view>
#include <vector>

#include "src/crawler/local_store.h"
#include "src/crawler/query_selector.h"
#include "src/index/inverted_index.h"

namespace deepcrawl {

class OracleSelector : public QuerySelector {
 public:
  // `truth` is the target database's real index; `page_size`/`result_limit`
  // must mirror the server options so costs match (limit 0 = unlimited).
  OracleSelector(const LocalStore& store, const InvertedIndex& truth,
                 uint32_t page_size, uint32_t result_limit = 0);

  void OnValueDiscovered(ValueId v) override;
  void OnRecordHarvested(uint32_t slot) override;
  ValueId SelectNext() override;
  std::string_view name() const override { return "oracle"; }

  // True harvest rate of `v` under the current DBlocal.
  double TrueHarvestRate(ValueId v) const;

 private:
  struct HeapEntry {
    double rate;
    ValueId value;
    bool operator<(const HeapEntry& other) const {
      if (rate != other.rate) return rate < other.rate;
      return value > other.value;
    }
  };

  bool IsPending(ValueId v) const {
    return v < pending_.size() && pending_[v] != 0;
  }

  const LocalStore& store_;
  const InvertedIndex& truth_;
  uint32_t page_size_;
  uint32_t result_limit_;
  std::priority_queue<HeapEntry> heap_;
  std::vector<char> pending_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_ORACLE_SELECTOR_H_
