#include "src/server/faulty_server.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/util/checkpoint_io.h"
#include "src/util/logging.h"

namespace deepcrawl {

namespace {

// SplitMix64 finalizer (same construction as the retry-jitter hash):
// stateless, so keyed fault decisions depend only on their inputs.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a over text queries: stable across runs and platforms (std::hash
// makes no such promise), so keyed fault streams stay reproducible.
uint64_t HashText(std::string_view text) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Query-identity keys. The leading tag separates the five interface
// methods so e.g. FetchPage(v) and FetchPageKeywordOf(v) draw
// independent fault streams.
uint64_t KeyOfValue(uint64_t tag, ValueId value) {
  return Mix64((tag << 56) ^ value);
}

uint64_t KeyOfText(uint64_t tag, uint64_t attr, std::string_view text) {
  return Mix64((tag << 56) ^ (attr << 40) ^ HashText(text));
}

uint64_t KeyOfValues(uint64_t tag, std::span<const ValueId> values) {
  uint64_t h = tag << 56;
  for (ValueId v : values) h = Mix64(h ^ v);
  return h;
}

}  // namespace

FaultyServer::FaultyServer(QueryInterface& inner, FaultProfile profile,
                           uint64_t seed)
    : inner_(inner), profile_(profile), seed_(seed), rng_(seed) {
  double sum = profile_.unavailable_rate + profile_.timeout_rate +
               profile_.rate_limit_rate + profile_.truncate_rate +
               profile_.duplicate_rate;
  DEEPCRAWL_CHECK(sum <= 1.0 + 1e-9) << "fault rates sum to " << sum;
  DEEPCRAWL_CHECK(profile_.unavailable_rate >= 0.0 &&
                  profile_.timeout_rate >= 0.0 &&
                  profile_.rate_limit_rate >= 0.0 &&
                  profile_.truncate_rate >= 0.0 &&
                  profile_.duplicate_rate >= 0.0)
      << "fault rates must be non-negative";
}

void FaultyServer::set_schedule(FaultSchedule schedule) {
  schedule_ = std::move(schedule);
  schedule_pos_ = 0;
}

uint64_t FaultyServer::DeriveSourceSeed(uint64_t fleet_seed,
                                        uint32_t source_id) {
  // The source_id-th output of a SplitMix64 generator seeded with
  // fleet_seed: state after source_id increments, finalized. Stateless
  // per pair, so no source's seed depends on any other source existing.
  return Mix64(fleet_seed +
               0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(source_id));
}

FaultAction FaultyServer::NextAction(uint64_t query_key,
                                     uint32_t page_number) {
  // The chaos override wins over everything and draws nothing: engaging
  // or clearing it mid-crawl leaves the schedule cursor, RNG, and keyed
  // attempt table exactly where they were.
  if (forced_action_.has_value()) return *forced_action_;
  if (schedule_pos_ < schedule_.size()) return schedule_[schedule_pos_++];
  if (profile_.IsAllZero()) return FaultAction::kNone;
  double u;
  if (keyed_) {
    // Keyed draw: a pure function of (seed, query, page, attempt) —
    // identical for the same logical fetch no matter the arrival order.
    uint64_t page_key =
        Mix64(query_key ^ (static_cast<uint64_t>(page_number) << 32));
    uint32_t attempt = ++keyed_attempts_[page_key];
    uint64_t h = Mix64(seed_ ^ Mix64(page_key ^ attempt));
    u = static_cast<double>(h >> 11) * 0x1.0p-53;
  } else {
    // One uniform draw per fetch keeps the decision sequence a pure
    // function of (seed, call index), independent of which fault fires.
    u = rng_.NextDouble();
  }
  double threshold = profile_.unavailable_rate;
  if (u < threshold) return FaultAction::kUnavailable;
  threshold += profile_.timeout_rate;
  if (u < threshold) return FaultAction::kTimeout;
  threshold += profile_.rate_limit_rate;
  if (u < threshold) return FaultAction::kRateLimit;
  threshold += profile_.truncate_rate;
  if (u < threshold) return FaultAction::kTruncate;
  threshold += profile_.duplicate_rate;
  if (u < threshold) return FaultAction::kDuplicate;
  return FaultAction::kNone;
}

Status FaultyServer::InjectFailure(FaultAction action, uint32_t page_number) {
  // The rejected round trip still happened: charge it here, because the
  // backend never saw the call.
  ++injected_failure_rounds_;
  if (page_number == 0) ++injected_failure_queries_;
  switch (action) {
    case FaultAction::kUnavailable:
      ++counters_.unavailable;
      return Status::Unavailable("source temporarily unavailable");
    case FaultAction::kTimeout:
      ++counters_.timeouts;
      return Status::DeadlineExceeded("page fetch timed out");
    case FaultAction::kRateLimit:
      ++counters_.rate_limited;
      return Status::ResourceExhausted("rate limited")
          .WithRetryAfter(profile_.retry_after_rounds);
    default:
      break;
  }
  DEEPCRAWL_CHECK(false) << "not a failure action";
  return Status::Internal("unreachable");
}

void FaultyServer::MutatePage(FaultAction action, ResultPage& page) {
  if (action == FaultAction::kTruncate) {
    // Silently drop the trailing half of the page (at least one record).
    // `has_more` is left untouched: the client cannot tell the listing
    // was short, exactly like a flaky real-world result page.
    if (page.records.empty()) return;
    size_t drop = std::max<size_t>(1, page.records.size() / 2);
    page.records.resize(page.records.size() - drop);
    ++counters_.truncated_pages;
    return;
  }
  if (action == FaultAction::kDuplicate) {
    // Echo the first record again in the last slot, silently hiding the
    // record that was there.
    if (page.records.size() < 2) return;
    page.records.back() = page.records.front();
    ++counters_.duplicated_records;
    return;
  }
}

template <typename Fetch>
StatusOr<ResultPage> FaultyServer::Dispatch(uint64_t query_key,
                                            uint32_t page_number,
                                            Fetch&& fetch) {
  FaultAction action = NextAction(query_key, page_number);
  switch (action) {
    case FaultAction::kUnavailable:
    case FaultAction::kTimeout:
    case FaultAction::kRateLimit:
      return InjectFailure(action, page_number);
    default:
      break;
  }
  StatusOr<ResultPage> fetched = fetch();
  if (fetched.ok() && action != FaultAction::kNone) {
    MutatePage(action, *fetched);
  }
  return fetched;
}

StatusOr<ResultPage> FaultyServer::FetchPage(ValueId value,
                                             uint32_t page_number) {
  return Dispatch(KeyOfValue(1, value), page_number,
                  [&] { return inner_.FetchPage(value, page_number); });
}

StatusOr<ResultPage> FaultyServer::FetchPageByText(AttributeId attr,
                                                   std::string_view text,
                                                   uint32_t page_number) {
  return Dispatch(KeyOfText(2, attr, text), page_number, [&] {
    return inner_.FetchPageByText(attr, text, page_number);
  });
}

StatusOr<ResultPage> FaultyServer::FetchPageByKeyword(std::string_view text,
                                                      uint32_t page_number) {
  return Dispatch(KeyOfText(3, 0, text), page_number, [&] {
    return inner_.FetchPageByKeyword(text, page_number);
  });
}

StatusOr<ResultPage> FaultyServer::FetchPageConjunctive(
    std::span<const ValueId> values, uint32_t page_number) {
  return Dispatch(KeyOfValues(4, values), page_number, [&] {
    return inner_.FetchPageConjunctive(values, page_number);
  });
}

StatusOr<ResultPage> FaultyServer::FetchPageKeywordOf(ValueId value,
                                                      uint32_t page_number) {
  return Dispatch(KeyOfValue(5, value), page_number, [&] {
    return inner_.FetchPageKeywordOf(value, page_number);
  });
}

void FaultyServer::ResetMeters() {
  inner_.ResetMeters();
  injected_failure_rounds_ = 0;
  injected_failure_queries_ = 0;
}

void FaultyServer::SaveState(CheckpointWriter& writer) const {
  // Fingerprint first (verified on load), then the mutable state.
  writer.WriteU64(seed_);
  writer.WriteDouble(profile_.unavailable_rate);
  writer.WriteDouble(profile_.timeout_rate);
  writer.WriteDouble(profile_.rate_limit_rate);
  writer.WriteDouble(profile_.truncate_rate);
  writer.WriteDouble(profile_.duplicate_rate);
  writer.WriteU32(profile_.retry_after_rounds);
  writer.WriteU8(keyed_ ? 1 : 0);
  writer.WriteU64(schedule_.size());
  writer.WriteU64(schedule_pos_);
  writer.WriteU64(rng_.state());
  writer.WriteU64(rng_.inc());
  // Sorted by page key, so the encoding is independent of hash-map order.
  std::vector<std::pair<uint64_t, uint32_t>> attempts(keyed_attempts_.begin(),
                                                      keyed_attempts_.end());
  std::sort(attempts.begin(), attempts.end());
  writer.WriteU64(attempts.size());
  for (const auto& [page_key, count] : attempts) {
    writer.WriteU64(page_key);
    writer.WriteU32(count);
  }
  writer.WriteU64(injected_failure_rounds_);
  writer.WriteU64(injected_failure_queries_);
  writer.WriteU64(counters_.unavailable);
  writer.WriteU64(counters_.timeouts);
  writer.WriteU64(counters_.rate_limited);
  writer.WriteU64(counters_.truncated_pages);
  writer.WriteU64(counters_.duplicated_records);
}

Status FaultyServer::LoadState(CheckpointReader& reader) {
  uint64_t seed = reader.ReadU64();
  FaultProfile profile;
  profile.unavailable_rate = reader.ReadDouble();
  profile.timeout_rate = reader.ReadDouble();
  profile.rate_limit_rate = reader.ReadDouble();
  profile.truncate_rate = reader.ReadDouble();
  profile.duplicate_rate = reader.ReadDouble();
  profile.retry_after_rounds = reader.ReadU32();
  bool keyed = reader.ReadU8() != 0;
  uint64_t schedule_size = reader.ReadU64();
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());
  if (seed != seed_ || keyed != keyed_ ||
      schedule_size != schedule_.size() ||
      profile.unavailable_rate != profile_.unavailable_rate ||
      profile.timeout_rate != profile_.timeout_rate ||
      profile.rate_limit_rate != profile_.rate_limit_rate ||
      profile.truncate_rate != profile_.truncate_rate ||
      profile.duplicate_rate != profile_.duplicate_rate ||
      profile.retry_after_rounds != profile_.retry_after_rounds) {
    return Status::InvalidArgument(
        "checkpoint fault-setup mismatch: seed, profile, keyed mode, or "
        "schedule differs from the checkpointing run");
  }
  uint64_t schedule_pos = reader.ReadU64();
  uint64_t rng_state = reader.ReadU64();
  uint64_t rng_inc = reader.ReadU64();
  if (reader.ok() && schedule_pos > schedule_.size()) {
    reader.MarkCorrupt("fault-schedule position past the schedule's end");
  }
  DEEPCRAWL_RETURN_IF_ERROR(reader.status());
  schedule_pos_ = static_cast<size_t>(schedule_pos);
  rng_.RestoreRaw(rng_state, rng_inc);
  keyed_attempts_.clear();
  uint64_t attempts = reader.ReadCount(12);
  for (uint64_t i = 0; i < attempts && reader.ok(); ++i) {
    uint64_t page_key = reader.ReadU64();
    uint32_t count = reader.ReadU32();
    if (!keyed_attempts_.emplace(page_key, count).second) {
      reader.MarkCorrupt("duplicate page key in keyed-attempt table");
    }
  }
  injected_failure_rounds_ = reader.ReadU64();
  injected_failure_queries_ = reader.ReadU64();
  counters_.unavailable = reader.ReadU64();
  counters_.timeouts = reader.ReadU64();
  counters_.rate_limited = reader.ReadU64();
  counters_.truncated_pages = reader.ReadU64();
  counters_.duplicated_records = reader.ReadU64();
  return reader.status();
}

}  // namespace deepcrawl
