// Estimating a hidden database's size by overlap analysis (§5).
//
// A crawler often needs the target's size (for coverage-based stopping
// criteria) but Web sources rarely disclose it. This example runs
// several budget-capped crawls from random seeds against a database of
// known size, forms all pairwise capture-recapture estimates, and prints
// the t-based confidence bound next to the truth.

#include <iostream>
#include <memory>

#include "src/crawler/naive_selectors.h"
#include "src/datagen/canned_workloads.h"
#include "src/datagen/workload_config.h"
#include "src/estimate/size_estimator.h"
#include "src/server/web_db_server.h"
#include "src/util/table_printer.h"

using namespace deepcrawl;

int main() {
  StatusOr<Table> generated =
      GenerateTable(DblpConfig(/*scale=*/0.004, /*seed=*/31));
  if (!generated.ok()) {
    std::cerr << generated.status().ToString() << "\n";
    return 1;
  }
  const Table& db = *generated;
  WebDbServer server(db, ServerOptions{});

  SizeEstimationOptions options;
  options.num_crawls = 6;
  options.rounds_per_crawl = db.num_records() / 6;
  options.confidence = 0.90;
  options.seed = 7;

  uint64_t next_seed = 500;
  StatusOr<SizeEstimationReport> report = EstimateDatabaseSize(
      server,
      [&next_seed](const LocalStore&) {
        return std::make_unique<RandomSelector>(++next_seed);
      },
      options);
  if (!report.ok()) {
    std::cerr << report.status().ToString() << "\n";
    return 1;
  }

  std::cout << options.num_crawls << " independent crawls of "
            << options.rounds_per_crawl << " rounds each harvested:";
  for (size_t size : report->crawl_sizes) std::cout << " " << size;
  std::cout << " records\n\n";

  TablePrinter estimates({"pair", "capture-recapture estimate"});
  for (size_t i = 0; i < report->pairwise_estimates.size(); ++i) {
    estimates.AddRow(
        {std::to_string(i + 1),
         TablePrinter::FormatDouble(report->pairwise_estimates[i], 0)});
  }
  estimates.Print(std::cout);
  if (report->disjoint_pairs > 0) {
    std::cout << "(" << report->disjoint_pairs
              << " pairs had no overlap and were skipped)\n";
  }

  const TTestResult& t = report->t_test;
  std::cout << "\nmean estimate " << TablePrinter::FormatDouble(t.mean, 0)
            << ", 90% confidence interval ["
            << TablePrinter::FormatDouble(t.ci_lower, 0) << ", "
            << TablePrinter::FormatDouble(t.ci_upper, 0) << "]\n"
            << "one-sided bound: with 90% confidence the database holds "
               "fewer than "
            << TablePrinter::FormatDouble(t.one_sided_upper, 0)
            << " records\ntrue size: " << db.num_records() << "\n";
  return 0;
}
