#include "src/util/random.h"

#include <unordered_set>

namespace deepcrawl {

std::vector<uint32_t> Pcg32::SampleWithoutReplacement(uint32_t population,
                                                      uint32_t count) {
  DEEPCRAWL_CHECK_LE(count, population)
      << "cannot sample " << count << " from population " << population;
  // Floyd's algorithm: O(count) expected time, O(count) space.
  std::unordered_set<uint32_t> chosen;
  std::vector<uint32_t> result;
  result.reserve(count);
  for (uint32_t j = population - count; j < population; ++j) {
    uint32_t t = NextBounded(j + 1);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

}  // namespace deepcrawl
