// Schema: the queriable attributes of a structured Web database.
//
// Mirrors Definition 2.2 of the paper: the crawler views a Web database
// as one universal relational table with a set of queriable attributes.
// Attributes may be multi-valued (e.g. "Authors" in a publication
// database); per §5, multi-valued attributes are flattened into a single
// searchable column, which the Table representation below supports by
// letting a record carry several values of the same attribute.

#ifndef DEEPCRAWL_RELATION_SCHEMA_H_
#define DEEPCRAWL_RELATION_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/relation/types.h"
#include "src/util/status.h"

namespace deepcrawl {

// Declares one queriable attribute.
struct AttributeDef {
  std::string name;
  // True when a record may carry several values of this attribute
  // (authors, actors, ...).
  bool multi_valued = false;
};

// Ordered collection of attribute definitions with name lookup.
class Schema {
 public:
  Schema() = default;

  // Adds an attribute; fails with kAlreadyExists on duplicate names.
  StatusOr<AttributeId> AddAttribute(std::string name,
                                     bool multi_valued = false);

  // Returns the id for `name`, or kNotFound.
  StatusOr<AttributeId> FindAttribute(std::string_view name) const;

  size_t num_attributes() const { return attributes_.size(); }
  const AttributeDef& attribute(AttributeId id) const;
  const std::vector<AttributeDef>& attributes() const { return attributes_; }

 private:
  std::vector<AttributeDef> attributes_;
  std::unordered_map<std::string, AttributeId> by_name_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_RELATION_SCHEMA_H_
