# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/deepcrawl_crawler_tests[1]_include.cmake")
include("/root/repo/build/tests/deepcrawl_util_tests[1]_include.cmake")
include("/root/repo/build/tests/deepcrawl_relation_tests[1]_include.cmake")
include("/root/repo/build/tests/deepcrawl_server_tests[1]_include.cmake")
include("/root/repo/build/tests/deepcrawl_graph_tests[1]_include.cmake")
include("/root/repo/build/tests/deepcrawl_crawler_policy_tests[1]_include.cmake")
include("/root/repo/build/tests/deepcrawl_domain_tests[1]_include.cmake")
include("/root/repo/build/tests/deepcrawl_estimate_datagen_tests[1]_include.cmake")
include("/root/repo/build/tests/deepcrawl_integration_tests[1]_include.cmake")
