# Empty dependencies file for deepcrawl_relation_tests.
# This may be replaced when dependencies are built.
