// Figure 2 — "Case study: Relational Link Degree Distribution".
//
// The paper plots log(frequency) vs log(degree) for the attribute-value
// graphs of DBLP and IMDB (and the ACM Digital Library, omitted there
// for space) and observes distributions very close to power laws: a few
// hub values and a sparsely-connected "massive many".
//
// This harness builds the AVG of each regenerated database, prints the
// log-binned log-log series (the figure's points), and reports the
// fitted power-law exponent and R^2.

#include <iostream>

#include "bench/bench_common.h"
#include "src/datagen/canned_workloads.h"
#include "src/graph/attribute_value_graph.h"
#include "src/graph/power_law.h"
#include "src/util/table_printer.h"

namespace {
constexpr double kScale = 0.1;
}

int main() {
  using namespace deepcrawl;
  bench::PrintBanner(
      "Figure 2: AVG degree distributions are power-law (DBLP, IMDB, ACM)",
      "log-log degree/frequency scatter of the real DBLP / IMDB / ACM-DL "
      "database graphs",
      "AVGs of the regenerated databases at scale " +
          TablePrinter::FormatDouble(kScale, 2) +
          ", log-binned, least-squares fit");

  for (const SyntheticDbConfig& config :
       {DblpConfig(kScale), ImdbConfig(kScale), AcmDlConfig(kScale)}) {
    StatusOr<Table> generated = GenerateTable(config);
    DEEPCRAWL_CHECK(generated.ok()) << generated.status().ToString();
    AttributeValueGraph graph = AttributeValueGraph::Build(*generated);
    PowerLawFit fit =
        FitPowerLaw(ToLogBinnedPoints(graph.DegreeHistogram(), 2.0));

    std::cout << config.name << ": vertices="
              << TablePrinter::FormatCount(graph.num_vertices())
              << " edges=" << TablePrinter::FormatCount(graph.num_edges())
              << "  power-law exponent="
              << TablePrinter::FormatDouble(fit.exponent, 2)
              << "  R^2=" << TablePrinter::FormatDouble(fit.r_squared, 3)
              << "\n";
    TablePrinter series({"log10(degree)", "log10(frequency)"});
    for (const LogLogPoint& point : fit.points) {
      series.AddRow({TablePrinter::FormatDouble(point.log10_degree, 3),
                     TablePrinter::FormatDouble(point.log10_frequency, 3)});
    }
    series.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "paper observation: \"the degree distribution of the "
               "attribute value graph is very close to power-law\" — a "
               "near-linear log-log series with high R^2 reproduces it.\n";
  return 0;
}
