// ChaosSchedule: scripted fleet-level fault windows (DESIGN.md §11).
//
// The per-fetch FaultProfile models steady-state background noise; the
// chaos schedule scripts the *correlated* failures that actually kill
// crawls in production — a whole source going dark for an hour, a rate-
// limit storm, a flapping host. An event forces one fault action on one
// source for a window of fleet scheduler turns:
//
//   ChaosEvent{source=1, begin_turn=6, end_turn=0, kUnavailable}
//     → source 1 answers nothing from turn 6 onward, forever.
//
// Windows are keyed on the fleet's global turn counter (checkpointed),
// so the forced action for any turn is recomputable after a resume, and
// the override is applied through FaultyServer::set_forced_action, which
// draws no randomness — engaging or clearing chaos never perturbs the
// keyed fault stream underneath. Fleet output therefore stays a pure
// function of (seed, batch, schedule).
//
// Text format (the --chaos flag): semicolon-separated events,
//
//   kind:src[,src...]@begin[-end]
//
// with kind ∈ {dead, timeout, ratelimit}, turns half-open [begin, end),
// and a missing end meaning forever. "hostile" names the canned schedule
// the acceptance tests use (one permanently dead source, two flappers).

#ifndef DEEPCRAWL_FLEET_CHAOS_H_
#define DEEPCRAWL_FLEET_CHAOS_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "src/server/faulty_server.h"
#include "src/util/status.h"

namespace deepcrawl {

struct ChaosEvent {
  uint32_t source = 0;
  uint64_t begin_turn = 0;
  // Exclusive end of the window; 0 = forever.
  uint64_t end_turn = 0;
  FaultAction action = FaultAction::kUnavailable;

  bool operator==(const ChaosEvent&) const = default;
};

using ChaosSchedule = std::vector<ChaosEvent>;

// The action forced on `source` at fleet turn `turn`, or nullopt when no
// event covers it (the source's own FaultProfile applies). When windows
// overlap, the later event in the schedule wins.
std::optional<FaultAction> ForcedActionAt(const ChaosSchedule& schedule,
                                          uint32_t source, uint64_t turn);

// Parses the --chaos text format above; "" → empty schedule, "hostile" →
// HostileChaosSchedule(num_sources). Events naming a source >=
// num_sources are rejected.
StatusOr<ChaosSchedule> ParseChaosSchedule(std::string_view spec,
                                           uint32_t num_sources);

// The acceptance scenario: source 1 permanently dead from turn 6; source
// 2 flaps (unavailable bursts, then timeouts); source 3 suffers a rate-
// limit storm, then flaps. Events naming sources >= num_sources are
// dropped, so the schedule degrades gracefully for small fleets.
ChaosSchedule HostileChaosSchedule(uint32_t num_sources);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_FLEET_CHAOS_H_
