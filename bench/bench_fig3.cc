// Figure 3 — "Performance comparison between the greedy and naive
// methods on four controlled database servers."
//
// Paper setup: four real databases behind mimic Web servers (eBay 20k,
// ACM-DL 150k, DBLP 500k, IMDB 400k records), page size k = 10, no
// result limit; each selection policy crawls to 90% record coverage;
// every policy is run from 4 different seed values and averaged. The
// figure plots communication rounds (y) against coverage 10%..90% (x);
// the greedy link-based selector (GL) consistently dominates, and every
// method's cost climbs steeply past ~80% coverage ("low marginal
// benefit").
//
// This harness reproduces the four panels as tables of rounds-at-
// coverage, averaged over the same number of seeds.

#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/datagen/canned_workloads.h"
#include "src/util/table_printer.h"

namespace {

using namespace deepcrawl;

constexpr int kNumSeeds = 4;
constexpr double kCoverageLevels[] = {0.1, 0.3, 0.5, 0.7, 0.9};

struct PolicyRow {
  std::string name;
  // Average rounds to reach each coverage level.
  double rounds[5] = {0, 0, 0, 0, 0};
};

}  // namespace

int main() {
  bench::PrintBanner(
      "Figure 3: greedy link-based vs naive query selection (4 databases)",
      "eBay 20k / ACM-DL 150k / DBLP 500k / IMDB 400k records; k=10; "
      "crawl to 90% coverage; average of 4 seeds",
      "regenerated databases (eBay x0.10, ACM x0.02, DBLP x0.008, "
      "IMDB x0.01); same protocol");

  struct Panel {
    SyntheticDbConfig config;
  };
  const Panel panels[] = {
      {EbayConfig(0.10)},
      {AcmDlConfig(0.02)},
      {DblpConfig(0.008)},
      {ImdbConfig(0.01)},
  };

  for (const Panel& panel : panels) {
    StatusOr<Table> generated = GenerateTable(panel.config);
    DEEPCRAWL_CHECK(generated.ok()) << generated.status().ToString();
    const Table& db = *generated;
    WebDbServer server(db, ServerOptions{});  // k = 10, no limit

    CrawlOptions options;
    options.target_records =
        static_cast<uint64_t>(0.9 * static_cast<double>(db.num_records()));

    std::vector<PolicyRow> rows;
    for (int policy = 0; policy < 4; ++policy) {
      PolicyRow row;
      for (int s = 0; s < kNumSeeds; ++s) {
        LocalStore store;
        std::unique_ptr<QuerySelector> selector;
        switch (policy) {
          case 0:
            selector = std::make_unique<GreedyLinkSelector>(store);
            break;
          case 1:
            selector = std::make_unique<BfsSelector>();
            break;
          case 2:
            selector = std::make_unique<DfsSelector>();
            break;
          default:
            selector = std::make_unique<RandomSelector>(s + 1);
            break;
        }
        row.name = std::string(selector->name());
        CrawlResult result =
            bench::RunCrawl(server, *selector, store, options,
                            bench::SeedValue(db, static_cast<uint32_t>(s)));
        for (int level = 0; level < 5; ++level) {
          uint64_t target = static_cast<uint64_t>(
              kCoverageLevels[level] * static_cast<double>(db.num_records()));
          // A crawl stuck below a level (disconnected remainder) counts
          // its full cost — the paper's servers are 99% connected, so
          // this is a rare corner.
          row.rounds[level] += static_cast<double>(
              result.trace.RoundsToRecords(target).value_or(result.rounds));
        }
      }
      for (double& r : row.rounds) r /= kNumSeeds;
      rows.push_back(row);
    }

    std::cout << panel.config.name << " ("
              << TablePrinter::FormatCount(db.num_records())
              << " records): avg communication rounds to reach coverage\n";
    TablePrinter table(
        {"policy", "10%", "30%", "50%", "70%", "90%", "vs greedy@90%"});
    double greedy_90 = rows[0].rounds[4];
    for (const PolicyRow& row : rows) {
      table.AddRow({row.name, TablePrinter::FormatDouble(row.rounds[0], 0),
                    TablePrinter::FormatDouble(row.rounds[1], 0),
                    TablePrinter::FormatDouble(row.rounds[2], 0),
                    TablePrinter::FormatDouble(row.rounds[3], 0),
                    TablePrinter::FormatDouble(row.rounds[4], 0),
                    TablePrinter::FormatDouble(row.rounds[4] / greedy_90, 2) +
                        "x"});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout
      << "paper observations reproduced when: (a) greedy-link has the "
         "lowest rounds at every level on every database, and (b) every "
         "policy's cost rises sharply beyond ~70-80% coverage.\n";
  return 0;
}
