// Differential suite for the out-of-core paged store: kPaged must be
// observationally INVISIBLE relative to the in-memory kCsr layout.
//
// For every selection policy × fault profile, serial and parallel
// (--threads 8 --batch 8), a crawl over a paged store with a page
// cache far below the working set (tiny 512-byte pages, 8 frames —
// every wave thrashes) must produce a byte-identical CrawlTrace CSV,
// identical harvest order, meters, clock, and resilience counters to
// the in-memory run. A checkpoint/reopen/resume leg proves the
// manifest protocol restores the paged state mid-crawl with the same
// bit-identity guarantee (the SIGKILL variant of that leg lives in
// tools/check.sh pass 9, on top of the CLI).

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/crawler/crawl_engine.h"
#include "src/crawler/checkpoint.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/crawler/local_store.h"
#include "src/crawler/mmmi_selector.h"
#include "src/crawler/naive_selectors.h"
#include "src/crawler/retry_policy.h"
#include "src/crawler/trace_io.h"
#include "src/datagen/movie_domain.h"
#include "src/server/faulty_server.h"
#include "src/server/locked_interface.h"
#include "src/server/web_db_server.h"
#include "src/util/page_cache.h"

namespace deepcrawl {
namespace {

// Chosen so that no fault profile's keyed faults gut the seed query
// (e.g. seed 29 truncates it under the lossy profile, harvesting zero
// records — a vacuous differential and an idle page cache).
constexpr uint64_t kFaultSeed = 37;
constexpr uint64_t kSelectorSeed = 5;

const char* const kPolicies[] = {"bfs", "dfs", "random", "greedy", "mmmi"};
const char* const kProfiles[] = {"none", "flaky", "lossy", "hostile"};

FaultProfile ProfileByName(const std::string& name) {
  FaultProfile profile;
  if (name == "flaky") {
    profile.unavailable_rate = 0.05;
    profile.timeout_rate = 0.03;
    profile.rate_limit_rate = 0.02;
  } else if (name == "lossy") {
    profile.truncate_rate = 0.05;
    profile.duplicate_rate = 0.05;
  } else if (name == "hostile") {
    profile.unavailable_rate = 0.10;
    profile.timeout_rate = 0.05;
    profile.rate_limit_rate = 0.05;
    profile.truncate_rate = 0.05;
    profile.duplicate_rate = 0.02;
  }
  return profile;
}

std::unique_ptr<QuerySelector> MakeSelector(const std::string& policy,
                                            const LocalStore& store) {
  if (policy == "bfs") return std::make_unique<BfsSelector>();
  if (policy == "dfs") return std::make_unique<DfsSelector>();
  if (policy == "random") {
    return std::make_unique<RandomSelector>(kSelectorSeed);
  }
  if (policy == "greedy") return std::make_unique<GreedyLinkSelector>(store);
  if (policy == "mmmi") {
    return std::make_unique<MmmiSelector>(store, MmmiOptions());
  }
  ADD_FAILURE() << "unknown policy " << policy;
  return nullptr;
}

ValueId FirstQueriableSeed(const Table& table) {
  for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
    if (table.value_frequency(v) > 0) return v;
  }
  ADD_FAILURE() << "table has no queriable value";
  return kInvalidValueId;
}

const Table& DifferentialTarget() {
  static const Table* table = [] {
    MovieDomainPairConfig config;
    config.universe_size = 1500;
    config.target_size = 400;
    config.seed = 7;
    StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
    DEEPCRAWL_CHECK(pair.ok()) << pair.status().ToString();
    return new Table(std::move(pair->target));
  }();
  return *table;
}

CrawlOptions BaseOptions(const Table& target) {
  CrawlOptions options;
  options.saturation_records =
      static_cast<uint64_t>(0.6 * static_cast<double>(target.num_records()));
  return options;
}

struct RunOutput {
  CrawlResult result;
  std::vector<RecordId> harvest_order;
  uint64_t clock_ticks = 0;
  std::string trace_csv;
  uint64_t cache_evictions = 0;
};

// Fresh per-run store directory under the test temp root.
std::string FreshStoreDir(const std::string& tag) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "/paged_diff_" + tag + "_" +
                    std::to_string(counter++);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

LocalStore::Options PagedOptions(const std::string& dir) {
  LocalStore::Options options;
  options.layout = LocalStore::Layout::kPaged;
  options.paged_dir = dir;
  // Tiny pages + 8 frames: ~4KB resident over a multi-hundred-KB
  // working set, so every wave faults and evicts.
  options.page_bytes = 512;
  options.cache_pages = 8;
  return options;
}

RunOutput Capture(const CrawlResult& result, const LocalStore& store,
                  uint64_t clock_ticks) {
  RunOutput out;
  out.result = result;
  out.harvest_order.reserve(store.num_records());
  for (uint32_t slot = 0; slot < store.num_records(); ++slot) {
    out.harvest_order.push_back(store.OriginalRecordId(slot));
  }
  out.clock_ticks = clock_ticks;
  std::ostringstream csv;
  Status written = WriteTraceCsv(result.trace, csv);
  DEEPCRAWL_CHECK(written.ok()) << written.ToString();
  out.trace_csv = csv.str();
  if (store.options().layout == LocalStore::Layout::kPaged) {
    out.cache_evictions = store.paged_cache_stats().evictions;
  }
  return out;
}

// threads == 0 selects the serial engine; otherwise threads/batch.
RunOutput RunLayout(const std::string& policy, const std::string& profile_name,
                    LocalStore::Layout layout, uint32_t threads,
                    uint32_t batch) {
  const Table& target = DifferentialTarget();
  CrawlOptions options = BaseOptions(target);
  WebDbServer backend(target, ServerOptions());
  FaultProfile profile = ProfileByName(profile_name);
  std::optional<FaultyServer> faulty;
  QueryInterface* direct = &backend;
  if (!profile.IsAllZero()) {
    faulty.emplace(backend, profile, kFaultSeed);
    faulty->set_keyed_faults(true);
    direct = &*faulty;
  }
  LocalStore::Options store_options;
  if (layout == LocalStore::Layout::kPaged) {
    store_options = PagedOptions(FreshStoreDir(policy + "_" + profile_name));
  }
  LocalStore store(store_options);
  std::unique_ptr<QuerySelector> selector = MakeSelector(policy, store);
  RetryPolicy retry((RetryPolicyConfig()));
  std::optional<LockedQueryInterface> locked;
  QueryInterface* server = direct;
  EngineOptions engine_options;
  if (threads > 0) {
    locked.emplace(*direct);
    server = &*locked;
    engine_options.threads = threads;
    engine_options.batch = batch;
  }
  CrawlEngine engine(*server, *selector, store, options, engine_options,
                     /*abort_policy=*/nullptr, &retry);
  engine.AddSeed(FirstQueriableSeed(target));
  StatusOr<CrawlResult> result = engine.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();
  return Capture(*result, store, engine.clock().now());
}

void ExpectIdentical(const RunOutput& a, const RunOutput& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.result.stop_reason, b.result.stop_reason);
  EXPECT_EQ(a.result.rounds, b.result.rounds);
  EXPECT_EQ(a.result.queries, b.result.queries);
  EXPECT_EQ(a.result.records, b.result.records);
  EXPECT_EQ(a.result.trace.points(), b.result.trace.points());
  EXPECT_EQ(a.result.resilience, b.result.resilience);
  EXPECT_EQ(a.harvest_order, b.harvest_order);
  EXPECT_EQ(a.clock_ticks, b.clock_ticks);
  EXPECT_EQ(a.trace_csv, b.trace_csv);  // byte-identical serialization
}

// Serial: paged vs in-memory CSR for every policy × fault profile.
TEST(PagedDifferentialTest, SerialAllPoliciesAllProfiles) {
  for (const char* policy : kPolicies) {
    for (const char* profile : kProfiles) {
      RunOutput memory =
          RunLayout(policy, profile, LocalStore::Layout::kCsr, 0, 0);
      RunOutput paged =
          RunLayout(policy, profile, LocalStore::Layout::kPaged, 0, 0);
      ASSERT_GT(paged.cache_evictions, 0u)
          << "cache must thrash or the sweep proves nothing";
      ExpectIdentical(memory, paged,
                      std::string("serial/") + policy + "/" + profile);
    }
  }
}

// Parallel engine at --threads 8 --batch 8. The store is mutated from
// the apply phase only (single-threaded by the engine's design), but
// batched waves change the crawl order, exercising the paged arenas
// under a different access sequence.
TEST(PagedDifferentialTest, ParallelThreads8Batch8AllPolicies) {
  for (const char* policy : kPolicies) {
    for (const char* profile : kProfiles) {
      RunOutput memory =
          RunLayout(policy, profile, LocalStore::Layout::kCsr, 8, 8);
      RunOutput paged =
          RunLayout(policy, profile, LocalStore::Layout::kPaged, 8, 8);
      ASSERT_GT(paged.cache_evictions, 0u);
      ExpectIdentical(memory, paged,
                      std::string("parallel/") + policy + "/" + profile);
    }
  }
}

// Checkpoint mid-crawl, tear the whole stack down, rebuild it over the
// same directory, resume from the checkpoint file, and run to the end:
// the trace must be byte-identical to the uninterrupted paged (and
// in-memory) run. This is the in-process half of the durability story;
// check.sh pass 9 repeats it with a real SIGKILL through the CLI.
TEST(PagedDifferentialTest, CheckpointReopenResumeBitIdentical) {
  const Table& target = DifferentialTarget();
  for (const char* policy : {"greedy", "mmmi"}) {
    for (const char* profile : {"none", "hostile"}) {
      SCOPED_TRACE(std::string(policy) + "/" + profile);
      RunOutput uninterrupted =
          RunLayout(policy, profile, LocalStore::Layout::kCsr, 0, 0);

      std::string dir = FreshStoreDir(std::string("resume_") + policy);
      std::string ckpt = dir + "/crawl.ckpt";
      FaultProfile fault_profile = ProfileByName(profile);

      // Leg 1: crawl with checkpoint-every-8-waves until done; the
      // LAST checkpoint written mid-crawl is what we resume from — so
      // remember the one taken at a fixed early wave instead.
      {
        WebDbServer backend(target, ServerOptions());
        std::optional<FaultyServer> faulty;
        QueryInterface* direct = &backend;
        if (!fault_profile.IsAllZero()) {
          faulty.emplace(backend, fault_profile, kFaultSeed);
          faulty->set_keyed_faults(true);
          direct = &*faulty;
        }
        LocalStore store(PagedOptions(dir));
        std::unique_ptr<QuerySelector> selector = MakeSelector(policy, store);
        RetryPolicy retry((RetryPolicyConfig()));
        CrawlOptions options = BaseOptions(target);
        EngineOptions engine_options;
        engine_options.checkpoint_every_waves = 8;
        bool saved = false;
        FaultyServer* faulty_ptr = faulty.has_value() ? &*faulty : nullptr;
        engine_options.checkpoint_sink = [&](const CrawlEngine& engine) {
          if (saved) return Status::OK();  // keep only the first
          saved = true;
          return SaveCrawlCheckpoint(engine, faulty_ptr, ckpt);
        };
        CrawlEngine engine(*direct, *selector, store, options, engine_options,
                           /*abort_policy=*/nullptr, &retry);
        engine.AddSeed(FirstQueriableSeed(target));
        StatusOr<CrawlResult> result = engine.Run();
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ASSERT_TRUE(saved) << "crawl finished before the first checkpoint";
      }

      // Leg 2: fresh stack over the SAME directory, resume, finish.
      {
        WebDbServer backend(target, ServerOptions());
        std::optional<FaultyServer> faulty;
        QueryInterface* direct = &backend;
        if (!fault_profile.IsAllZero()) {
          faulty.emplace(backend, fault_profile, kFaultSeed);
          faulty->set_keyed_faults(true);
          direct = &*faulty;
        }
        LocalStore::Options store_options = PagedOptions(dir);
        store_options.paged_resume = true;
        LocalStore store(store_options);
        std::unique_ptr<QuerySelector> selector = MakeSelector(policy, store);
        RetryPolicy retry((RetryPolicyConfig()));
        CrawlOptions options = BaseOptions(target);
        CrawlEngine engine(*direct, *selector, store, options, EngineOptions(),
                           /*abort_policy=*/nullptr, &retry);
        ASSERT_TRUE(LoadCrawlCheckpoint(ckpt, engine,
                                        faulty.has_value() ? &*faulty : nullptr)
                        .ok());
        StatusOr<CrawlResult> result = engine.Run();
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        RunOutput resumed = Capture(*result, store, engine.clock().now());
        ExpectIdentical(uninterrupted, resumed, "resumed-vs-uninterrupted");
      }
    }
  }
}

}  // namespace
}  // namespace deepcrawl
