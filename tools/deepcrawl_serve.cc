// deepcrawl_serve — serve a (simulated) WebDB over TCP.
//
// Builds the same target database and fault stack deepcrawl_crawl would
// build in-process — the flag handling is shared, see
// tools/workload_setup.h — and puts it behind a WebDbTcpServer so a
// crawl can run over real sockets:
//
//   deepcrawl_serve --workload=ebay --scale=0.1 --port=9317 &
//   deepcrawl_crawl --workload=ebay --scale=0.1 --policy=greedy ...
//       --connect=127.0.0.1:9317 --connections=8 --batch=32
//
// The crawl side must repeat the workload/interface flags: the client
// builds its selector bookkeeping from a locally constructed catalog
// and verifies the server's ServerInfo matches.
//
// Faults are injected HERE (keyed mode, so decisions depend only on the
// query identity, never on arrival order):
//
//   deepcrawl_serve --workload=ebay --fault-profile=flaky --fault-seed=7
//
// --port=0 picks an ephemeral port; the choice is printed on stdout and
// optionally written to --port-file so scripts can wait for it. SIGINT/
// SIGTERM stop the loop cleanly.

#include <signal.h>

#include <cstdio>
#include <iostream>
#include <optional>
#include <string>

#include "src/net/event_loop.h"
#include "src/net/tcp_server.h"
#include "src/server/faulty_server.h"
#include "src/server/web_db_server.h"
#include "src/util/flags.h"
#include "tools/workload_setup.h"

namespace deepcrawl {
namespace {

struct Options {
  WorkloadFlagOptions workload;
  FaultFlagOptions fault;

  std::string bind = "127.0.0.1";
  int64_t port = 0;
  std::string port_file;
  int64_t page_size = 10;
  int64_t result_limit = 0;
  bool counts = true;
  int64_t max_connections = 1024;
  int64_t shed_retry_after = 4;
  int64_t latency_us = 0;
  bool help = false;
};

EventLoop* g_loop = nullptr;

// EventLoop::Stop is async-signal-safe (atomic flag + eventfd write).
void HandleStopSignal(int) {
  if (g_loop != nullptr) g_loop->Stop();
}

Status Run(const Options& options) {
  std::optional<AdversarialGroundTruth> adv;
  DEEPCRAWL_ASSIGN_OR_RETURN(Table target,
                             LoadTargetTable(options.workload, adv));
  std::cout << "target: " << target.num_records() << " records, "
            << target.num_distinct_values() << " distinct values\n";

  ServerOptions server_options;
  server_options.page_size = static_cast<uint32_t>(options.page_size);
  server_options.result_limit =
      static_cast<uint32_t>(options.result_limit);
  if (adv.has_value() && options.result_limit == 0) {
    server_options.result_limit = adv->result_limit;
  }
  server_options.reports_total_count = options.counts;
  WebDbServer backend(target, server_options);

  DEEPCRAWL_ASSIGN_OR_RETURN(FaultProfile profile,
                             BuildFaultProfile(options.fault));
  std::optional<FaultyServer> faulty;
  if (!profile.IsAllZero()) {
    faulty.emplace(backend, profile,
                   static_cast<uint64_t>(options.fault.fault_seed));
    // Keyed faults always: over TCP the arrival order across
    // connections is not deterministic, so sequential fault RNG would
    // make runs irreproducible (and differ from the in-process crawl
    // the differential tests compare against).
    faulty->set_keyed_faults(true);
    std::cout << "faults: keyed; unavailable=" << profile.unavailable_rate
              << " timeout=" << profile.timeout_rate
              << " rate-limit=" << profile.rate_limit_rate
              << " truncate=" << profile.truncate_rate
              << " duplicate=" << profile.duplicate_rate << "\n";
  }
  QueryInterface& served =
      faulty.has_value() ? static_cast<QueryInterface&>(*faulty) : backend;

  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("--port must be in [0, 65535]");
  }
  if (options.max_connections < 1) {
    return Status::InvalidArgument("--max-connections must be >= 1");
  }
  EventLoop loop;
  DEEPCRAWL_RETURN_IF_ERROR(loop.Init());

  TcpServerOptions tcp_options;
  tcp_options.bind_address = options.bind;
  tcp_options.port = static_cast<uint16_t>(options.port);
  tcp_options.max_connections =
      static_cast<uint32_t>(options.max_connections);
  tcp_options.shed_retry_after_rounds =
      static_cast<uint32_t>(options.shed_retry_after);
  tcp_options.num_values =
      static_cast<uint32_t>(target.num_distinct_values());
  tcp_options.latency_us = static_cast<uint64_t>(options.latency_us);
  WebDbTcpServer server(loop, served, tcp_options);
  DEEPCRAWL_RETURN_IF_ERROR(server.Start());

  // Port first to stdout (flushed) so `deepcrawl_serve ... | head -1`
  // and the port file are both race-free ways to learn the binding.
  std::cout << "listening on " << options.bind << ":" << server.port()
            << std::endl;
  if (!options.port_file.empty()) {
    std::string tmp = options.port_file + ".tmp";
    FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      return Status::NotFound("cannot create '" + tmp + "'");
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
    std::fclose(f);
    if (std::rename(tmp.c_str(), options.port_file.c_str()) != 0) {
      return Status::Internal("cannot rename '" + tmp + "'");
    }
  }

  g_loop = &loop;
  struct sigaction action = {};
  action.sa_handler = HandleStopSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  loop.Run();

  g_loop = nullptr;
  server.Shutdown();
  std::cout << "served " << server.requests_served() << " requests over "
            << server.connections_accepted() << " connections ("
            << server.connections_shed() << " shed, "
            << server.protocol_errors() << " protocol errors)\n";
  return Status::OK();
}

}  // namespace
}  // namespace deepcrawl

int main(int argc, char** argv) {
  using namespace deepcrawl;
  Options options;
  FlagParser parser;
  RegisterWorkloadFlags(parser, &options.workload);
  RegisterFaultFlags(parser, &options.fault);
  parser.AddString("bind", &options.bind, "address to bind");
  parser.AddInt64("port", &options.port,
                  "TCP port (0 = ephemeral; printed and written to "
                  "--port-file)");
  parser.AddString("port-file", &options.port_file,
                   "write the bound port here (atomically) once listening");
  parser.AddInt64("page-size", &options.page_size,
                  "records per result page (k)");
  parser.AddInt64("result-limit", &options.result_limit,
                  "max retrievable records per query (0 = unlimited)");
  parser.AddBool("counts", &options.counts,
                 "report total match counts (--no-counts to disable)");
  parser.AddInt64("max-connections", &options.max_connections,
                  "concurrent-connection cap; extra connections are shed "
                  "with a retryable GoAway");
  parser.AddInt64("shed-retry-after", &options.shed_retry_after,
                  "retry-after hint (rounds) on shed connections");
  parser.AddInt64("latency-us", &options.latency_us,
                  "artificial per-response delay in microseconds");
  parser.AddBool("help", &options.help, "print this help");

  Status parsed = parser.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.ToString() << "\n\nflags:\n"
              << parser.HelpText();
    return 2;
  }
  if (options.help) {
    std::cout << "deepcrawl_serve — serve a (simulated) WebDB over TCP\n\n"
                 "flags:\n"
              << parser.HelpText();
    return 0;
  }
  Status status = Run(options);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
