file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_integration_tests.dir/cross_module_test.cc.o"
  "CMakeFiles/deepcrawl_integration_tests.dir/cross_module_test.cc.o.d"
  "CMakeFiles/deepcrawl_integration_tests.dir/integration_test.cc.o"
  "CMakeFiles/deepcrawl_integration_tests.dir/integration_test.cc.o.d"
  "deepcrawl_integration_tests"
  "deepcrawl_integration_tests.pdb"
  "deepcrawl_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
