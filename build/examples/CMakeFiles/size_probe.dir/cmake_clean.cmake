file(REMOVE_RECURSE
  "CMakeFiles/size_probe.dir/size_probe.cpp.o"
  "CMakeFiles/size_probe.dir/size_probe.cpp.o.d"
  "size_probe"
  "size_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/size_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
