# Empty dependencies file for deepcrawl_crawler_tests.
# This may be replaced when dependencies are built.
