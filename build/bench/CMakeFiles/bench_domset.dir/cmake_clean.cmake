file(REMOVE_RECURSE
  "CMakeFiles/bench_domset.dir/bench_domset.cc.o"
  "CMakeFiles/bench_domset.dir/bench_domset.cc.o.d"
  "bench_domset"
  "bench_domset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_domset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
