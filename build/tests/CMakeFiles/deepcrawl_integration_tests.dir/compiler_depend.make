# Empty compiler generated dependencies file for deepcrawl_integration_tests.
# This may be replaced when dependencies are built.
