// Unit + randomized differential coverage for the flat hash containers
// and the chunked arena backing the CSR hot paths (src/util/flat_hash.h,
// src/util/chunked_arena.h). The random sections drive each container
// against its STL reference under a fixed seed so any divergence is a
// deterministic repro.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/util/chunked_arena.h"
#include "src/util/flat_hash.h"

namespace deepcrawl {
namespace {

TEST(FlatSet64Test, InsertReportsNewness) {
  FlatSet64 set;
  EXPECT_EQ(set.size(), 0u);
  EXPECT_TRUE(set.Insert(42));
  EXPECT_FALSE(set.Insert(42));
  EXPECT_TRUE(set.Insert(7));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(42));
  EXPECT_TRUE(set.Contains(7));
  EXPECT_FALSE(set.Contains(1));
}

TEST(FlatSet64Test, GrowsPastInitialCapacityWithoutLoss) {
  FlatSet64 set;
  // Far past the initial 64 slots; forces several rehashes.
  for (uint64_t k = 1; k <= 10000; ++k) {
    EXPECT_TRUE(set.Insert(k * 2654435761u));
  }
  EXPECT_EQ(set.size(), 10000u);
  for (uint64_t k = 1; k <= 10000; ++k) {
    EXPECT_TRUE(set.Contains(k * 2654435761u));
    EXPECT_FALSE(set.Insert(k * 2654435761u));
  }
}

TEST(FlatSet64Test, MatchesUnorderedSetUnderRandomOps) {
  FlatSet64 set;
  std::unordered_set<uint64_t> reference;
  std::mt19937_64 rng(1234);
  // Small key space so inserts collide with earlier ones often.
  std::uniform_int_distribution<uint64_t> keys(1, 5000);
  for (int i = 0; i < 50000; ++i) {
    uint64_t key = keys(rng);
    EXPECT_EQ(set.Insert(key), reference.insert(key).second);
    EXPECT_EQ(set.size(), reference.size());
  }
  for (uint64_t key = 1; key <= 5000; ++key) {
    EXPECT_EQ(set.Contains(key), reference.count(key) > 0) << key;
  }
}

TEST(FlatMap64Test, SlotInsertsZeroInitialized) {
  FlatMap64 map;
  bool inserted = false;
  uint32_t& slot = map.Slot(99, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(slot, 0u);
  slot = 17;
  inserted = true;
  EXPECT_EQ(map.Slot(99, &inserted), 17u);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(map.Find(99), 17u);
  EXPECT_EQ(map.Find(100), 0u);  // absent reads as zero
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap64Test, MatchesUnorderedMapUnderRandomBumps) {
  FlatMap64 map;
  std::unordered_map<uint64_t, uint32_t> reference;
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<uint64_t> keys(1, 3000);
  for (int i = 0; i < 60000; ++i) {
    uint64_t key = keys(rng);
    ++map.Slot(key);  // the co-occurrence counter idiom
    ++reference[key];
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, count] : reference) {
    EXPECT_EQ(map.Find(key), count) << key;
  }
}

TEST(ChunkedArenaTest, AppendAndReadBackSingleRow) {
  ChunkedArena<uint32_t> arena;
  arena.EnsureRows(1);
  EXPECT_EQ(arena.num_rows(), 1u);
  EXPECT_EQ(arena.RowSize(0), 0u);
  EXPECT_TRUE(arena.Row(0).empty());
  for (uint32_t i = 0; i < 100; ++i) arena.Append(0, i * 3);
  ASSERT_EQ(arena.RowSize(0), 100u);
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(arena.Row(0)[i], i * 3);
  EXPECT_EQ(arena.size(), 100u);
}

TEST(ChunkedArenaTest, InterleavedRowsPreserveOrderThroughRelocation) {
  // Round-robin appends force every row to relocate repeatedly as its
  // neighbors grow into the shared arena; the per-row order must be
  // exactly append order regardless.
  ChunkedArena<uint64_t> arena;
  constexpr uint32_t kRows = 7;
  constexpr uint32_t kPerRow = 500;
  arena.EnsureRows(kRows);
  for (uint32_t i = 0; i < kPerRow; ++i) {
    for (uint32_t row = 0; row < kRows; ++row) {
      arena.Append(row, static_cast<uint64_t>(row) * 1000000 + i);
    }
  }
  EXPECT_EQ(arena.size(), uint64_t{kRows} * kPerRow);
  for (uint32_t row = 0; row < kRows; ++row) {
    ASSERT_EQ(arena.RowSize(row), kPerRow);
    auto span = arena.Row(row);
    for (uint32_t i = 0; i < kPerRow; ++i) {
      ASSERT_EQ(span[i], static_cast<uint64_t>(row) * 1000000 + i);
    }
  }
}

TEST(ChunkedArenaTest, CompactionBoundsGarbage) {
  // Skewed random growth creates lots of abandoned (relocated-away)
  // capacity; epoch compaction must keep total arena storage within a
  // constant factor of live data instead of growing without bound.
  ChunkedArena<uint32_t> arena;
  constexpr uint32_t kRows = 64;
  arena.EnsureRows(kRows);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<uint32_t> pick(0, kRows - 1);
  std::vector<std::vector<uint32_t>> reference(kRows);
  for (uint32_t i = 0; i < 200000; ++i) {
    uint32_t row = pick(rng);
    arena.Append(row, i);
    reference[row].push_back(i);
  }
  EXPECT_EQ(arena.size(), 200000u);
  // Live 200k entries; doubling rows waste < 2x and compaction caps the
  // relocation garbage, so a 4x overall bound has ample slack while
  // still failing if Compact() never fires.
  EXPECT_LT(arena.arena_capacity(), 4u * 200000u);
  for (uint32_t row = 0; row < kRows; ++row) {
    auto span = arena.Row(row);
    ASSERT_EQ(span.size(), reference[row].size());
    for (size_t i = 0; i < span.size(); ++i) {
      ASSERT_EQ(span[i], reference[row][i]) << "row " << row;
    }
  }
}

TEST(ChunkedArenaTest, EnsureRowsGrowsIncrementally) {
  ChunkedArena<uint32_t> arena;
  arena.EnsureRows(2);
  arena.Append(0, 10);
  arena.Append(1, 11);
  arena.EnsureRows(5);  // existing rows survive the grow
  EXPECT_EQ(arena.num_rows(), 5u);
  arena.EnsureRows(3);  // never shrinks
  EXPECT_EQ(arena.num_rows(), 5u);
  EXPECT_EQ(arena.Row(0)[0], 10u);
  EXPECT_EQ(arena.Row(1)[0], 11u);
  EXPECT_EQ(arena.RowSize(4), 0u);
}

}  // namespace
}  // namespace deepcrawl
