#include "src/crawler/parallel_crawler.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "src/util/logging.h"

namespace deepcrawl {

ParallelCrawler::ParallelCrawler(QueryInterface& server,
                                 QuerySelector& selector, LocalStore& store,
                                 CrawlOptions options,
                                 ParallelOptions parallel,
                                 AbortPolicy* abort_policy,
                                 const RetryPolicy* retry_policy)
    : server_(server),
      selector_(selector),
      store_(store),
      options_(options),
      parallel_(parallel),
      abort_policy_(abort_policy),
      retry_policy_(retry_policy) {
  DEEPCRAWL_CHECK(parallel_.threads >= 1) << "need >= 1 fetch thread";
  DEEPCRAWL_CHECK(parallel_.batch >= 1) << "need >= 1 drain slot";
  pool_ = std::make_unique<ThreadPool>(parallel_.threads);
  slots_.resize(parallel_.batch);
}

void ParallelCrawler::DiscoverValue(ValueId v) {
  if (v >= seen_.size()) seen_.resize(static_cast<size_t>(v) + 1, 0);
  if (seen_[v]) return;
  seen_[v] = 1;
  if (!server_.IsQueriableValue(v)) return;
  selector_.OnValueDiscovered(v);
}

void ParallelCrawler::AddSeed(ValueId v) { DiscoverValue(v); }

ValueId ParallelCrawler::NextValue() {
  ValueId value = selector_.SelectNext();
  if (value != kInvalidValueId) return value;
  if (!retry_queue_.empty()) {
    value = retry_queue_.front();
    retry_queue_.pop_front();
  }
  return value;
}

void ParallelCrawler::CheckSaturation() {
  if (!saturation_notified_ && options_.saturation_records > 0 &&
      store_.num_records() >= options_.saturation_records) {
    saturation_notified_ = true;
    selector_.OnSaturation();
  }
}

void ParallelCrawler::FinishDrain(std::optional<Slot>& slot_box) {
  Slot& slot = *slot_box;
  slot.outcome.fetch_failures = slot.failures;
  selector_.OnQueryCompleted(slot.outcome);
  slot_box.reset();
  CheckSaturation();
}

Status ParallelCrawler::CommitFetch(std::optional<Slot>& slot_box,
                                    StatusOr<ResultPage> fetched) {
  Slot& slot = *slot_box;
  ++rounds_used_;
  if (!fetched.ok()) {
    const Status& failure = fetched.status();
    if (retry_policy_ == nullptr || !RetryPolicy::IsRetryable(failure)) {
      return failure;
    }
    ++slot.failures;
    ++trace_.resilience().transient_failures;
    if (!retry_policy_->ShouldRetry(failure, slot.failures)) {
      // Retry budget exhausted: degrade gracefully, exactly like the
      // serial crawler — re-queue the value at the frontier tail a
      // bounded number of times, then abandon it.
      slot.outcome.fetch_failures = slot.failures;
      slot.outcome.degraded = true;
      ++trace_.resilience().degraded_queries;
      uint32_t& requeues = requeue_count_[slot.value];
      if (requeues < retry_policy_->config().max_requeues) {
        ++requeues;
        ++trace_.resilience().requeues;
        retry_queue_.push_back(slot.value);
        slot_box.reset();
      } else {
        ++trace_.resilience().abandoned_values;
        selector_.OnQueryCompleted(slot.outcome);
        slot_box.reset();
      }
      CheckSaturation();
      return Status::OK();
    }
    uint64_t wait =
        retry_policy_->BackoffTicks(failure, slot.failures, slot.value);
    clock_.Advance(wait);
    trace_.resilience().backoff_ticks += wait;
    ++trace_.resilience().retries;
    // The slot stays parked on the same page; the next wave re-fetches
    // it (and if the budget just expired, the top of Run() parks the
    // whole crawl, matching the serial mid-drain park).
    return Status::OK();
  }

  const ResultPage& page = *fetched;
  for (const ReturnedRecord& record : page.records) {
    ++slot.outcome.records_returned;
    if (store_.ContainsRecord(record.id)) {
      store_.ObserveDuplicate(record.id);
      continue;
    }
    // Decompose first so the selector hears about new values before the
    // record-harvest notification (see QuerySelector contract).
    for (ValueId v : record.values) DiscoverValue(v);
    uint32_t store_slot = static_cast<uint32_t>(store_.num_records());
    bool added = store_.AddRecord(record.id, record.values);
    DEEPCRAWL_DCHECK(added) << "record dedup raced";
    (void)added;
    ++slot.outcome.new_records;
    selector_.OnRecordHarvested(store_slot);
  }
  ++slot.outcome.pages_fetched;
  wave_points_.push_back(TracePoint{rounds_used_, store_.num_records()});

  if (page.total_matches.has_value() && slot.next_page == 0) {
    slot.outcome.total_matches = page.total_matches;
  }

  if (!page.has_more) {
    FinishDrain(slot_box);
    return Status::OK();
  }
  if (options_.target_records > 0 &&
      store_.num_records() >= options_.target_records) {
    // Target reached mid-drain: complete the query (serial semantics);
    // the top of Run() reports kTargetReached.
    FinishDrain(slot_box);
    return Status::OK();
  }
  slot.next_page += 1;
  if (options_.max_rounds > 0 && rounds_used_ >= options_.max_rounds) {
    // Budget expired mid-drain: the slot stays parked (the serial
    // crawler's PendingDrain); the abort policy is deliberately not
    // consulted, matching the serial check order.
    return Status::OK();
  }
  if (abort_policy_ != nullptr) {
    QueryProgress progress;
    progress.page_size = server_.options().page_size;
    progress.total_matches = slot.outcome.total_matches;
    uint32_t total = page.total_matches.value_or(0);
    uint32_t limit = server_.options().result_limit;
    progress.retrievable = limit > 0 ? std::min(total, limit) : total;
    progress.pages_fetched = slot.outcome.pages_fetched;
    progress.records_returned = slot.outcome.records_returned;
    progress.new_records = slot.outcome.new_records;
    progress.has_more = true;
    if (!abort_policy_->ShouldContinue(progress)) {
      slot.outcome.aborted = true;
      FinishDrain(slot_box);
      return Status::OK();
    }
  }
  return Status::OK();
}

StatusOr<CrawlResult> ParallelCrawler::Run() {
  auto make_result = [&](StopReason reason) {
    CrawlResult result;
    result.stop_reason = reason;
    result.rounds = rounds_used_;
    result.queries = queries_issued_;
    result.records = store_.num_records();
    result.trace = trace_;
    result.resilience = trace_.resilience();
    return result;
  };

  for (;;) {
    if (wave_pos_ >= wave_.size()) {
      // Between waves: evaluate stop conditions (priority matches the
      // serial crawler exactly — target, budget, frontier) and build
      // the next wave. While a wave is in progress these checks are
      // deliberately skipped: the wave is an atomic unit of the crawl
      // order, so an interrupted one must finish before anything else.
      wave_.clear();
      wave_pos_ = 0;
      if (options_.target_records > 0 &&
          store_.num_records() >= options_.target_records) {
        return make_result(StopReason::kTargetReached);
      }
      if (options_.max_rounds > 0 && rounds_used_ >= options_.max_rounds) {
        return make_result(StopReason::kRoundBudget);
      }

      // Refill: empty slots take the next frontier values in slot
      // order, so slot rank reflects selector rank for this wave.
      for (auto& slot_box : slots_) {
        if (slot_box.has_value()) continue;
        ValueId value = NextValue();
        if (value == kInvalidValueId) break;
        Slot slot;
        slot.value = value;
        slot.outcome.value = value;
        slot_box = std::move(slot);
        ++queries_issued_;
      }
      for (size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].has_value()) wave_.push_back(i);
      }
      if (wave_.empty()) return make_result(StopReason::kFrontierExhausted);
    }

    // The budget limits how much of the wave runs now; the unfetched
    // suffix stays queued in wave_ for the next Run() call.
    size_t slice = wave_.size() - wave_pos_;
    if (options_.max_rounds > 0) {
      uint64_t remaining = options_.max_rounds > rounds_used_
                               ? options_.max_rounds - rounds_used_
                               : 0;
      if (remaining == 0) return make_result(StopReason::kRoundBudget);
      slice = static_cast<size_t>(
          std::min<uint64_t>(slice, remaining));
    }

    // Fetch phase: one page per wave slot, concurrently. Each task
    // writes its own rank-indexed cell, so completion order is
    // invisible to the commit phase. The result/task buffers are
    // members reused across waves; no task mutates them structurally
    // while the pool runs.
    fetch_results_.clear();
    fetch_results_.resize(slice);
    fetch_tasks_.clear();
    fetch_tasks_.reserve(slice);
    for (size_t i = 0; i < slice; ++i) {
      const Slot& slot = *slots_[wave_[wave_pos_ + i]];
      ValueId value = slot.value;
      uint32_t page = slot.next_page;
      fetch_tasks_.push_back([this, i, value, page] {
        fetch_results_[i] = options_.use_keyword_interface
                                ? server_.FetchPageKeywordOf(value, page)
                                : server_.FetchPage(value, page);
      });
    }
    pool_->RunAndWait(fetch_tasks_);

    // Commit phase: strictly by slot rank, never by completion order.
    wave_points_.clear();
    Status committed = Status::OK();
    for (size_t i = 0; i < slice; ++i) {
      committed = CommitFetch(slots_[wave_[wave_pos_]],
                              std::move(*fetch_results_[i]));
      ++wave_pos_;
      if (!committed.ok()) break;
    }
    trace_.AddWave(wave_points_);
    if (!committed.ok()) return committed;
  }
}

}  // namespace deepcrawl
