// ScriptedSelector: issue a predetermined list of queries.
//
// Two uses, both paper-adjacent:
//   * executing an OFFLINE plan — e.g. the Weighted Minimum Dominating
//     Set of Definition 2.4 computed with full knowledge of the graph —
//     so the online policies can be measured against the plan the
//     formulation says is optimal-ish (examples/offline_planning.cpp);
//   * replaying a recorded query sequence deterministically.
//
// The selector ignores discoveries and simply walks its script; values
// the crawler has already discovered elsewhere are still issued (the
// script is authoritative). SelectNext returns kInvalidValueId when the
// script is exhausted.

#ifndef DEEPCRAWL_CRAWLER_SCRIPTED_SELECTOR_H_
#define DEEPCRAWL_CRAWLER_SCRIPTED_SELECTOR_H_

#include <string_view>
#include <vector>

#include "src/crawler/query_selector.h"

namespace deepcrawl {

class ScriptedSelector : public QuerySelector {
 public:
  explicit ScriptedSelector(std::vector<ValueId> script);

  void OnValueDiscovered(ValueId v) override { (void)v; }
  ValueId SelectNext() override;
  std::string_view name() const override { return "scripted"; }

  size_t remaining() const { return script_.size() - cursor_; }

  // Checkpointing: only the cursor is state — the script itself is a
  // construction parameter, fingerprinted by length on load.
  Status SaveState(CheckpointWriter& writer) const override;
  Status LoadState(CheckpointReader& reader, ValueId value_bound) override;

 private:
  std::vector<ValueId> script_;
  size_t cursor_ = 0;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_SCRIPTED_SELECTOR_H_
