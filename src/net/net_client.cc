#include "src/net/net_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace deepcrawl {
namespace {

uint64_t NowMs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1000000;
}

uint64_t NowUs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1000;
}

void SleepMs(uint64_t ms) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
  nanosleep(&ts, nullptr);
}

// Blocks until `fd` is ready for `events`. kDeadlineExceeded on
// timeout, kUnavailable on poll error or socket hangup/error.
Status WaitFd(int fd, short events, uint64_t timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  uint64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    uint64_t now = NowMs();
    int wait = now >= deadline ? 0 : static_cast<int>(
        std::min<uint64_t>(deadline - now, INT_MAX));
    int n = poll(&pfd, 1, wait);
    if (n > 0) {
      if (pfd.revents & (POLLERR | POLLNVAL)) {
        return Status::Unavailable("socket error while waiting");
      }
      return Status::OK();
    }
    if (n == 0) return Status::DeadlineExceeded("socket wait timed out");
    if (errno == EINTR) continue;
    return Status::Unavailable(std::string("poll: ") + strerror(errno));
  }
}

}  // namespace

// --- NetConnection ----------------------------------------------------

NetConnection::~NetConnection() { Close(); }

void NetConnection::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status NetConnection::Open(const std::string& host, uint16_t port,
                           uint64_t timeout_ms, uint32_t max_frame_bytes) {
  Close();
  assembler_ = FrameAssembler(max_frame_bytes);
  send_buffer_.clear();
  send_pos_ = 0;
  total_sent_ = 0;
  uint64_t deadline = NowMs() + timeout_ms;

  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::Unavailable(std::string("socket: ") + strerror(errno));
  }
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (connect(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) {
      Status status =
          Status::Unavailable(std::string("connect: ") + strerror(errno));
      Close();
      return status;
    }
    uint64_t now = NowMs();
    Status ready =
        WaitFd(fd_, POLLOUT, deadline > now ? deadline - now : 0);
    if (!ready.ok()) {
      Close();
      return ready;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      Close();
      return Status::Unavailable(std::string("connect: ") + strerror(err));
    }
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Handshake: Hello out, ServerInfo back.
  Status sent = Send(EncodeHelloFrame());
  if (sent.ok()) {
    uint64_t now = NowMs();
    sent = SendAll(deadline > now ? deadline - now : 0);
  }
  if (!sent.ok()) {
    Close();
    return sent;
  }
  uint64_t now = NowMs();
  StatusOr<WireServerMessage> reply =
      ReceiveMessage(deadline > now ? deadline - now : 0);
  if (!reply.ok()) {
    Close();
    return reply.status();
  }
  if (reply->type == WireMessageType::kGoAway) {
    Close();
    return reply->status;  // shed: kUnavailable with a retry-after hint
  }
  if (reply->type != WireMessageType::kServerInfo) {
    Close();
    return Status::InvalidArgument("handshake reply is not ServerInfo");
  }
  info_ = std::move(reply->info);
  return Status::OK();
}

Status NetConnection::Send(std::string_view bytes) {
  if (!is_open()) return Status::Unavailable("connection is closed");
  if (send_pos_ == send_buffer_.size()) {
    send_buffer_.clear();
    send_pos_ = 0;
  }
  send_buffer_.append(bytes);
  return TryFlushSend();
}

Status NetConnection::TryFlushSend() {
  if (!is_open()) return Status::Unavailable("connection is closed");
  while (send_pos_ < send_buffer_.size()) {
    ssize_t n = write(fd_, send_buffer_.data() + send_pos_,
                      send_buffer_.size() - send_pos_);
    if (n > 0) {
      send_pos_ += static_cast<size_t>(n);
      total_sent_ += static_cast<uint64_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    if (errno == EINTR) continue;
    Status status =
        Status::Unavailable(std::string("write: ") + strerror(errno));
    Close();
    return status;
  }
  send_buffer_.clear();
  send_pos_ = 0;
  return Status::OK();
}

Status NetConnection::SendAll(uint64_t timeout_ms) {
  uint64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    DEEPCRAWL_RETURN_IF_ERROR(TryFlushSend());
    if (!send_pending()) return Status::OK();
    uint64_t now = NowMs();
    if (now >= deadline) return Status::DeadlineExceeded("send timed out");
    DEEPCRAWL_RETURN_IF_ERROR(WaitFd(fd_, POLLOUT, deadline - now));
  }
}

Status NetConnection::FillFromSocket() {
  if (!is_open()) return Status::Unavailable("connection is closed");
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      assembler_.Append(std::string_view(buf, static_cast<size_t>(n)));
      if (static_cast<size_t>(n) < sizeof(buf)) return Status::OK();
      continue;
    }
    if (n == 0) {
      Close();
      return Status::Unavailable("connection closed by server");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    if (errno == EINTR) continue;
    Status status =
        Status::Unavailable(std::string("read: ") + strerror(errno));
    Close();
    return status;
  }
}

StatusOr<bool> NetConnection::NextMessage(WireServerMessage* out) {
  std::string body;
  StatusOr<bool> next = assembler_.Next(&body);
  if (!next.ok()) return next.status();
  if (!*next) return false;
  StatusOr<WireServerMessage> message = DecodeServerMessage(body);
  if (!message.ok()) return message.status();
  *out = std::move(*message);
  return true;
}

StatusOr<WireServerMessage> NetConnection::ReceiveMessage(
    uint64_t timeout_ms) {
  uint64_t deadline = NowMs() + timeout_ms;
  WireServerMessage message;
  for (;;) {
    StatusOr<bool> next = NextMessage(&message);
    if (!next.ok()) {
      Close();  // corrupt stream: framing sync is gone
      return next.status();
    }
    if (*next) return message;
    if (!is_open()) return Status::Unavailable("connection is closed");
    uint64_t now = NowMs();
    if (now >= deadline) {
      return Status::DeadlineExceeded("no response within timeout");
    }
    DEEPCRAWL_RETURN_IF_ERROR(WaitFd(fd_, POLLIN, deadline - now));
    DEEPCRAWL_RETURN_IF_ERROR(FillFromSocket());
  }
}

// --- NetQueryClient ---------------------------------------------------

NetQueryClient::NetQueryClient(NetClientOptions options)
    : options_(std::move(options)) {}

StatusOr<std::unique_ptr<NetQueryClient>> NetQueryClient::Connect(
    NetClientOptions options) {
  std::unique_ptr<NetQueryClient> client(
      new NetQueryClient(std::move(options)));
  DEEPCRAWL_RETURN_IF_ERROR(client->EnsureConnected(client->primary_));
  return client;
}

Status NetQueryClient::EnsureConnected(NetConnection& conn) {
  if (conn.is_open()) return Status::OK();
  uint64_t deadline = NowMs() + options_.reconnect_window_ms;
  uint64_t backoff = options_.reconnect_backoff_ms;
  Status last = Status::Unavailable("never attempted");
  for (;;) {
    uint64_t now = NowMs();
    if (now >= deadline) {
      return Status::Unavailable("server unreachable within reconnect window (last: " +
                                 last.ToString() + ")");
    }
    last = conn.Open(options_.host, options_.port,
                     std::min<uint64_t>(deadline - now,
                                        options_.request_timeout_ms),
                     options_.max_frame_bytes);
    if (last.ok()) {
      if (connected_once_) ++reconnects_;
      connected_once_ = true;
      if (info_.num_values == 0 && info_.queriable_bitmap.empty()) {
        info_ = conn.info();
      }
      return Status::OK();
    }
    now = NowMs();
    if (now >= deadline) {
      return Status::Unavailable("server unreachable within reconnect window (last: " +
                                 last.ToString() + ")");
    }
    SleepMs(std::min<uint64_t>(backoff, deadline - now));
    backoff = std::min<uint64_t>(backoff * 2, 1000);
  }
}

void NetQueryClient::ResetMeters() {
  rounds_ = 0;
  queries_ = 0;
  rtt_ = RttCounters{};
}

void NetQueryClient::PurgeRetainedPages() { retained_.clear(); }

const ResultPage& NetQueryClient::Retain(DecodedPage page) {
  retained_.push_back(std::move(page));
  return retained_.back().page;
}

void NetQueryClient::AccountFetch(uint32_t page_number) {
  ++rounds_;
  if (page_number == 0) ++queries_;
}

StatusOr<ResultPage> NetQueryClient::RoundTrip(WireRequest request) {
  request.request_id = NextRequestId();
  AccountFetch(request.page_number);
  const std::string frame = EncodeRequestFrame(request);
  const uint64_t started_us = NowUs();
  // The protocol is read-only, so a dead connection is simply reopened
  // and the request retransmitted. EnsureConnected bounds the time
  // spent chasing an unreachable server per attempt; the attempt cap
  // bounds the total — a server that accepts connections but never
  // answers within request_timeout_ms must not trap the client in a
  // reconnect/retransmit/timeout loop forever.
  const uint32_t max_attempts = std::max<uint32_t>(1, options_.request_attempts);
  Status last = Status::Unavailable("no fetch attempt completed");
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    DEEPCRAWL_RETURN_IF_ERROR(EnsureConnected(primary_));
    Status sent = primary_.Send(frame);
    if (sent.ok()) sent = primary_.SendAll(options_.request_timeout_ms);
    if (!sent.ok()) {
      last = std::move(sent);
      primary_.Close();
      continue;
    }
    StatusOr<WireServerMessage> reply =
        primary_.ReceiveMessage(options_.request_timeout_ms);
    if (!reply.ok()) {
      last = reply.status();
      primary_.Close();
      continue;
    }
    if (reply->type == WireMessageType::kGoAway) {
      primary_.Close();
      return reply->status;  // pace via the engine's RetryPolicy
    }
    if (reply->type != WireMessageType::kPageResult ||
        reply->request_id != request.request_id) {
      // Protocol confusion; resync with a fresh connection.
      last = Status::Unavailable("response did not match the request");
      primary_.Close();
      continue;
    }
    rtt_.Record(NowUs() - started_us);
    if (!reply->status.ok()) return reply->status;
    const ResultPage& page = Retain(std::move(reply->result));
    // Trim the serial retain window (never below the page just handed
    // out). FetchWave manages its own lifetime via PurgeRetainedPages.
    const size_t cap = std::max<uint32_t>(1, options_.serial_retain_pages);
    while (retained_.size() > cap) retained_.pop_front();
    return page;
  }
  // Both kDeadlineExceeded and kUnavailable are retryable, so the
  // engine's RetryPolicy decides whether the crawl keeps waiting.
  return last;
}

StatusOr<ResultPage> NetQueryClient::FetchPage(ValueId value,
                                               uint32_t page_number) {
  WireRequest request;
  request.type = WireMessageType::kFetchPage;
  request.value = value;
  request.page_number = page_number;
  return RoundTrip(std::move(request));
}

StatusOr<ResultPage> NetQueryClient::FetchPageByText(AttributeId attr,
                                                     std::string_view text,
                                                     uint32_t page_number) {
  WireRequest request;
  request.type = WireMessageType::kFetchPageByText;
  request.attr = attr;
  request.text = std::string(text);
  request.page_number = page_number;
  return RoundTrip(std::move(request));
}

StatusOr<ResultPage> NetQueryClient::FetchPageByKeyword(
    std::string_view text, uint32_t page_number) {
  WireRequest request;
  request.type = WireMessageType::kFetchPageByKeyword;
  request.text = std::string(text);
  request.page_number = page_number;
  return RoundTrip(std::move(request));
}

StatusOr<ResultPage> NetQueryClient::FetchPageConjunctive(
    std::span<const ValueId> values, uint32_t page_number) {
  WireRequest request;
  request.type = WireMessageType::kFetchPageConjunctive;
  request.values.assign(values.begin(), values.end());
  request.page_number = page_number;
  return RoundTrip(std::move(request));
}

StatusOr<ResultPage> NetQueryClient::FetchPageKeywordOf(
    ValueId value, uint32_t page_number) {
  WireRequest request;
  request.type = WireMessageType::kFetchPageKeywordOf;
  request.value = value;
  request.page_number = page_number;
  return RoundTrip(std::move(request));
}

// --- NetFetchExecutor -------------------------------------------------

// One connection plus its share of the wave. `slots` indexes into the
// wave's request/result spans, in send order; responses must come back
// in exactly that order (the server guarantees per-connection request
// order), so the answered prefix is a single counter and a reconnect
// retransmits the unanswered suffix.
struct NetFetchExecutor::Lane {
  NetConnection* conn = nullptr;
  std::vector<size_t> slots;
  std::vector<uint64_t> ids;           // request id per slot position
  std::vector<size_t> send_end;        // sendbuf offset after each frame
  std::vector<uint64_t> send_time_us;  // stamped as bytes reach the kernel
  std::string sendbuf;
  size_t sendbuf_pos = 0;   // handed to conn->Send already
  size_t sent_slots = 0;    // slots whose bytes the kernel accepted
  size_t next_unanswered = 0;
  uint64_t base_sent = 0;   // conn->total_bytes_sent() at (re)build
  uint64_t last_progress_ms = 0;
  bool dead = false;

  bool done() const { return dead || next_unanswered == slots.size(); }
};

NetFetchExecutor::NetFetchExecutor(NetQueryClient& client)
    : client_(client) {}

NetFetchExecutor::~NetFetchExecutor() = default;

void NetFetchExecutor::FetchWave(
    QueryInterface& server, std::span<const FetchRequest> requests,
    std::span<std::optional<StatusOr<ResultPage>>> results) {
  DEEPCRAWL_CHECK(&server == static_cast<QueryInterface*>(&client_))
      << "NetFetchExecutor must be driven with its own NetQueryClient";
  // The previous wave is committed by now; release its page storage.
  client_.PurgeRetainedPages();
  if (requests.empty()) return;

  const NetClientOptions& opts = client_.net_options();
  const uint32_t want_conns = std::max<uint32_t>(1, opts.connections);

  // Connection 0 is the client's primary (shared with the serial
  // path); the rest live in secondary_ and are opened lazily. A
  // secondary that cannot be opened right now just shrinks the fan-out
  // for this wave — the primary alone can always carry it.
  std::vector<NetConnection*> conns;
  if (client_.EnsureConnected(client_.primary_).ok()) {
    conns.push_back(&client_.primary_);
  }
  while (secondary_.size() + 1 < want_conns) {
    secondary_.push_back(std::make_unique<NetConnection>());
  }
  for (auto& conn : secondary_) {
    if (conns.size() >= want_conns || conns.size() >= requests.size()) break;
    if (!conn->is_open() &&
        !conn->Open(opts.host, opts.port, opts.request_timeout_ms,
                    opts.max_frame_bytes)
             .ok()) {
      continue;
    }
    conns.push_back(conn.get());
  }
  if (conns.empty()) {
    Status unreachable =
        Status::Unavailable("server unreachable within reconnect window");
    for (size_t i = 0; i < requests.size(); ++i) results[i] = unreachable;
    return;
  }

  // Round-robin the wave over the lanes and serialize each lane's
  // share as ONE pipelined burst.
  const size_t num_lanes = std::min(conns.size(), requests.size());
  std::vector<Lane> lanes(num_lanes);
  const uint64_t now_ms = NowMs();
  for (size_t i = 0; i < num_lanes; ++i) {
    lanes[i].conn = conns[i];
    lanes[i].last_progress_ms = now_ms;
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    Lane& lane = lanes[i % num_lanes];
    const FetchRequest& req = requests[i];
    WireRequest wire;
    wire.type = req.keyword ? WireMessageType::kFetchPageKeywordOf
                            : WireMessageType::kFetchPage;
    wire.request_id = client_.NextRequestId();
    wire.value = req.value;
    wire.page_number = req.page_number;
    client_.AccountFetch(req.page_number);
    lane.slots.push_back(i);
    lane.ids.push_back(wire.request_id);
    lane.sendbuf.append(EncodeRequestFrame(wire));
    lane.send_end.push_back(lane.sendbuf.size());
    lane.send_time_us.push_back(0);
  }
  for (Lane& lane : lanes) lane.base_sent = lane.conn->total_bytes_sent();

  // Rebuilds a lane's burst from its unanswered suffix (after a
  // reconnect: same request ids, fresh byte stream).
  auto rebuild_lane = [this](Lane& lane) {
    lane.slots.erase(lane.slots.begin(),
                     lane.slots.begin() +
                         static_cast<ptrdiff_t>(lane.next_unanswered));
    lane.ids.erase(lane.ids.begin(),
                   lane.ids.begin() +
                       static_cast<ptrdiff_t>(lane.next_unanswered));
    lane.next_unanswered = 0;
    lane.sendbuf.clear();
    lane.sendbuf_pos = 0;
    lane.send_end.clear();
    lane.send_time_us.assign(lane.slots.size(), 0);
    lane.sent_slots = 0;
    lane.base_sent = lane.conn->total_bytes_sent();
  };

  // A lane's connection died: reconnect within the window and
  // retransmit its unanswered suffix, else mark the lane dead and fail
  // its remaining slots with `reason` (the engine's RetryPolicy takes
  // it from there).
  auto fail_or_revive = [&](Lane& lane, const Status& reason,
                            std::span<const FetchRequest> reqs) {
    lane.conn->Close();
    Status revived = client_.EnsureConnected(*lane.conn);
    if (revived.ok()) {
      rebuild_lane(lane);
      for (size_t j = 0; j < lane.slots.size(); ++j) {
        size_t slot = lane.slots[j];
        WireRequest wire;
        wire.type = reqs[slot].keyword ? WireMessageType::kFetchPageKeywordOf
                                       : WireMessageType::kFetchPage;
        wire.request_id = lane.ids[j];
        wire.value = reqs[slot].value;
        wire.page_number = reqs[slot].page_number;
        lane.sendbuf.append(EncodeRequestFrame(wire));
        lane.send_end.push_back(lane.sendbuf.size());
      }
      lane.last_progress_ms = NowMs();
      return;
    }
    lane.dead = true;
    Status failed = reason.ok() ? revived : reason;
    for (size_t j = lane.next_unanswered; j < lane.slots.size(); ++j) {
      results[lane.slots[j]] = failed;
    }
  };

  // Feeds as much of the lane's burst to the connection as fits and
  // stamps the send time of every request fully accepted by the
  // kernel. Returns false when the connection died.
  auto pump_send = [](Lane& lane) -> bool {
    if (lane.sendbuf_pos < lane.sendbuf.size()) {
      std::string_view chunk(lane.sendbuf.data() + lane.sendbuf_pos,
                             lane.sendbuf.size() - lane.sendbuf_pos);
      if (!lane.conn->Send(chunk).ok()) return false;
      lane.sendbuf_pos = lane.sendbuf.size();
    } else if (lane.conn->send_pending()) {
      if (!lane.conn->TryFlushSend().ok()) return false;
    }
    uint64_t sent = lane.conn->total_bytes_sent() - lane.base_sent;
    uint64_t now_us = NowUs();
    while (lane.sent_slots < lane.slots.size() &&
           lane.send_end[lane.sent_slots] <= sent) {
      lane.send_time_us[lane.sent_slots++] = now_us;
    }
    return true;
  };

  for (Lane& lane : lanes) {
    if (!pump_send(lane)) fail_or_revive(lane, Status::OK(), requests);
  }

  std::vector<struct pollfd> pfds;
  std::vector<Lane*> polled;
  WireServerMessage message;
  for (;;) {
    pfds.clear();
    polled.clear();
    for (Lane& lane : lanes) {
      if (lane.done()) continue;
      struct pollfd pfd;
      pfd.fd = lane.conn->fd();
      pfd.events = POLLIN;
      if (lane.conn->send_pending() ||
          lane.sendbuf_pos < lane.sendbuf.size()) {
        pfd.events |= POLLOUT;
      }
      pfd.revents = 0;
      pfds.push_back(pfd);
      polled.push_back(&lane);
    }
    if (pfds.empty()) break;

    int n = poll(pfds.data(), pfds.size(), 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      // poll() itself failed (EINVAL/ENOMEM class): no lane can make
      // progress. Fail every unanswered slot before leaving so the
      // engine never sees an unfilled result cell — CommitFetch
      // dereferences each optional unconditionally.
      Status poll_failed =
          Status::Unavailable(std::string("poll: ") + strerror(errno));
      for (Lane* lane : polled) {
        lane->dead = true;
        for (size_t j = lane->next_unanswered; j < lane->slots.size(); ++j) {
          results[lane->slots[j]] = poll_failed;
        }
      }
      break;
    }

    for (size_t i = 0; i < polled.size(); ++i) {
      Lane& lane = *polled[i];
      if (lane.done()) continue;
      short revents = pfds[i].revents;
      if (revents & (POLLOUT)) {
        if (!pump_send(lane)) {
          fail_or_revive(lane, Status::OK(), requests);
          continue;
        }
        lane.last_progress_ms = NowMs();
      }
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        Status filled = lane.conn->FillFromSocket();
        bool lane_failed = !filled.ok();
        while (!lane_failed && !lane.done()) {
          StatusOr<bool> next = lane.conn->NextMessage(&message);
          if (!next.ok()) {
            lane_failed = true;
            break;
          }
          if (!*next) break;
          lane.last_progress_ms = NowMs();
          if (message.type == WireMessageType::kGoAway) {
            lane_failed = true;
            break;
          }
          if (message.type != WireMessageType::kPageResult ||
              message.request_id != lane.ids[lane.next_unanswered]) {
            lane_failed = true;  // out-of-order or foreign response
            break;
          }
          size_t slot = lane.slots[lane.next_unanswered];
          if (lane.send_time_us[lane.next_unanswered] != 0) {
            client_.rtt_.Record(NowUs() -
                                lane.send_time_us[lane.next_unanswered]);
          }
          if (message.status.ok()) {
            results[slot] = client_.Retain(std::move(message.result));
          } else {
            results[slot] = message.status;
          }
          ++lane.next_unanswered;
        }
        if (lane_failed) {
          fail_or_revive(lane, Status::OK(), requests);
          continue;
        }
      }
      if (!lane.done() &&
          NowMs() - lane.last_progress_ms > opts.request_timeout_ms) {
        fail_or_revive(
            lane, Status::DeadlineExceeded("no response within timeout"),
            requests);
      }
    }
  }
}

}  // namespace deepcrawl
