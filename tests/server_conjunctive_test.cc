// Tests of conjunctive multi-predicate queries (§2.2 future-work
// extension).

#include <gtest/gtest.h>

#include "src/server/web_db_server.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::GetValueId;
using testing_util::MakeFigure1Table;
using testing_util::MakeTable;

TEST(ConjunctiveQueryTest, IntersectsPredicates) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, ServerOptions{});
  ValueId a2 = GetValueId(table, "A", "a2");
  ValueId c2 = GetValueId(table, "C", "c2");
  // a2 matches records 1,2,3; c2 matches 2,3,4 -> intersection {2,3}.
  StatusOr<ResultPage> page =
      server.FetchPageConjunctive(std::vector<ValueId>{a2, c2}, 0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->records.size(), 2u);
  EXPECT_EQ(page->total_matches.value_or(0), 2u);
  EXPECT_EQ(page->records[0].id, 2u);
  EXPECT_EQ(page->records[1].id, 3u);
}

TEST(ConjunctiveQueryTest, SinglePredicateEqualsSimpleQuery) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, ServerOptions{});
  ValueId a2 = GetValueId(table, "A", "a2");
  StatusOr<ResultPage> conjunctive =
      server.FetchPageConjunctive(std::vector<ValueId>{a2}, 0);
  StatusOr<ResultPage> simple = server.FetchPage(a2, 0);
  ASSERT_TRUE(conjunctive.ok() && simple.ok());
  ASSERT_EQ(conjunctive->records.size(), simple->records.size());
  for (size_t i = 0; i < simple->records.size(); ++i) {
    EXPECT_EQ(conjunctive->records[i].id, simple->records[i].id);
  }
}

TEST(ConjunctiveQueryTest, DisjointPredicatesReturnEmpty) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, ServerOptions{});
  ValueId a1 = GetValueId(table, "A", "a1");
  ValueId c2 = GetValueId(table, "C", "c2");
  StatusOr<ResultPage> page =
      server.FetchPageConjunctive(std::vector<ValueId>{a1, c2}, 0);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page->records.empty());
  EXPECT_FALSE(page->has_more);
}

TEST(ConjunctiveQueryTest, UnknownValueYieldsEmpty) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, ServerOptions{});
  ValueId a2 = GetValueId(table, "A", "a2");
  StatusOr<ResultPage> page =
      server.FetchPageConjunctive(std::vector<ValueId>{a2, 99999}, 0);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page->records.empty());
}

TEST(ConjunctiveQueryTest, EmptyPredicateListRejected) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, ServerOptions{});
  EXPECT_EQ(server.FetchPageConjunctive({}, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ConjunctiveQueryTest, CostsOneRoundPerPage) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, ServerOptions{});
  ValueId a2 = GetValueId(table, "A", "a2");
  ValueId b2 = GetValueId(table, "B", "b2");
  ASSERT_TRUE(
      server.FetchPageConjunctive(std::vector<ValueId>{a2, b2}, 0).ok());
  EXPECT_EQ(server.communication_rounds(), 1u);
  EXPECT_EQ(server.queries_issued(), 1u);
}

TEST(ConjunctiveQueryTest, PaginationAndLimitApply) {
  std::vector<testing_util::Row> rows;
  for (int i = 0; i < 25; ++i) {
    rows.push_back({{"X", "x"}, {"Y", "y"}, {"Id", "r" + std::to_string(i)}});
  }
  Table table = testing_util::MakeTable(rows);
  ServerOptions options;
  options.page_size = 10;
  options.result_limit = 15;
  WebDbServer server(table, options);
  ValueId x = GetValueId(table, "X", "x");
  ValueId y = GetValueId(table, "Y", "y");

  StatusOr<ResultPage> page0 =
      server.FetchPageConjunctive(std::vector<ValueId>{x, y}, 0);
  ASSERT_TRUE(page0.ok());
  EXPECT_EQ(page0->records.size(), 10u);
  EXPECT_TRUE(page0->has_more);
  StatusOr<ResultPage> page1 =
      server.FetchPageConjunctive(std::vector<ValueId>{x, y}, 1);
  ASSERT_TRUE(page1.ok());
  EXPECT_EQ(page1->records.size(), 5u);  // limit 15 caps the second page
  EXPECT_FALSE(page1->has_more);
}

TEST(ConjunctiveQueryTest, DuplicatePredicatesAreHarmless) {
  Table table = MakeFigure1Table();
  WebDbServer server(table, ServerOptions{});
  ValueId a2 = GetValueId(table, "A", "a2");
  StatusOr<ResultPage> page =
      server.FetchPageConjunctive(std::vector<ValueId>{a2, a2, a2}, 0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->records.size(), 3u);
}

}  // namespace
}  // namespace deepcrawl
