// Crawler: the "query-harvest-decompose" loop (§1, §2.5).
//
// Starting from seed attribute values, the crawler repeatedly
//   1. asks its QuerySelector for the next value to query,
//   2. probes the WebDbServer page by page (each page = one
//      communication round, the paper's cost unit), optionally aborting
//      the drain early via an AbortPolicy (§3.4),
//   3. extracts returned records into the LocalStore, decomposes them
//      into attribute values, and feeds newly-seen values back to the
//      selector as future query candidates,
// until the frontier empties, a round budget is exhausted, or a target
// number of records has been harvested.
//
// The crawler itself never touches the backend Table: everything it
// knows arrived through result pages, exactly like a crawler talking to
// a real Web source.

#ifndef DEEPCRAWL_CRAWLER_CRAWLER_H_
#define DEEPCRAWL_CRAWLER_CRAWLER_H_

#include <cstdint>
#include <vector>

#include "src/crawler/abort_policy.h"
#include "src/crawler/local_store.h"
#include "src/crawler/metrics.h"
#include "src/crawler/query_selector.h"
#include "src/server/web_db_server.h"
#include "src/util/status.h"

namespace deepcrawl {

struct CrawlOptions {
  // Stop after this many communication rounds (0 = unbounded).
  uint64_t max_rounds = 0;
  // Stop once this many distinct records were harvested (0 = crawl until
  // the frontier is exhausted). Figure 3's "reach 90% coverage" runs set
  // this to 0.9 * |DB|.
  uint64_t target_records = 0;
  // Notify the selector of saturation once this many records were
  // harvested (0 = never). Drives the §3.3 GL -> MMMI switch-over.
  uint64_t saturation_records = 0;
  // Issue queries through the site's keyword box instead of typed
  // attribute fields (§2.2 "fading schema"): the selected value's text
  // is matched by the server against every attribute, so e.g. a person
  // name harvests both acting and directing credits in one query.
  bool use_keyword_interface = false;
};

enum class StopReason {
  kFrontierExhausted,
  kRoundBudget,
  kTargetReached,
};

const char* StopReasonToString(StopReason reason);

struct CrawlResult {
  StopReason stop_reason = StopReason::kFrontierExhausted;
  uint64_t rounds = 0;
  uint64_t queries = 0;
  uint64_t records = 0;
  CrawlTrace trace;
};

class Crawler {
 public:
  // All referenced objects must outlive the crawler. `abort_policy` may
  // be null (never abort).
  Crawler(WebDbServer& server, QuerySelector& selector, LocalStore& store,
          CrawlOptions options, AbortPolicy* abort_policy = nullptr);

  Crawler(const Crawler&) = delete;
  Crawler& operator=(const Crawler&) = delete;

  // Plants a seed attribute value into the frontier. Must be called
  // before Run; duplicate seeds are ignored.
  void AddSeed(ValueId v);

  // Runs the crawl loop until a stop condition fires. May be called
  // again afterwards to continue (e.g. with a larger budget). If the
  // round budget expires while a query is still being drained, the
  // query's remaining pages are abandoned (exactly like an abort-policy
  // abort); a later Run() proceeds with fresh selections, so a sliced
  // crawl can reach exhaustion in slightly fewer rounds than a one-shot
  // crawl that drained every query completely.
  StatusOr<CrawlResult> Run();

  // Adjusts the round budget between Run() calls (0 = unbounded),
  // enabling incremental crawling loops with external stopping criteria
  // (e.g. the Chao coverage estimate; see examples/adaptive_stop.cpp).
  void set_max_rounds(uint64_t max_rounds) {
    options_.max_rounds = max_rounds;
  }
  uint64_t rounds_used() const { return rounds_used_; }

  const LocalStore& store() const { return store_; }

 private:
  // Marks `v` seen and tells the selector it entered Lto-query.
  void DiscoverValue(ValueId v);

  WebDbServer& server_;
  QuerySelector& selector_;
  LocalStore& store_;
  CrawlOptions options_;
  AbortPolicy* abort_policy_;

  std::vector<char> seen_;  // value already in Lto-query or Lqueried
  bool saturation_notified_ = false;
  uint64_t rounds_used_ = 0;
  uint64_t queries_issued_ = 0;
  CrawlTrace trace_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_CRAWLER_H_
