// Table 1 — "Case study: the applicability of the simplified query model
// in practice."
//
// The paper manually surveyed 480 structured Web sources (5 domains from
// the UIUC Web Repository, 6 domains x top-25 stores from Bizrate.com)
// and reports, per domain, the percentage of sources supporting
// keyword search (K.W.) and the percentage representable by the
// single-attribute-equality Simplified Query Model (S.Q.M.).
//
// This is a survey, not an algorithm, so the harness replays it as a
// seeded Monte-Carlo: each domain's surveyed propensities are treated as
// the ground-truth probability that a sampled source has each
// capability, sources are drawn per domain with the paper's sample
// sizes, and the observed percentages are reported. With the fixed seed
// the replay reproduces the table's shape (and converges to the paper's
// numbers as the sample grows).

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/random.h"
#include "src/util/table_printer.h"

namespace deepcrawl {
namespace {

struct DomainSurvey {
  const char* domain;
  const char* repository;  // which dataset the paper drew it from
  int num_sources;
  double keyword_rate;  // paper's K.W. column
  double sqm_rate;      // paper's S.Q.M. column
};

// Paper Table 1, both halves (UIUC repository, then Bizrate.com).
constexpr DomainSurvey kSurveys[] = {
    {"Book", "UIUC", 66, 0.82, 1.00},
    {"Job", "UIUC", 66, 0.98, 0.96},
    {"Movie", "UIUC", 66, 0.63, 1.00},
    {"Car", "UIUC", 66, 0.14, 0.58},
    {"Music", "UIUC", 66, 0.65, 1.00},
    {"DVD", "Bizrate", 25, 0.78, 0.96},
    {"Electronic", "Bizrate", 25, 0.96, 0.96},
    {"Computer", "Bizrate", 25, 1.00, 1.00},
    {"Games", "Bizrate", 25, 0.91, 0.96},
    {"Appliance", "Bizrate", 25, 1.00, 1.00},
    {"Jewellery", "Bizrate", 25, 0.96, 1.00},
};

}  // namespace
}  // namespace deepcrawl

int main() {
  using namespace deepcrawl;
  bench::PrintBanner(
      "Table 1: single-attribute query support across 480 Web sources",
      "manual survey: 5 UIUC-repository domains + 6 Bizrate domains "
      "(top 25 stores each)",
      "seeded Monte-Carlo replay of the surveyed per-domain capability "
      "propensities");

  Pcg32 rng(2006);
  TablePrinter table({"domain", "dataset", "sources", "K.W. (paper)",
                      "K.W. (replay)", "S.Q.M. (paper)", "S.Q.M. (replay)"});
  int total_sources = 0;
  int total_sqm = 0;
  for (const auto& survey : kSurveys) {
    int keyword = 0;
    int sqm = 0;
    for (int s = 0; s < survey.num_sources; ++s) {
      bool has_keyword = rng.NextBool(survey.keyword_rate);
      // Keyword search implies single-attribute queriability (§2.2); a
      // structured form may allow it independently.
      bool has_sqm = has_keyword || rng.NextBool(survey.sqm_rate);
      if (has_keyword) ++keyword;
      if (has_sqm) ++sqm;
    }
    total_sources += survey.num_sources;
    total_sqm += sqm;
    table.AddRow({survey.domain, survey.repository,
                  std::to_string(survey.num_sources),
                  TablePrinter::FormatPercent(survey.keyword_rate, 0),
                  TablePrinter::FormatPercent(
                      static_cast<double>(keyword) / survey.num_sources, 0),
                  TablePrinter::FormatPercent(survey.sqm_rate, 0),
                  TablePrinter::FormatPercent(
                      static_cast<double>(sqm) / survey.num_sources, 0)});
  }
  table.Print(std::cout);
  std::cout << "\nsources sampled: " << total_sources
            << "; overall S.Q.M.-compatible: "
            << TablePrinter::FormatPercent(
                   static_cast<double>(total_sqm) / total_sources, 1)
            << " (paper: \"most product databases can be modelled by the "
               "simplified query model\")\n";
  return 0;
}
