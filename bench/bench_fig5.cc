// Figure 5 — "Comparison Domain Statistics vs. Greedy Link" (Amazon DVD).
//
// Paper setup: the crawl target is the live Amazon DVD catalog
// (estimated < 37,000 records, result limit 3,200 — "generous"); the
// domain tables are built from IMDB: DM(I) from movies released after
// 1960 (270k records), DM(II) after 1980 (190k). All crawlers get 10,000
// page requests; coverage snapshots every 1,000. Results: DM(I) ~95%
// coverage at the end and ~80% after 5,500 rounds; DM(II) slightly worse
// than DM(I); greedy link (GL) below 70%.
//
// This run regenerates the movie-domain pair (a recency-skewed universe,
// an Amazon-like recency-biased target subset with retailer-only Edition
// values, and the two year-cut domain tables) at reduced scale, with the
// round budget scaled by the same records-per-budget ratio.

#include <iostream>

#include "bench/bench_common.h"
#include "src/crawler/greedy_link_selector.h"
#include "src/datagen/movie_domain.h"
#include "src/domain/domain_selector.h"
#include "src/domain/domain_table.h"
#include "src/util/table_printer.h"

namespace {
constexpr uint32_t kUniverseSize = 40000;
constexpr uint32_t kTargetSize = 12000;
constexpr uint64_t kBudget = 3200;        // ~ paper's 10,000 scaled
constexpr uint64_t kSnapshotEvery = 320;  // ~ paper's 1,000 scaled
}  // namespace

int main() {
  using namespace deepcrawl;
  bench::PrintBanner(
      "Figure 5: domain-knowledge vs greedy-link crawling (Amazon DVD)",
      "Amazon DVD (<37k records) crawled with DM(I)=IMDB post-1960 "
      "(270k), DM(II)=IMDB post-1980 (190k), GL; 10,000 requests, "
      "snapshots each 1,000",
      "synthetic movie-domain pair: universe " +
          TablePrinter::FormatCount(kUniverseSize) + ", target ~" +
          TablePrinter::FormatCount(kTargetSize) + ", budget " +
          TablePrinter::FormatCount(kBudget) + " rounds");

  MovieDomainPairConfig config;
  config.universe_size = kUniverseSize;
  config.target_size = kTargetSize;
  StatusOr<MovieDomainPair> pair = GenerateMovieDomainPair(config);
  DEEPCRAWL_CHECK(pair.ok()) << pair.status().ToString();
  Table& target = pair->target;

  std::cout << "target records: "
            << TablePrinter::FormatCount(target.num_records())
            << "; DM(I) sample: "
            << TablePrinter::FormatCount(pair->dm1.num_records())
            << "; DM(II) sample: "
            << TablePrinter::FormatCount(pair->dm2.num_records()) << "\n\n";

  DomainTable dm1 = DomainTable::Build(pair->dm1, target.schema(),
                                       target.mutable_catalog());
  DomainTable dm2 = DomainTable::Build(pair->dm2, target.schema(),
                                       target.mutable_catalog());

  ServerOptions server_options;
  server_options.page_size = 10;
  // Amazon capped result sets at 3,200 of an estimated 37k records
  // (~8.6%); apply the same proportional cap here.
  server_options.result_limit = static_cast<uint32_t>(
      0.0865 * static_cast<double>(target.num_records()));
  WebDbServer server(target, server_options);

  CrawlOptions options;
  options.max_rounds = kBudget;

  auto run = [&](QuerySelector& selector, LocalStore& store) {
    return bench::RunCrawl(server, selector, store, options,
                           bench::SeedValue(target, 1));
  };

  CrawlResult result_gl, result_dm1, result_dm2;
  {
    LocalStore store;
    GreedyLinkSelector selector(store);
    result_gl = run(selector, store);
  }
  {
    LocalStore store;
    DomainSelector selector(store, dm1);
    result_dm1 = run(selector, store);
  }
  {
    LocalStore store;
    DomainSelector selector(store, dm2);
    result_dm2 = run(selector, store);
  }

  std::vector<std::string> header = {"policy"};
  for (uint64_t r = kSnapshotEvery; r <= kBudget; r += kSnapshotEvery) {
    header.push_back("@" + std::to_string(r));
  }
  TablePrinter table(header);
  auto add_row = [&](const char* name, const CrawlResult& result) {
    std::vector<std::string> row = {name};
    for (uint64_t r = kSnapshotEvery; r <= kBudget; r += kSnapshotEvery) {
      double coverage = static_cast<double>(result.trace.RecordsAtRounds(r)) /
                        static_cast<double>(target.num_records());
      row.push_back(TablePrinter::FormatPercent(coverage, 0));
    }
    table.AddRow(row);
  };
  add_row("DM(I)", result_dm1);
  add_row("DM(II)", result_dm2);
  add_row("greedy-link", result_gl);
  std::cout << "estimated database coverage by communication rounds:\n";
  table.Print(std::cout);

  std::cout << "\npaper shape: DM(I) >= DM(II) > GL throughout; DM(I) "
               "~95% and GL <70% at the budget; a smaller domain table "
               "degrades slightly.\n";
  return 0;
}
