// Fleet concurrency stress: a multi-threaded fleet under scripted chaos
// bursts produces byte-identical output to the serial fleet — same
// traces, same records (none lost, none duplicated), same breaker
// transition accounting — because the thread count is wall-clock only
// (DESIGN.md §11). Runs inside deepcrawl_concurrency_tests, so the TSan
// pass in tools/check.sh executes the shared-executor path under a real
// data-race detector.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/datagen/canned_workloads.h"
#include "src/fleet/chaos.h"
#include "src/fleet/crawl_fleet.h"
#include "src/relation/types.h"

namespace deepcrawl {
namespace {

constexpr uint32_t kSources = 4;

std::vector<FleetSourceSpec> StressSpecs() {
  FaultProfile background;
  background.unavailable_rate = 0.05;
  background.timeout_rate = 0.03;
  background.rate_limit_rate = 0.02;
  StatusOr<std::vector<FleetSourceSpec>> specs = MakeFleetSourceSpecs(
      kSources, /*scale=*/0.004, /*target_coverage=*/0.9, background);
  DEEPCRAWL_CHECK(specs.ok()) << specs.status().ToString();
  for (FleetSourceSpec& spec : *specs) spec.num_seeds = 4;
  return std::move(*specs);
}

FleetOptions StressOptions(uint32_t threads) {
  FleetOptions options;
  options.seed = 99;
  options.threads = threads;
  options.batch = 4;  // waves wide enough for the pool to matter
  options.turn_rounds = 12;
  options.chaos = HostileChaosSchedule(kSources);
  options.retry.max_requeues = 16;
  return options;
}

struct RunOutput {
  std::string trace_csv;
  uint64_t records = 0;
  uint64_t rounds = 0;
  uint64_t turns = 0;
  uint64_t idle_ticks = 0;
  std::vector<BreakerTransitions> breakers;
  std::vector<SourceDegradation> reports;
  // Per source: every harvested record id, in store slot order.
  std::vector<std::vector<RecordId>> harvested;
};

RunOutput RunFleet(uint32_t threads) {
  CrawlFleet fleet(StressSpecs(), StressOptions(threads));
  StatusOr<FleetResult> result = fleet.Run();
  DEEPCRAWL_CHECK(result.ok()) << result.status().ToString();

  RunOutput out;
  std::ostringstream csv;
  DEEPCRAWL_CHECK(WriteFleetTraceCsv(*result, csv).ok());
  out.trace_csv = csv.str();
  out.records = result->merged.records;
  out.rounds = result->merged.rounds;
  out.turns = result->turns;
  out.idle_ticks = result->idle_ticks;
  for (uint32_t i = 0; i < fleet.num_sources(); ++i) {
    out.breakers.push_back(fleet.breaker(i).transitions());
    out.reports.push_back(result->sources[i].degradation);
    std::vector<RecordId> ids;
    const LocalStore& store = fleet.store(i);
    for (uint32_t slot = 0; slot < store.num_records(); ++slot) {
      ids.push_back(store.OriginalRecordId(slot));
    }
    out.harvested.push_back(std::move(ids));
  }
  return out;
}

TEST(FleetStressTest, SixteenThreadFleetMatchesSerialUnderChaos) {
  RunOutput serial = RunFleet(1);
  RunOutput parallel = RunFleet(16);

  EXPECT_EQ(parallel.trace_csv, serial.trace_csv);
  EXPECT_EQ(parallel.records, serial.records);
  EXPECT_EQ(parallel.rounds, serial.rounds);
  EXPECT_EQ(parallel.turns, serial.turns);
  EXPECT_EQ(parallel.idle_ticks, serial.idle_ticks);
  ASSERT_EQ(parallel.breakers.size(), serial.breakers.size());
  for (size_t i = 0; i < serial.breakers.size(); ++i) {
    EXPECT_EQ(parallel.breakers[i], serial.breakers[i]) << "source " << i;
    EXPECT_EQ(parallel.reports[i], serial.reports[i]) << "source " << i;
    // Same records, in the same store order: nothing lost to thread
    // scheduling, nothing double-committed.
    EXPECT_EQ(parallel.harvested[i], serial.harvested[i]) << "source " << i;
  }
}

TEST(FleetStressTest, NoRecordLostOrDuplicatedUnderChaosBursts) {
  RunOutput out = RunFleet(16);
  uint64_t total = 0;
  for (size_t i = 0; i < out.harvested.size(); ++i) {
    // A store slot list with repeats would mean a double-committed
    // record; the set collapses them and the sizes would diverge.
    std::set<RecordId> distinct(out.harvested[i].begin(),
                                out.harvested[i].end());
    EXPECT_EQ(distinct.size(), out.harvested[i].size()) << "source " << i;
    EXPECT_EQ(out.harvested[i].size(), out.reports[i].records_harvested)
        << "source " << i;
    total += out.harvested[i].size();
  }
  EXPECT_EQ(total, out.records);

  // Graceful degradation under the hostile schedule: the permanently
  // dead source is quarantined, every other source reaches its target.
  for (size_t i = 0; i < out.reports.size(); ++i) {
    if (i == 1) {
      EXPECT_TRUE(out.reports[i].quarantined);
      EXPECT_FALSE(out.reports[i].finished);
    } else {
      EXPECT_TRUE(out.reports[i].finished) << "source " << i;
      EXPECT_EQ(out.reports[i].records_missing, 0u) << "source " << i;
    }
  }
}

// Checkpoint images taken by a parallel fleet restore into a serial one
// (and vice versa): thread count is not part of the fleet fingerprint.
TEST(FleetStressTest, CheckpointCrossesThreadCounts) {
  FleetOptions options = StressOptions(16);
  options.max_total_rounds = 96;
  CrawlFleet parallel(StressSpecs(), options);
  StatusOr<FleetResult> partial = parallel.Run();
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  StatusOr<std::string> image = EncodeFleetCheckpoint(parallel);
  ASSERT_TRUE(image.ok()) << image.status().ToString();

  // Reference: serial uninterrupted run to completion.
  CrawlFleet reference(StressSpecs(), StressOptions(1));
  StatusOr<FleetResult> full = reference.Run();
  ASSERT_TRUE(full.ok());
  std::ostringstream want;
  ASSERT_TRUE(WriteFleetTraceCsv(*full, want).ok());

  CrawlFleet resumed(StressSpecs(), StressOptions(1));
  ASSERT_TRUE(DecodeFleetCheckpoint(*image, resumed).ok());
  StatusOr<FleetResult> cont = resumed.Run();
  ASSERT_TRUE(cont.ok()) << cont.status().ToString();
  std::ostringstream got;
  ASSERT_TRUE(WriteFleetTraceCsv(*cont, got).ok());
  EXPECT_EQ(got.str(), want.str());
}

}  // namespace
}  // namespace deepcrawl
