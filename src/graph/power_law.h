// Power-law analysis of degree distributions (Figure 2 of the paper).
//
// §3.2 plots log(frequency) against log(degree) for the AVGs of DBLP,
// IMDB, and the ACM Digital Library and observes a close fit to a
// power-law: a few "hub" attribute values link to a significant share of
// the database, while "the massive many" are sparsely connected. This
// module turns a degree histogram into the paper's log-log scatter
// (optionally log-binned, the standard remedy for noisy heavy tails) and
// fits the power-law exponent by least squares.

#ifndef DEEPCRAWL_GRAPH_POWER_LAW_H_
#define DEEPCRAWL_GRAPH_POWER_LAW_H_

#include <cstdint>
#include <vector>

#include "src/util/stats.h"

namespace deepcrawl {

struct LogLogPoint {
  double log10_degree = 0.0;
  double log10_frequency = 0.0;
};

struct PowerLawFit {
  // Fitted exponent alpha in frequency ~ degree^(-alpha); this is the
  // negated slope of the log-log regression.
  double exponent = 0.0;
  double r_squared = 0.0;
  std::vector<LogLogPoint> points;
};

// Converts a degree histogram (histogram[d] = #vertices of degree d) to
// log-log points, skipping empty bins and degree 0.
std::vector<LogLogPoint> ToLogLogPoints(
    const std::vector<uint64_t>& histogram);

// Log-binned variant: degrees are grouped into bins whose width grows by
// `bin_ratio` (> 1) and each bin contributes one point at its geometric
// center with the *average* frequency across the bin. Log-binning
// de-noises the heavy tail where single-count degrees dominate.
std::vector<LogLogPoint> ToLogBinnedPoints(
    const std::vector<uint64_t>& histogram, double bin_ratio = 2.0);

// Least-squares fit over the given log-log points. Requires >= 2 points.
PowerLawFit FitPowerLaw(std::vector<LogLogPoint> points);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_GRAPH_POWER_LAW_H_
