file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_compare.dir/deepcrawl_compare.cc.o"
  "CMakeFiles/deepcrawl_compare.dir/deepcrawl_compare.cc.o.d"
  "deepcrawl_compare"
  "deepcrawl_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
