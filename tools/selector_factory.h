// Shared selector registry for the command-line front ends and benches:
// one place maps a `--policy` name to a constructed QuerySelector, so
// deepcrawl_crawl, deepcrawl_compare, and bench_optimal agree on names,
// construction parameters, and error messages. New selector families
// register here once and every tool picks them up.

#ifndef DEEPCRAWL_TOOLS_SELECTOR_FACTORY_H_
#define DEEPCRAWL_TOOLS_SELECTOR_FACTORY_H_

#include <memory>
#include <span>
#include <string>

#include "src/crawler/local_store.h"
#include "src/crawler/mmmi_selector.h"
#include "src/crawler/query_selector.h"
#include "src/domain/domain_table.h"
#include "src/index/inverted_index.h"
#include "src/relation/table.h"
#include "src/util/status.h"

namespace deepcrawl {

// Everything a policy might need. `store` is always required; the rest
// is policy-specific and validated by MakeSelectorByName (a missing
// ingredient is a clean InvalidArgument, not a crash).
struct SelectorContext {
  const LocalStore* store = nullptr;
  // random
  uint64_t seed = 1;
  // oracle + domain cost model; mirrors ServerOptions.
  uint32_t page_size = 10;
  // oracle + opt-rank/opt-threshold overflow test; mirrors ServerOptions.
  uint32_t result_limit = 0;
  // mmmi
  MmmiOptions mmmi;
  // opt-rank/opt-threshold: the hierarchy is parsed from this target's
  // catalog on the attribute named `rank_attribute` (no such attribute
  // or no interval values -> the selector degrades to plain greedy).
  const Table* target = nullptr;
  std::string rank_attribute = "range";
  // oracle
  const InvertedIndex* oracle_index = nullptr;
  // domain
  const DomainTable* domain = nullptr;
};

// Known policy names, for --help strings.
inline constexpr const char* kKnownPolicies =
    "bfs|dfs|random|greedy|mmmi|term-weight|adaptive[:a,b,...]|opt-rank|"
    "opt-threshold|oracle|domain";

// One registry row: a policy name plus the one-line description printed
// by --list-selectors and by unknown-policy errors.
struct SelectorInfo {
  const char* name;
  const char* description;
};

// Every registered selector, in presentation order.
std::span<const SelectorInfo> RegisteredSelectors();

// Multi-line "name — description" listing of RegisteredSelectors().
std::string FormatSelectorList();

StatusOr<std::unique_ptr<QuerySelector>> MakeSelectorByName(
    const std::string& policy, const SelectorContext& context);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_TOOLS_SELECTOR_FACTORY_H_
