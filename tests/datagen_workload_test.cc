// Tests of the synthetic database generator and canned workloads,
// including the statistical properties the paper's experiments rely on
// (power-law degrees, connectivity, correlation).

#include <gtest/gtest.h>

#include "src/datagen/canned_workloads.h"
#include "src/datagen/workload_config.h"
#include "src/graph/attribute_value_graph.h"
#include "src/graph/components.h"
#include "src/graph/power_law.h"
#include "src/index/inverted_index.h"

namespace deepcrawl {
namespace {

SyntheticDbConfig TinyConfig() {
  SyntheticDbConfig config;
  config.name = "tiny";
  config.num_records = 500;
  config.seed = 9;
  config.attributes = {
      {.name = "Hub", .num_distinct = 20, .zipf_exponent = 1.0},
      {.name = "Tail",
       .num_distinct = 400,
       .zipf_exponent = 0.8,
       .min_per_record = 1,
       .max_per_record = 3},
  };
  return config;
}

TEST(GenerateTableTest, ProducesRequestedShape) {
  StatusOr<Table> table = GenerateTable(TinyConfig());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_records(), 500u);
  EXPECT_EQ(table->schema().num_attributes(), 2u);
  EXPECT_LE(table->DistinctValuesPerAttribute()[0], 20u);
  EXPECT_LE(table->DistinctValuesPerAttribute()[1], 400u);
}

TEST(GenerateTableTest, DeterministicForFixedSeed) {
  StatusOr<Table> a = GenerateTable(TinyConfig());
  StatusOr<Table> b = GenerateTable(TinyConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_records(), b->num_records());
  ASSERT_EQ(a->num_distinct_values(), b->num_distinct_values());
  for (RecordId r = 0; r < a->num_records(); ++r) {
    auto ra = a->record(r);
    auto rb = b->record(r);
    ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()))
        << "record " << r << " differs";
  }
}

TEST(GenerateTableTest, DifferentSeedsDiffer) {
  SyntheticDbConfig config = TinyConfig();
  config.seed = 10;
  StatusOr<Table> a = GenerateTable(TinyConfig());
  StatusOr<Table> b = GenerateTable(config);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_difference = false;
  for (RecordId r = 0; r < a->num_records() && !any_difference; ++r) {
    auto ra = a->record(r);
    auto rb = b->record(r);
    any_difference = ra.size() != rb.size() ||
                     !std::equal(ra.begin(), ra.end(), rb.begin());
  }
  EXPECT_TRUE(any_difference);
}

TEST(GenerateTableTest, ZipfSkewShowsInFrequencies) {
  StatusOr<Table> table = GenerateTable(TinyConfig());
  ASSERT_TRUE(table.ok());
  // The most frequent Hub value should appear far more often than the
  // median one.
  StatusOr<AttributeId> hub = table->schema().FindAttribute("Hub");
  ASSERT_TRUE(hub.ok());
  uint32_t max_freq = 0;
  std::vector<uint32_t> frequencies;
  for (ValueId v = 0; v < table->num_distinct_values(); ++v) {
    if (table->catalog().attribute_of(v) == *hub) {
      frequencies.push_back(table->value_frequency(v));
      max_freq = std::max(max_freq, table->value_frequency(v));
    }
  }
  ASSERT_GE(frequencies.size(), 5u);
  std::sort(frequencies.begin(), frequencies.end());
  uint32_t median = frequencies[frequencies.size() / 2];
  EXPECT_GT(max_freq, 3 * median);
}

TEST(GenerateTableTest, UniquePerRecordGivesOneValueEach) {
  SyntheticDbConfig config;
  config.name = "unique";
  config.num_records = 50;
  config.attributes = {{.name = "Title", .unique_per_record = true}};
  StatusOr<Table> table = GenerateTable(config);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_distinct_values(), 50u);
  for (RecordId r = 0; r < 50; ++r) {
    EXPECT_EQ(table->record(r).size(), 1u);
    EXPECT_EQ(table->value_frequency(table->record(r)[0]), 1u);
  }
}

TEST(GenerateTableTest, CommunityBiasRaisesCooccurrence) {
  // With strong community bias, values from the same community co-occur
  // much more than under the unbiased configuration.
  SyntheticDbConfig biased;
  biased.name = "biased";
  biased.num_records = 2000;
  biased.seed = 4;
  biased.attributes = {{.name = "Member",
                        .num_distinct = 200,
                        .zipf_exponent = 0.5,
                        .min_per_record = 2,
                        .max_per_record = 2,
                        .community_bias = 0.95,
                        .num_communities = 20}};
  SyntheticDbConfig unbiased = biased;
  unbiased.attributes[0].community_bias = 0.0;
  unbiased.attributes[0].num_communities = 0;

  auto same_community_pairs = [](const Table& table) {
    InvertedIndex index(table);
    // Count record pairs of values drawn from the same community slice
    // (slice size = 200/20 = 10).
    uint64_t same = 0, total = 0;
    for (RecordId r = 0; r < table.num_records(); ++r) {
      auto values = table.record(r);
      if (values.size() != 2) continue;
      // Recover pool indices from the value texts "Member#<i>".
      auto pool_of = [&](ValueId v) {
        const std::string& text = table.catalog().text_of(v);
        return std::stoi(text.substr(text.find('#') + 1));
      };
      ++total;
      if (pool_of(values[0]) / 10 == pool_of(values[1]) / 10) ++same;
    }
    return static_cast<double>(same) / static_cast<double>(total);
  };

  StatusOr<Table> table_biased = GenerateTable(biased);
  StatusOr<Table> table_unbiased = GenerateTable(unbiased);
  ASSERT_TRUE(table_biased.ok() && table_unbiased.ok());
  EXPECT_GT(same_community_pairs(*table_biased),
            same_community_pairs(*table_unbiased) + 0.3);
}

TEST(GenerateTableTest, InvalidConfigsRejected) {
  SyntheticDbConfig config;
  config.name = "bad";
  config.num_records = 0;
  config.attributes = {{.name = "A", .num_distinct = 5}};
  EXPECT_FALSE(GenerateTable(config).ok());

  config.num_records = 5;
  config.attributes.clear();
  EXPECT_FALSE(GenerateTable(config).ok());

  config.attributes = {{.name = "A", .num_distinct = 0}};
  EXPECT_FALSE(GenerateTable(config).ok());

  config.attributes = {{.name = "A",
                        .num_distinct = 5,
                        .min_per_record = 3,
                        .max_per_record = 2}};
  EXPECT_FALSE(GenerateTable(config).ok());

  config.attributes = {{.name = "A",
                        .num_distinct = 5,
                        .community_bias = 0.5,
                        .num_communities = 0}};
  EXPECT_FALSE(GenerateTable(config).ok());
}

class CannedWorkloadTest
    : public ::testing::TestWithParam<SyntheticDbConfig> {};

TEST_P(CannedWorkloadTest, GeneratesWellConnectedPowerLawDatabase) {
  StatusOr<Table> table = GenerateTable(GetParam());
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  // §5: "99% of all the records are connected". At small scales we still
  // require a dominant component.
  ConnectivityReport connectivity = AnalyzeConnectivity(*table);
  EXPECT_GT(connectivity.largest_component_record_fraction, 0.95)
      << GetParam().name;

  // Figure 2: log-log degree distribution close to a power law.
  AttributeValueGraph graph = AttributeValueGraph::Build(*table);
  PowerLawFit fit =
      FitPowerLaw(ToLogBinnedPoints(graph.DegreeHistogram(), 2.0));
  EXPECT_GT(fit.exponent, 0.4) << GetParam().name;
  EXPECT_GT(fit.r_squared, 0.6) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperDatabases, CannedWorkloadTest,
    ::testing::Values(EbayConfig(0.05), AcmDlConfig(0.02), DblpConfig(0.01),
                      ImdbConfig(0.0125)),
    [](const ::testing::TestParamInfo<SyntheticDbConfig>& info) {
      std::string name = info.param.name;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace deepcrawl
