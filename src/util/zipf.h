// Zipf / power-law samplers.
//
// The paper's §3.2 case study shows that attribute-value graphs of real
// structured Web databases have power-law degree distributions: a few
// "hub" values co-occur with a large share of the records while the
// massive many are rare. The synthetic workload generators therefore draw
// value popularity from Zipf distributions; this header provides an exact
// inverse-CDF sampler (preprocessing O(n), sampling O(log n)) and a fast
// approximate rejection sampler (O(1) per draw, no preprocessing).

#ifndef DEEPCRAWL_UTIL_ZIPF_H_
#define DEEPCRAWL_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/util/random.h"

namespace deepcrawl {

// Exact Zipf(n, s) sampler over ranks {0, ..., n-1}:
// P(rank = i) proportional to 1 / (i+1)^s.
// Precomputes the CDF once; each draw is a binary search.
class ZipfSampler {
 public:
  // `num_items` must be positive; `exponent` >= 0 (0 = uniform).
  ZipfSampler(uint32_t num_items, double exponent);

  // Draws a rank in [0, num_items).
  uint32_t Sample(Pcg32& rng) const;

  // Probability mass of rank i.
  double Pmf(uint32_t i) const;

  uint32_t num_items() const { return static_cast<uint32_t>(cdf_.size()); }
  double exponent() const { return exponent_; }

 private:
  double exponent_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

// Rejection-inversion Zipf sampler (W. Hormann & G. Derflinger / as used
// by YCSB-style generators). O(1) memory and O(1) expected time per
// sample; suitable for very large n. Requires exponent != 1 handled via
// the generalized harmonic; exponent > 0.
class FastZipfSampler {
 public:
  FastZipfSampler(uint64_t num_items, double exponent);

  uint64_t Sample(Pcg32& rng) const;

  uint64_t num_items() const { return n_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double t_;  // rejection threshold helper
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_UTIL_ZIPF_H_
