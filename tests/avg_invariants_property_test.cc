// Property-based invariants of the attribute-value graph (§2.4) and of
// crawl state over it, checked on seeded random workloads:
//
//   * AVG structure: adjacency is symmetric, irreflexive, and sorted;
//     the degree sum equals twice the edge count; every record's value
//     set forms a clique.
//   * Crawl state, after EVERY budget slice of a crawl (serial and
//     parallel): visited values ⊆ revealed values (a value is only ever
//     queried after some fetched record revealed it or it was a seed),
//     and the local store is a faithful subset of the true table — local
//     frequency and local degree never exceed their true-table / AVG
//     counterparts, and the store's CSR adjacency (NeighborsSpan) is a
//     symmetric, duplicate-free subgraph of the truth AVG whose row
//     sizes equal LocalDegree.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "src/crawler/crawler.h"
#include "src/crawler/local_store.h"
#include "src/crawler/naive_selectors.h"
#include "src/crawler/parallel_crawler.h"
#include "src/crawler/query_selector.h"
#include "src/graph/attribute_value_graph.h"
#include "src/server/locked_interface.h"
#include "src/server/web_db_server.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace deepcrawl {
namespace {

using testing_util::MakeTable;
using testing_util::Row;

// Seeded random workload generator: a small table with 2-4 attributes,
// per-attribute value pools, and uniform draws — enough entropy to shake
// out structural bugs while staying cheap under TSan.
Table RandomTable(uint64_t seed) {
  Pcg32 rng(seed);
  uint32_t num_attrs = 2 + rng.NextBounded(3);
  uint32_t num_records = 30 + rng.NextBounded(90);
  std::vector<uint32_t> pool_size(num_attrs);
  for (uint32_t a = 0; a < num_attrs; ++a) {
    pool_size[a] = 3 + rng.NextBounded(22);
  }
  std::vector<Row> rows;
  for (uint32_t r = 0; r < num_records; ++r) {
    Row row;
    for (uint32_t a = 0; a < num_attrs; ++a) {
      row.emplace_back("attr" + std::to_string(a),
                       "v" + std::to_string(a) + "_" +
                           std::to_string(rng.NextBounded(pool_size[a])));
    }
    rows.push_back(std::move(row));
  }
  return MakeTable(rows);
}

void CheckAvgStructure(const Table& table) {
  AttributeValueGraph avg = AttributeValueGraph::Build(table);
  uint64_t degree_sum = 0;
  uint64_t edge_count_via_neighbors = 0;
  for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
    std::span<const ValueId> neighbors = avg.Neighbors(v);
    degree_sum += avg.Degree(v);
    EXPECT_EQ(neighbors.size(), avg.Degree(v));
    ValueId prev = kInvalidValueId;
    for (ValueId u : neighbors) {
      EXPECT_NE(u, v) << "self loop at " << v;
      if (prev != kInvalidValueId) {
        EXPECT_LT(prev, u) << "unsorted adjacency at " << v;
      }
      prev = u;
      EXPECT_TRUE(avg.HasEdge(u, v)) << "asymmetric edge " << v << "-" << u;
      ++edge_count_via_neighbors;
    }
  }
  // Each undirected edge is seen from both endpoints.
  EXPECT_EQ(edge_count_via_neighbors % 2, 0u);
  EXPECT_EQ(degree_sum, edge_count_via_neighbors);
  EXPECT_EQ(degree_sum, 2 * avg.num_edges());

  // Every record's values form a clique (Definition 2.4: values
  // co-occurring in a record are linked).
  for (RecordId r = 0; r < table.num_records(); ++r) {
    std::span<const ValueId> values = table.record(r);
    for (size_t i = 0; i < values.size(); ++i) {
      for (size_t j = i + 1; j < values.size(); ++j) {
        if (values[i] == values[j]) continue;
        EXPECT_TRUE(avg.HasEdge(values[i], values[j]))
            << "record " << r << " pair not linked";
      }
    }
  }
}

TEST(AvgInvariantsPropertyTest, GraphStructureHoldsOnRandomTables) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    CheckAvgStructure(RandomTable(seed));
  }
}

// A selector wrapper that records what the crawler revealed and what it
// visited, so visited ⊆ revealed can be asserted from the outside.
class RecordingSelector : public QuerySelector {
 public:
  explicit RecordingSelector(QuerySelector& inner) : inner_(inner) {}

  void OnValueDiscovered(ValueId v) override {
    revealed_.insert(v);
    inner_.OnValueDiscovered(v);
  }
  ValueId SelectNext() override {
    ValueId v = inner_.SelectNext();
    if (v != kInvalidValueId) {
      EXPECT_TRUE(revealed_.count(v))
          << "selector returned never-revealed value " << v;
      visited_.insert(v);
    }
    return v;
  }
  void OnRecordHarvested(uint32_t slot) override {
    inner_.OnRecordHarvested(slot);
  }
  void OnQueryCompleted(const QueryOutcome& outcome) override {
    inner_.OnQueryCompleted(outcome);
  }
  void OnSaturation() override { inner_.OnSaturation(); }
  std::string_view name() const override { return "recording"; }

  const std::set<ValueId>& revealed() const { return revealed_; }
  const std::set<ValueId>& visited() const { return visited_; }

 private:
  QuerySelector& inner_;
  std::set<ValueId> revealed_;
  std::set<ValueId> visited_;
};

// Local-store-vs-truth invariants that must hold at every point of any
// crawl, however it was scheduled.
void CheckLocalSubsetOfTruth(const Table& table, const AttributeValueGraph& avg,
                             const LocalStore& store,
                             const RecordingSelector& recording) {
  // visited ⊆ revealed.
  for (ValueId v : recording.visited()) {
    ASSERT_TRUE(recording.revealed().count(v));
  }
  // Every harvested record is a true record with its true values.
  for (uint32_t slot = 0; slot < store.num_records(); ++slot) {
    RecordId id = store.OriginalRecordId(slot);
    ASSERT_LT(id, table.num_records());
    std::span<const ValueId> local = store.RecordValues(slot);
    std::span<const ValueId> truth = table.record(id);
    ASSERT_EQ(std::vector<ValueId>(local.begin(), local.end()),
              std::vector<ValueId>(truth.begin(), truth.end()));
  }
  // Local statistics never exceed the truth: G_local ⊆ G (§2.4).
  for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
    ASSERT_LE(store.LocalFrequency(v), table.value_frequency(v));
    ASSERT_LE(store.LocalDegree(v), avg.Degree(v));
  }
  ASSERT_LE(store.num_records(), table.num_records());
  ASSERT_GE(store.num_observations(), store.num_records());
  // The CSR adjacency mirrors LocalDegree exactly and is itself a
  // symmetric, irreflexive, duplicate-free subgraph of the truth AVG.
  for (ValueId v = 0; v < store.num_values_seen(); ++v) {
    std::span<const ValueId> neighbors = store.NeighborsSpan(v);
    ASSERT_EQ(neighbors.size(), store.LocalDegree(v)) << "value " << v;
    std::set<ValueId> distinct;
    for (ValueId u : neighbors) {
      ASSERT_NE(u, v) << "self loop at " << v;
      ASSERT_TRUE(distinct.insert(u).second) << "duplicate " << u;
      ASSERT_TRUE(avg.HasEdge(v, u))
          << "local edge " << v << "-" << u << " absent from truth AVG";
      std::span<const ValueId> back = store.NeighborsSpan(u);
      ASSERT_NE(std::find(back.begin(), back.end(), v), back.end())
          << "asymmetric local edge " << v << "-" << u;
    }
  }
}

ValueId FirstQueriableSeed(const Table& table) {
  for (ValueId v = 0; v < table.num_distinct_values(); ++v) {
    if (table.value_frequency(v) > 0) return v;
  }
  ADD_FAILURE() << "table has no queriable value";
  return kInvalidValueId;
}

TEST(AvgInvariantsPropertyTest, SerialCrawlStateStaysASubsetOfTruth) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Table table = RandomTable(seed);
    AttributeValueGraph avg = AttributeValueGraph::Build(table);
    WebDbServer server(table, ServerOptions());
    LocalStore store;
    BfsSelector bfs;
    RecordingSelector recording(bfs);
    Crawler crawler(server, recording, store, CrawlOptions{});
    crawler.AddSeed(FirstQueriableSeed(table));
    // Crawl in budget slices; re-check every invariant after each one.
    for (uint64_t budget = 5;; budget += 5) {
      crawler.set_max_rounds(budget);
      StatusOr<CrawlResult> result = crawler.Run();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      CheckLocalSubsetOfTruth(table, avg, store, recording);
      if (result->stop_reason != StopReason::kRoundBudget) break;
    }
    // A full BFS crawl of a connected-from-seed component reveals every
    // value it visits and visits only revealed ones; final store must
    // hold at least the seed's records.
    ASSERT_GT(store.num_records(), 0u);
  }
}

TEST(AvgInvariantsPropertyTest, ParallelCrawlStateStaysASubsetOfTruth) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Table table = RandomTable(seed);
    AttributeValueGraph avg = AttributeValueGraph::Build(table);
    WebDbServer backend(table, ServerOptions());
    LockedQueryInterface server(backend);
    LocalStore store;
    BfsSelector bfs;
    RecordingSelector recording(bfs);
    ParallelCrawler crawler(server, recording, store, CrawlOptions{},
                            ParallelOptions{/*threads=*/4, /*batch=*/3});
    crawler.AddSeed(FirstQueriableSeed(table));
    for (uint64_t budget = 5;; budget += 5) {
      crawler.set_max_rounds(budget);
      StatusOr<CrawlResult> result = crawler.Run();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      CheckLocalSubsetOfTruth(table, avg, store, recording);
      if (result->stop_reason != StopReason::kRoundBudget) break;
    }
    ASSERT_GT(store.num_records(), 0u);
  }
}

}  // namespace
}  // namespace deepcrawl
