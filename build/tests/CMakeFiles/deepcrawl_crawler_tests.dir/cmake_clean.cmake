file(REMOVE_RECURSE
  "CMakeFiles/deepcrawl_crawler_tests.dir/crawler_crawler_test.cc.o"
  "CMakeFiles/deepcrawl_crawler_tests.dir/crawler_crawler_test.cc.o.d"
  "deepcrawl_crawler_tests"
  "deepcrawl_crawler_tests.pdb"
  "deepcrawl_crawler_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepcrawl_crawler_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
