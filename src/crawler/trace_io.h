// CSV export of crawl traces and multi-policy comparisons.
//
// Every figure in the paper is a coverage-versus-rounds plot; this
// module writes the underlying series in a plotting-friendly CSV so
// users can regenerate the figures with their tool of choice.

#ifndef DEEPCRAWL_CRAWLER_TRACE_IO_H_
#define DEEPCRAWL_CRAWLER_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/crawler/metrics.h"
#include "src/util/status.h"

namespace deepcrawl {

// Writes "rounds,records" rows (with header) for one trace.
Status WriteTraceCsv(const CrawlTrace& trace, std::ostream& output);

// A named trace for side-by-side export.
struct NamedTrace {
  std::string name;
  const CrawlTrace* trace = nullptr;
};

// Writes "rounds,<name1>,<name2>,..." where column i holds the records
// harvested by trace i at that round count (sampled at every round where
// any trace has a point). Traces must be non-null.
Status WriteComparisonCsv(const std::vector<NamedTrace>& traces,
                          std::ostream& output);

}  // namespace deepcrawl

#endif  // DEEPCRAWL_CRAWLER_TRACE_IO_H_
