// Fixed-width text table rendering for bench harnesses and examples.
//
// Every bench binary reproduces one table or figure from the paper and
// prints it as an aligned text table; this helper keeps that output
// uniform across binaries.

#ifndef DEEPCRAWL_UTIL_TABLE_PRINTER_H_
#define DEEPCRAWL_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace deepcrawl {

// Collects rows of string cells and renders them with per-column
// alignment. Example:
//
//   TablePrinter table({"policy", "rounds@90%"});
//   table.AddRow({"greedy-link", "10543"});
//   table.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends one row; must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> cells);

  // Renders the header, a separator, and all rows.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

  // Formatting helpers used by the bench binaries.
  static std::string FormatDouble(double value, int precision);
  static std::string FormatPercent(double fraction, int precision = 1);
  static std::string FormatCount(uint64_t value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_UTIL_TABLE_PRINTER_H_
