// DomainSelector: domain-knowledge-based query selection (§4).
//
// The link-based techniques of §3 suffer two fundamental limitations:
// near-sighted estimation (all statistics come from DBlocal) and a
// limited candidate pool (only values already returned by the target are
// eligible). Databases of one domain, however, share attribute values
// AND value frequencies; a domain statistics table DT built from a
// sample database fixes both problems.
//
// The candidate pool splits into
//   Q_DB — values discovered from the target's own results, and
//   Q_DT — DT values never seen in the target;
// with the harvest-rate estimators of the paper:
//
//   qi in Q_DB (§4.2, eq. 4.1-4.3):
//     num~(qi, DB) = |DBlocal| * P(qi, DM) / P(Lqueried, DM)      (4.2)
//     P(qi, DM) = (num(qi, dDM) + num(qi, DM)) / (|dDM| + |DM|)   (4.3)
//   where dDM ("Delta DM") is the set of crawled target records carrying
//   at least one value unknown to DM — the smoothing mass for values DT
//   misses.
//
//   qi in Q_DT (§4.3): the value may be absent from the target; its
//   presence probability P(qi in DB | qi in DM) ~= P(qi in DM | qi in
//   DB) is evaluated as DM's hit rate over the values discovered from
//   the target so far. Within Q_DT, candidates are ordered by P(qi, DM)
//   descending (the most domain-frequent unseen value first).
//
//   Unit correction. The paper's eq. 4.1 rates Q_DB candidates by the
//   FRACTION of their results that is new (in [0, k]-per-page terms),
//   while §4.3 rates Q_DT candidates by a presence PROBABILITY in
//   [0, 1]; compared directly, a mid-coverage database makes every
//   barely-known domain value look better than a half-drained hub, and
//   the selector starves its best candidates (we measured a ~30-point
//   coverage loss). Both pools are therefore scored on Definition 2.5's
//   native scale — expected NEW RECORDS PER COMMUNICATION ROUND:
//     Q_DB:  (num~ - num_local) / ceil(num~ / k)
//     Q_DT:  hit_rate * num~ / ceil(num~ / k)
//   with num~ from eq. 4.2/4.3 in both cases. This preserves every
//   estimator of §4 and only fixes the scale mismatch.
//
// Both §4.4 optimizations are implemented:
//   * Lazy harvest-rate evaluation. For fixed P(Lqueried, DM) and
//     |DBlocal|, ranking Q_DB by eq. 4.1 is equivalent to ranking by the
//     intermediate value P(qi, DM) / num(qi, DBlocal); only the head of
//     the queue needs its exact HR computed (for the cross-pool
//     comparison with Q_DT). A lazy max-heap with stale-entry skipping
//     keeps the queue consistent as num(qi, DBlocal) grows.
//   * Incremental P(Lqueried, DM): a CoverageSet sorted-list union folds
//     in each issued query's domain postings.

#ifndef DEEPCRAWL_DOMAIN_DOMAIN_SELECTOR_H_
#define DEEPCRAWL_DOMAIN_DOMAIN_SELECTOR_H_

#include <cstdint>
#include <queue>
#include <string_view>
#include <vector>

#include "src/crawler/local_store.h"
#include "src/crawler/query_selector.h"
#include "src/domain/coverage_set.h"
#include "src/domain/domain_table.h"

namespace deepcrawl {

class DomainSelector : public QuerySelector {
 public:
  // `store` and `table` must outlive the selector. The table must have
  // been built against the target server's catalog (see DomainTable).
  // All DT values are immediately eligible as Q_DT candidates.
  // `page_size` must match the server's page size (k in the cost model).
  DomainSelector(const LocalStore& store, const DomainTable& table,
                 uint32_t page_size = 10);

  void OnValueDiscovered(ValueId v) override;
  void OnRecordHarvested(uint32_t slot) override;
  void OnQueryCompleted(const QueryOutcome& outcome) override;
  ValueId SelectNext() override;
  std::string_view name() const override { return "domain-knowledge"; }

  // --- estimator internals, exposed for tests -------------------------

  // Smoothed P(qi, DM) of eq. 4.3.
  double SmoothedDomainProbability(ValueId v) const;
  // Estimated matches num~(v, DB) of eq. 4.2 (with eq. 4.3 smoothing).
  // Returns +infinity before any evidence exists (P(Lqueried, DM) == 0).
  double EstimateMatches(ValueId v) const;
  // Expected new records per round for a Q_DB candidate (see above).
  double EstimateHarvestRateQdb(ValueId v) const;
  // Expected new records per round for a Q_DT candidate.
  double EstimateHarvestRateQdt(ValueId v) const;
  // §4.3 hit-rate estimate shared by all Q_DT candidates.
  double QdtHitRate() const;
  // P(Lqueried, DM) maintained by the incremental union.
  double QueriedDomainCoverage() const;

  // Selection counters (diagnostics / ablations).
  uint64_t num_qdb_selected() const { return num_qdb_selected_; }
  uint64_t num_qdt_selected() const { return num_qdt_selected_; }

 private:
  struct HeapEntry {
    double priority;  // intermediate lazy key, see LazyPriority()
    ValueId value;
    bool operator<(const HeapEntry& other) const {
      if (priority != other.priority) return priority < other.priority;
      return value > other.value;
    }
  };

  // Intermediate ranking key P(qi,DM)/num(qi,DBlocal); computed with the
  // *numerators* of eq. 4.3 only (the smoothing denominator is uniform
  // across candidates and would force spurious heap refreshes).
  double LazyPriority(ValueId v) const;

  bool IsPendingQdb(ValueId v) const {
    return v < qdb_pending_.size() && qdb_pending_[v] != 0;
  }
  void EnsureValueCapacity(ValueId v);

  const LocalStore& store_;
  const DomainTable& table_;
  uint32_t page_size_;

  // Q_DB pool: lazy max-heap plus membership flags.
  std::priority_queue<HeapEntry> qdb_heap_;
  std::vector<char> qdb_pending_;

  // Q_DT pool: DT values by descending P(qi, DM); cursor skips values
  // that have since been discovered in the target (moved to Q_DB) or
  // already queried.
  std::vector<ValueId> qdt_order_;
  size_t qdt_cursor_ = 0;
  std::vector<char> seen_in_target_;  // discovered from target results
  std::vector<char> consumed_;        // handed out by SelectNext

  // Delta-DM statistics for eq. 4.3.
  uint64_t delta_records_ = 0;
  std::vector<uint32_t> delta_frequency_;

  // Hit-rate counters (§4.3): discovered target values in/not in DM.
  uint64_t discovered_values_ = 0;
  uint64_t discovered_values_in_dm_ = 0;

  // Incremental S(Lqueried, DM).
  CoverageSet queried_coverage_;

  uint64_t num_qdb_selected_ = 0;
  uint64_t num_qdt_selected_ = 0;
};

}  // namespace deepcrawl

#endif  // DEEPCRAWL_DOMAIN_DOMAIN_SELECTOR_H_
